#!/usr/bin/env python3
"""Regenerate any of the paper's figures (7-10) from the command line.

Examples
--------
Regenerate Figure 7 (latency, program P) with the default scaled-down sweep::

    python examples/paper_experiments.py --figure 7

Regenerate Figures 9 and 10 with a custom sweep and CSV output::

    python examples/paper_experiments.py --figure 9 --figure 10 \
        --window-sizes 500,1000,2000 --csv results.csv

Run the paper's original window sizes (slow with the pure-Python engine)::

    REPRO_PAPER_SCALE=1 python examples/paper_experiments.py --figure 7
"""

import argparse
from pathlib import Path

from repro.experiments.config import ExperimentConfig, effective_window_sizes
from repro.experiments.figures import FIGURES, run_figure, run_window_sweep
from repro.experiments.reporting import records_to_csv, render_figure


def build_arguments() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--figure",
        type=int,
        action="append",
        choices=sorted(FIGURES),
        help="figure number to regenerate (may be given multiple times; default: all four)",
    )
    parser.add_argument("--window-sizes", type=str, default=None, help="comma-separated window sizes")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--repetitions", type=int, default=1, help="windows averaged per size")
    parser.add_argument("--csv", type=Path, default=None, help="optionally write the sweep as CSV")
    return parser.parse_args()


def main() -> None:
    arguments = build_arguments()
    figures = arguments.figure or sorted(FIGURES)
    window_sizes = (
        tuple(int(part) for part in arguments.window_sizes.split(",")) if arguments.window_sizes else None
    )

    # Group requested figures by program so each sweep runs only once.
    programs = {FIGURES[figure][0] for figure in figures}
    sweeps = {}
    for program in sorted(programs):
        config = ExperimentConfig(
            program=program,
            window_sizes=effective_window_sizes(window_sizes),
            seed=arguments.seed,
            repetitions=arguments.repetitions,
        )
        print(f"Running window sweep for program {program} (sizes {config.window_sizes}) ...")
        sweeps[program] = run_window_sweep(config)

    for figure in figures:
        program, _ = FIGURES[figure]
        series = run_figure(figure, records=sweeps[program])
        print()
        print(render_figure(series))

    if arguments.csv is not None:
        csv_text = "".join(records_to_csv(records) for records in sweeps.values())
        arguments.csv.write_text(csv_text)
        print(f"\nSweep written to {arguments.csv}")


if __name__ == "__main__":
    main()
