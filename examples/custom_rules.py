#!/usr/bin/env python3
"""Using the library with your own rule set: smart-building monitoring.

The paper's approach is not tied to the traffic scenario: any ASP program
plus a set of input predicates yields an input dependency graph and a
partitioning plan.  This example defines a small smart-building rule set
(overheating, fire risk, energy waste), runs the dependency analysis, and
evaluates a synthetic window with the plain and the partitioned reasoner --
including a demonstration of how random partitioning breaks a multi-sensor
join while dependency-aware partitioning does not.

Run with:  python examples/custom_rules.py
"""

import random

from repro.asp import parse_program
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant
from repro.core import (
    DependencyPartitioner,
    RandomPartitioner,
    build_input_dependency_graph,
    decompose,
    mean_accuracy,
)
from repro.streamrule import ParallelReasoner, Reasoner

BUILDING_RULES = """
% A room is overheating when it is hot and the HVAC reports a fault.
overheating(R) :- temperature(R, T), T > 30, hvac_fault(R).
% Fire risk: overheating room with smoke and no sprinkler activity.
fire_risk(R) :- overheating(R), smoke(R, high), not sprinkler_active(R).
% Energy waste: heating running while a window is open.
energy_waste(R) :- heater_on(R), window_open(R).
% Any of the events above pages the facility manager.
page_manager(R) :- fire_risk(R).
page_manager(R) :- energy_waste(R).
"""

INPUT_PREDICATES = (
    "temperature",
    "hvac_fault",
    "smoke",
    "sprinkler_active",
    "heater_on",
    "window_open",
)
EVENTS = ("overheating", "fire_risk", "energy_waste", "page_manager")


def atom(predicate, *arguments):
    return Atom(predicate, tuple(Constant(argument) for argument in arguments))


def synthetic_window(room_count=120, seed=7):
    """Random sensor readings for ``room_count`` rooms."""
    rng = random.Random(seed)
    window = []
    for index in range(room_count):
        room = f"room_{index}"
        window.append(atom("temperature", room, rng.randrange(15, 40)))
        if rng.random() < 0.3:
            window.append(atom("hvac_fault", room))
        if rng.random() < 0.25:
            window.append(atom("smoke", room, rng.choice(["high", "low"])))
        if rng.random() < 0.1:
            window.append(atom("sprinkler_active", room))
        if rng.random() < 0.5:
            window.append(atom("heater_on", room))
        if rng.random() < 0.4:
            window.append(atom("window_open", room))
    return window


def main() -> None:
    program = parse_program(BUILDING_RULES, name="smart_building")
    print("Smart-building rule set:")
    print(program.to_text())

    graph = build_input_dependency_graph(program, INPUT_PREDICATES)
    decomposition = decompose(graph)
    print("Input dependency graph edges:")
    for first, second in sorted(graph.edges()):
        marker = " (self-loop)" if first == second else ""
        print(f"  {first} -- {second}{marker}")
    print()
    print(decomposition.plan.describe())
    print()

    reasoner = Reasoner(program, INPUT_PREDICATES, EVENTS)
    dependency_reasoner = ParallelReasoner(reasoner, DependencyPartitioner(decomposition.plan))
    random_reasoner = ParallelReasoner(reasoner, RandomPartitioner(decomposition.plan.community_count, seed=3))

    window = synthetic_window()
    reference = reasoner.reason(window)
    partitioned = dependency_reasoner.reason(window)
    randomised = random_reasoner.reason(window)

    print(f"Window of {len(window)} sensor readings")
    print(f"  events found by R:        {sum(len(a) for a in reference.answers)}")
    print(f"  events found by PR_Dep:   {sum(len(a) for a in partitioned.answers)}")
    print(f"  events found by PR_Ran:   {sum(len(a) for a in randomised.answers)}")
    print(f"  accuracy PR_Dep:          {mean_accuracy(partitioned.answers, reference.answers):.3f}")
    print(f"  accuracy PR_Ran:          {mean_accuracy(randomised.answers, reference.answers):.3f}")
    print(
        f"  latency: R {reference.metrics.latency_milliseconds:.1f} ms | "
        f"PR_Dep {partitioned.metrics.latency_milliseconds:.1f} ms | "
        f"PR_Ran {randomised.metrics.latency_milliseconds:.1f} ms"
    )


if __name__ == "__main__":
    main()
