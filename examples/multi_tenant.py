#!/usr/bin/env python3
"""Three tenants on one query server (see ``docs/query-server.md``).

The multi-tenant demo:

1. one :class:`QueryServer` over a single :class:`ThreadPoolBackend` hosts
   three standing queries -- a city traffic desk (the paper's program
   ``P``), a bank fraud desk (recursive transfer chains), and an IoT plant
   monitor (stratified negation over derived predicates) -- plus a second
   traffic tenant sharing the city's lane, so one evaluation per traffic
   window serves both,
2. a mixed stream (all three scenarios interleaved) is pushed; each lane
   filters its slice, windows it, and the fairness scheduler apportions
   the shared in-flight budget across the tenants,
3. the fraud desk **unregisters mid-stream** -- its subscription stops
   filling while the survivors keep receiving results,
4. a Prometheus metrics sample (per-tenant counters + shared-cache
   statistics) is printed at the end.

Run with:  python examples/multi_tenant.py [--windows 4] [--window-size 120]
"""

import argparse

from repro.programs import fraud_program, iot_program, traffic_program
from repro.programs.fraud import ALERT_PREDICATES, INPUT_PREDICATES as FRAUD_INPUTS
from repro.programs.iot import ANOMALY_PREDICATES, INPUT_PREDICATES as IOT_INPUTS
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES as TRAFFIC_INPUTS
from repro.streaming import CountWindow, SyntheticStreamConfig, generate_window
from repro.streamrule import ThreadPoolBackend
from repro.streamrule.server import QueryServer, StandingQuery, render_prometheus


def build_arguments() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=4, help="windows per tenant lane")
    parser.add_argument("--window-size", type=int, default=120, help="triples per lane window")
    parser.add_argument("--seed", type=int, default=2017, help="random seed for the synthetic streams")
    return parser.parse_args()


def mixed_stream(length: int, seed: int):
    """One stream per scenario, interleaved; lane filters route the slices."""
    streams = [
        generate_window(SyntheticStreamConfig(
            window_size=length, input_predicates=TRAFFIC_INPUTS, scheme="traffic", seed=seed,
        )),
        generate_window(SyntheticStreamConfig(
            window_size=length, input_predicates=FRAUD_INPUTS, scheme="fraud", seed=seed + 1,
        )),
        generate_window(SyntheticStreamConfig(
            window_size=length, input_predicates=IOT_INPUTS, scheme="iot", seed=seed + 2,
        )),
    ]
    combined = []
    for index in range(length):
        for stream in streams:
            combined.append(stream[index])
    return combined


def main() -> None:
    arguments = build_arguments()
    window = CountWindow(size=arguments.window_size, slide=None)
    length = arguments.window_size * arguments.windows

    server = QueryServer(backend=ThreadPoolBackend(max_workers=2))
    subscriptions = {}
    for query in (
        StandingQuery(tenant="city", name="jams", program=traffic_program(), window=window,
                      input_predicates=TRAFFIC_INPUTS, output_predicates=EVENT_PREDICATES),
        StandingQuery(tenant="highways", name="jams", program=traffic_program(), window=window,
                      input_predicates=TRAFFIC_INPUTS, output_predicates=EVENT_PREDICATES),
        StandingQuery(tenant="fraud_desk", name="alerts", program=fraud_program(), window=window,
                      input_predicates=FRAUD_INPUTS, output_predicates=ALERT_PREDICATES),
        StandingQuery(tenant="plant", name="anomalies", program=iot_program(), window=window,
                      input_predicates=IOT_INPUTS, output_predicates=ANOMALY_PREDICATES),
    ):
        subscriptions[query.key] = server.register(query)

    summary = server.sharing_summary()
    print(f"registered {len(server.queries())} standing queries on one backend")
    print(f"lanes: {summary['lanes']:.0f} (the two traffic tenants share one)  "
          f"shared rules: {summary['shared_rules']:.0f}/{summary['combined_rules']:.0f}")
    print()

    stream = mixed_stream(length, arguments.seed)
    half = len(stream) // 2
    server.push(stream[:half])
    server.finish()

    print(f"first half: {half} mixed triples pushed")
    for key, subscription in subscriptions.items():
        results = subscription.drain()
        atoms = sorted({str(atom) for result in results for atom in result.atoms})
        shared = results[0].shared_with if results else 0
        print(f"  {key:<20} {len(results)} windows (evaluation shared by {shared})  "
              f"e.g. {atoms[:2] if atoms else '(no events)'}")

    print()
    print("unregistering fraud_desk/alerts mid-stream...")
    server.unregister("fraud_desk/alerts")

    server.push(stream[half:])
    server.finish()

    print(f"second half: {len(stream) - half} triples pushed")
    for key, subscription in subscriptions.items():
        results = subscription.drain()
        print(f"  {key:<20} {len(results)} windows"
              + ("  (unregistered -- no further results)" if not results else ""))

    print()
    print("metrics sample (Prometheus text format):")
    families = [
        family for family in server.metric_families()
        if family.name.startswith("streamrule_tenant_windows")
        or family.name in ("streamrule_queries_registered", "streamrule_grounding_cache_hits")
    ]
    for line in render_prometheus(families).strip().splitlines():
        print(f"  {line}")

    server.close()


if __name__ == "__main__":
    main()
