#!/usr/bin/env python3
"""The traffic-monitoring workload on a distributed worker fleet.

This example is the end-to-end demo of the distributed execution tier (see
``docs/deployment.md``):

1. it spawns two real worker daemons (``python -m repro.streamrule.worker``)
   on localhost,
2. streams the paper's synthetic traffic workload through a
   :class:`StreamSession` whose :class:`TcpBackend` partitions every sliding
   window with Algorithm 1 and ships the partitions to the workers over the
   versioned wire protocol -- steady-state windows travel as *fact deltas*,
   not full fact sets,
3. kills one worker halfway through the stream to show the fleet rerouting
   its placement slots to the survivor without losing a window,
4. and prints the wire statistics: how many frames went out as deltas, and
   the payload saving against full-fact shipping.

Run with:  python examples/distributed_fleet.py [--windows 6] [--window-size 600]

Against an already-running fleet (e.g. two machines on a trusted network)::

    python examples/distributed_fleet.py --workers host-a:7700,host-b:7700
"""

import argparse

from repro.core import DependencyPartitioner, build_input_dependency_graph, decompose
from repro.programs import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming import CountWindow, SyntheticStreamConfig, generate_window
from repro.streamrule import Reasoner, StreamSession, TcpBackend, spawn_local_workers


def build_arguments() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=6, help="number of sliding windows to process")
    parser.add_argument("--window-size", type=int, default=600, help="triples per window")
    parser.add_argument("--seed", type=int, default=2017, help="random seed for the synthetic stream")
    parser.add_argument(
        "--workers",
        default=None,
        help="comma-separated host:port endpoints of an existing fleet (default: spawn 2 local daemons)",
    )
    parser.add_argument("--keep-fleet", action="store_true", help="do not kill a worker mid-stream")
    return parser.parse_args()


def main() -> None:
    arguments = build_arguments()

    program = traffic_program()
    plan = decompose(build_input_dependency_graph(program, INPUT_PREDICATES)).plan
    reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)

    window = CountWindow(size=arguments.window_size, slide=arguments.window_size // 4, emit_partial=False)
    stream_length = arguments.window_size + (arguments.windows - 1) * (arguments.window_size // 4)
    stream = generate_window(
        SyntheticStreamConfig(
            window_size=stream_length,
            input_predicates=INPUT_PREDICATES,
            scheme="traffic",
            seed=arguments.seed,
        )
    )

    spawned = []
    if arguments.workers:
        endpoints = [endpoint.strip() for endpoint in arguments.workers.split(",")]
    else:
        spawned = spawn_local_workers(2)
        endpoints = [worker.endpoint for worker in spawned]
    print(f"worker fleet: {', '.join(endpoints)}")

    kill_at = None if (arguments.keep_fleet or not spawned) else arguments.windows // 2
    backend = TcpBackend(endpoints, reconnect_attempts=1, base_delay=0.05)
    try:
        header = f"{'window':>6}  {'events':>6}  {'latency ms':>10}  {'fleet':>5}  {'reroutes':>8}"
        print(header)
        print("-" * len(header))
        with StreamSession(
            reasoner, window=window, partitioner=DependencyPartitioner(plan), backend=backend
        ) as session:
            produced = 0
            for triple in stream:
                session.push(triple)
                for solution in session.results():
                    produced += 1
                    if kill_at is not None and produced == kill_at:
                        print(f"  !! killing worker {spawned[0].endpoint} mid-stream")
                        spawned[0].kill()
                    fleet = backend.fleet
                    print(
                        f"{solution.window_index:>6}  {len(solution.solution_triples):>6}  "
                        f"{solution.metrics.latency_milliseconds:>10.1f}  "
                        f"{len(fleet.alive_endpoints):>5}  {fleet.reroutes:>8}"
                    )
            session.finish()

        stats = backend.wire_statistics()
        print()
        print("wire statistics:")
        print(f"  work frames: {int(stats['items_full'])} full, {int(stats['items_delta'])} delta")
        print(f"  payload out: {stats['bytes_out'] / 1024:.1f} KiB  in: {stats['bytes_in'] / 1024:.1f} KiB")
        if stats["items_delta"] and stats["items_full"]:
            full_avg = stats["bytes_full"] / stats["items_full"]
            delta_avg = stats["bytes_delta"] / stats["items_delta"]
            print(
                f"  average frame: {full_avg / 1024:.2f} KiB full vs {delta_avg / 1024:.2f} KiB delta "
                f"({100 * (1 - delta_avg / full_avg):.0f}% smaller on the steady state)"
            )
        print(f"  inline fallbacks: {session.fallbacks}")
    finally:
        for worker in spawned:
            worker.terminate()


if __name__ == "__main__":
    main()
