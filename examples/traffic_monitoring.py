#!/usr/bin/env python3
"""Traffic monitoring over a continuous synthetic stream.

This example runs the *extended StreamRule* loop of Figure 6 end to end
through the :class:`StreamSession` facade:

  synthetic RDF stream  ->  stream query processor (CQELS stand-in)
                        ->  partitioning handler (Algorithm 1)
                        ->  execution backend (parallel reasoners over P)
                        ->  combining handler
                        ->  solution triples (events + notifications)

The stream is fed with ``session.push`` and solutions drained with
``session.results`` -- windows evaluate as they complete.  Per window, the
script prints the events detected and compares the partitioned session's
latency and accuracy against the monolithic reasoner R and against random
partitioning.

Run with:  python examples/traffic_monitoring.py [--windows 4] [--window-size 1500]
"""

import argparse

from repro.core import (
    DependencyPartitioner,
    RandomPartitioner,
    build_input_dependency_graph,
    decompose,
    mean_accuracy,
)
from repro.programs import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming import CountWindow, StreamQueryProcessor, SyntheticStreamConfig, generate_window
from repro.streamrule import Reasoner, StreamSession


def build_arguments() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=4, help="number of windows to process")
    parser.add_argument("--window-size", type=int, default=1500, help="triples per window")
    parser.add_argument("--seed", type=int, default=2017, help="random seed for the synthetic stream")
    return parser.parse_args()


def main() -> None:
    arguments = build_arguments()

    # Design time: program, dependency analysis, partitioning plan.
    program = traffic_program()
    plan = decompose(build_input_dependency_graph(program, INPUT_PREDICATES)).plan
    reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)

    # Run time: one long synthetic stream, cut into tuple-based windows.
    stream_config = SyntheticStreamConfig(
        window_size=arguments.window_size * arguments.windows,
        input_predicates=INPUT_PREDICATES,
        scheme="traffic",
        seed=arguments.seed,
    )
    stream = generate_window(stream_config)

    print(f"Processing {arguments.windows} windows of {arguments.window_size} triples each\n")
    header = f"{'window':>6}  {'events':>6}  {'PR_Dep ms':>9}  {'R ms':>7}  {'acc PR_Dep':>10}  {'acc PR_Ran2':>11}"
    print(header)
    print("-" * len(header))

    random_session = StreamSession(reasoner, partitioner=RandomPartitioner(2, seed=arguments.seed))
    with StreamSession(
        reasoner,
        partitioner=DependencyPartitioner(plan),
        window=CountWindow(size=arguments.window_size),
        query_processor=StreamQueryProcessor(set(INPUT_PREDICATES)),
    ) as session, random_session:
        solution = None
        for triple in stream:
            session.push(triple)
            for solution in session.results():
                window_triples = stream[
                    solution.window_index * arguments.window_size : (solution.window_index + 1)
                    * arguments.window_size
                ]
                reference = reasoner.reason(window_triples)
                random_result = random_session.evaluate_window(window_triples)
                accuracy_dep = mean_accuracy(solution.answers, reference.answers)
                accuracy_random = mean_accuracy(random_result.answers, reference.answers)
                print(
                    f"{solution.window_index:>6}  {len(solution.solution_triples):>6}  "
                    f"{solution.metrics.latency_milliseconds:>9.1f}  {reference.metrics.latency_milliseconds:>7.1f}  "
                    f"{accuracy_dep:>10.3f}  {accuracy_random:>11.3f}"
                )

    print()
    print("Sample of events from the last window:")
    if solution is not None:
        for triple in list(solution.solution_triples)[:8]:
            print(f"  {triple}")


if __name__ == "__main__":
    main()
