#!/usr/bin/env python3
"""The traffic-monitoring workload on the shared-memory backend.

This example is the end-to-end demo of same-host multi-core dispatch over
interned symbol ids (see ``docs/shared-memory.md``):

1. it starts a :class:`SharedMemoryBackend` -- one spawned worker process
   per slot, each reached through a pair of byte rings in a
   ``multiprocessing.shared_memory`` segment,
2. streams the paper's synthetic traffic workload through a
   :class:`StreamSession` whose sliding windows are partitioned with
   Algorithm 1; after the first window the facts are all interned, so the
   work crosses the process boundary as packed 4-byte ids with no
   pickling,
3. kills one worker process halfway through the stream to show the
   session degrading that partition to inline evaluation (answers stay
   exact; ``session.fallbacks`` counts the windows that needed it),
4. and prints the ring statistics: symbol syncs per direction, bytes
   through the rings, and oversize side-door trips.

Run with:  python examples/shared_memory.py [--windows 6] [--window-size 600]
"""

import argparse

from repro.core import DependencyPartitioner, build_input_dependency_graph, decompose
from repro.programs import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program
from repro.streaming import CountWindow, SyntheticStreamConfig, generate_window
from repro.streamrule import Reasoner, SharedMemoryBackend, StreamSession


def build_arguments() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=6, help="number of sliding windows to process")
    parser.add_argument("--window-size", type=int, default=600, help="triples per window")
    parser.add_argument("--seed", type=int, default=2017, help="random seed for the synthetic stream")
    parser.add_argument("--workers", type=int, default=2, help="worker processes (one shm segment each)")
    parser.add_argument("--keep-fleet", action="store_true", help="do not kill a worker mid-stream")
    return parser.parse_args()


def main() -> None:
    arguments = build_arguments()

    program = traffic_program()
    plan = decompose(build_input_dependency_graph(program, INPUT_PREDICATES)).plan
    reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)

    window = CountWindow(size=arguments.window_size, slide=arguments.window_size // 4, emit_partial=False)
    stream_length = arguments.window_size + (arguments.windows - 1) * (arguments.window_size // 4)
    stream = generate_window(
        SyntheticStreamConfig(
            window_size=stream_length,
            input_predicates=INPUT_PREDICATES,
            scheme="traffic",
            seed=arguments.seed,
        )
    )

    backend = SharedMemoryBackend(max_workers=arguments.workers)
    kill_at = None if arguments.keep_fleet else arguments.windows // 2
    header = f"{'window':>6}  {'events':>6}  {'latency ms':>10}  {'workers':>7}  {'fallbacks':>9}"
    print(f"shared-memory backend: {arguments.workers} spawned worker process(es)")
    print(header)
    print("-" * len(header))
    with StreamSession(
        reasoner, window=window, partitioner=DependencyPartitioner(plan), backend=backend
    ) as session:
        produced = 0
        for triple in stream:
            session.push(triple)
            for solution in session.results():
                produced += 1
                if kill_at is not None and produced == kill_at:
                    print("  !! killing worker process 0 mid-stream")
                    backend.drop_worker(0)
                alive = int(backend.shm_statistics().get("alive_workers", 0))
                print(
                    f"{solution.window_index:>6}  {len(solution.solution_triples):>6}  "
                    f"{solution.metrics.latency_milliseconds:>10.1f}  "
                    f"{alive:>7}  {session.fallbacks:>9}"
                )
        session.finish()
        fallbacks = session.fallbacks

    stats = backend.shm_statistics()
    print()
    print("ring statistics:")
    print(f"  items through the rings: {int(stats['items'])}")
    print(
        f"  symbol syncs: {int(stats['symbols_out'])} out, {int(stats['symbols_in'])} in "
        "(steady-state windows ship ids only)"
    )
    print(f"  ring bytes: {stats['bytes_out'] / 1024:.1f} KiB out, {stats['bytes_in'] / 1024:.1f} KiB in")
    print(f"  oversize side-door trips: {int(stats['oversizes'])}")
    print(f"  inline fallbacks after the kill: {fallbacks}")


if __name__ == "__main__":
    main()
