#!/usr/bin/env python3
"""Quickstart: the paper's motivating example in ~40 lines.

A city manager wants to detect traffic jams and car fires from a stream of
sensor readings (Section II-A of the paper).  This script:

1. loads the paper's logic program P (Listing 1),
2. builds the input dependency graph and a partitioning plan at design time,
3. evaluates the motivating window W with the plain reasoner R and with a
   dependency-partitioned StreamSession (the parallel reasoner PR),
4. shows that both detect exactly the car fire on the dangan road segment.

Run with:  python examples/quickstart.py
"""

from repro.core import DependencyPartitioner, build_input_dependency_graph, decompose
from repro.programs import EVENT_PREDICATES, INPUT_PREDICATES, motivating_example_window, traffic_program
from repro.streamrule import Reasoner, StreamSession


def main() -> None:
    # --- design time -------------------------------------------------------
    program = traffic_program()
    print("Logic program P (Listing 1):")
    print(program.to_text())

    dependency_graph = build_input_dependency_graph(program, INPUT_PREDICATES)
    print(f"Input dependency graph: {dependency_graph!r}")
    decomposition = decompose(dependency_graph)
    print(decomposition.plan.describe())
    print()

    # --- run time ----------------------------------------------------------
    window = motivating_example_window()
    print("Input window W:")
    for atom in window:
        print(f"  {atom}")
    print()

    reasoner = Reasoner(program, INPUT_PREDICATES, EVENT_PREDICATES)
    reference = reasoner.reason(window)

    # The session is the parallel reasoner PR: partitioning handler ->
    # execution backend (inline by default; swap in ThreadPoolBackend,
    # ProcessPoolBackend, or LoopbackSocketBackend) -> combining handler.
    with StreamSession(reasoner, partitioner=DependencyPartitioner(decomposition.plan)) as session:
        partitioned = session.evaluate_window(window)

    print("Events detected by the whole-window reasoner R:")
    for answer in reference.answers:
        print("  " + ", ".join(sorted(str(atom) for atom in answer)))

    print("Events detected by the dependency-partitioned session PR:")
    for answer in partitioned.answers:
        print("  " + ", ".join(sorted(str(atom) for atom in answer)))

    print()
    print(
        f"Latency: R {reference.metrics.latency_milliseconds:.1f} ms, "
        f"PR {partitioned.metrics.latency_milliseconds:.1f} ms "
        f"({len(partitioned.metrics.partition_sizes)} partitions evaluated in parallel)"
    )


if __name__ == "__main__":
    main()
