#!/usr/bin/env python3
"""Walk through the paper's dependency analysis (Figures 2-5), step by step.

For both traffic programs (P and P' = P + rule r7) this script prints:

* the extended dependency graph G_P (Definition 1),
* the input dependency graph over inpre(P) (Definition 2),
* its connected components, or -- when it is connected -- the modularity
  decomposition and the duplicated predicates (the decomposing process of
  Section II-B),
* the resulting partitioning plan used by Algorithm 1 at run time.

Run with:  python examples/dependency_analysis.py
"""

from repro.core import ExtendedDependencyGraph, build_input_dependency_graph, decompose
from repro.programs import INPUT_PREDICATES, traffic_program, traffic_program_prime


def describe_program(name, program):
    print("=" * 72)
    print(f"Program {name}")
    print("=" * 72)
    print(program.to_text())

    extended = ExtendedDependencyGraph.from_program(program)
    print(f"Extended dependency graph (Definition 1): {len(extended.nodes)} predicates")
    print("  directed body->head edges (E_P2):")
    for source, target in sorted(extended.head_edges):
        print(f"    {source} -> {target}")
    print("  undirected body-body edges (E_P1):")
    for first, second in extended.body_edge_pairs():
        marker = " (self-loop)" if first == second else ""
        print(f"    {first} -- {second}{marker}")
    print()

    input_graph = build_input_dependency_graph(program, INPUT_PREDICATES, extended=extended)
    print(f"Input dependency graph over inpre({name}) (Definition 2):")
    for first, second in sorted(input_graph.edges()):
        conditions = ",".join(sorted(input_graph.conditions_for(first, second)))
        marker = " (self-loop)" if first == second else ""
        print(f"    {first} -- {second}{marker}   [condition {conditions}]")
    print(f"  connected: {input_graph.is_connected()}")
    print()

    result = decompose(input_graph, resolution=1.0)
    if result.used_modularity:
        print("The graph is connected: applying the decomposing process (Louvain, resolution 1.0)")
    else:
        print("The graph is disconnected: its connected components are the natural partitions")
    for index, community in enumerate(result.communities):
        print(f"  community {index}: {', '.join(sorted(community))}")
    if result.duplicated_predicates:
        print(f"  duplicated predicates: {', '.join(sorted(result.duplicated_predicates))}")
    print()
    print("Partitioning plan handed to the partitioning handler (Algorithm 1):")
    print(result.plan.describe())
    print()


def main() -> None:
    describe_program("P", traffic_program())
    describe_program("P'", traffic_program_prime())


if __name__ == "__main__":
    main()
