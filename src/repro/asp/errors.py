"""Exception hierarchy for the ASP engine."""


class ASPError(Exception):
    """Base class for every error raised by :mod:`repro.asp`."""


class ParseError(ASPError):
    """Raised when a program, rule, or term cannot be parsed.

    Attributes
    ----------
    line:
        1-based line number of the offending token, when known.
    column:
        1-based column number of the offending token, when known.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SafetyError(ASPError):
    """Raised when a rule is unsafe (a variable occurs only in negative
    literals, comparisons, or the head)."""

    def __init__(self, rule, variables):
        names = ", ".join(sorted(variables))
        super().__init__(f"unsafe rule (unbound variables {names}): {rule}")
        self.rule = rule
        self.variables = frozenset(variables)


class GroundingError(ASPError):
    """Raised when instantiation fails (e.g. non-evaluable comparison)."""


class SolvingError(ASPError):
    """Raised when the solver is mis-used or hits an internal limit."""
