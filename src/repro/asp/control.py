"""Clingo-like facade over the grounder and solver.

The paper drives Clingo 4.3.0 as an external solver; this module offers the
same three-step workflow (``add`` rules, ``ground``, ``solve``) so the StreamRule
reimplementation can treat the engine as a drop-in component::

    control = Control()
    control.add("traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).")
    control.add_facts([Atom("very_slow_speed", (Constant("newcastle"),)), ...])
    control.ground()
    result = control.solve()
    for model in result.models:
        print(model.atoms)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import, avoids a layering cycle
    from repro.streamrule.work import WorkItem

from repro.asp.grounding.grounder import GroundProgram, Grounder, GroundingCache, RepairStats
from repro.asp.solving.incremental import SolveStats, SolverCache
from repro.asp.solving.solver import StableModelSolver
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.program import Program
from repro.asp.syntax.rules import Rule

__all__ = ["Control", "Model", "SolveResult", "solve", "solve_program"]


@dataclass(frozen=True)
class Model:
    """One answer set."""

    atoms: FrozenSet[Atom]

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def atoms_of(self, predicate: str) -> Set[Atom]:
        """Atoms of the model over a single predicate."""
        return {atom for atom in self.atoms if atom.predicate == predicate}

    def project(self, predicates: Iterable[str]) -> "Model":
        """Restrict the model to the given predicates."""
        wanted = set(predicates)
        return Model(frozenset(atom for atom in self.atoms if atom.predicate in wanted))

    def __str__(self) -> str:
        return " ".join(str(atom) for atom in sorted(self.atoms, key=str))


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a solve call: models plus timing breakdown."""

    models: Tuple[Model, ...]
    grounding_seconds: float
    solving_seconds: float

    @property
    def satisfiable(self) -> bool:
        return bool(self.models)

    @property
    def total_seconds(self) -> float:
        return self.grounding_seconds + self.solving_seconds


class Control:
    """Incrementally assembled ASP run: add rules and facts, ground, solve.

    ``delta_track`` opts into incremental (delta-) grounding: when set
    together with a ``grounding_cache``, :meth:`ground` goes through
    :meth:`GroundingCache.ground_incremental` so an overlapping window
    repairs the track's cached instantiation instead of regrounding.

    Alternatively a typed :class:`~repro.streamrule.work.WorkItem` can be
    passed as ``work``: its track/epoch/incremental intent then drive the
    same delta path (``delta_track = work.track`` when the item wants
    incremental grounding and a cache is attached), and the item stays
    available as :attr:`work` / :attr:`epoch` for downstream bookkeeping.

    ``solver_track`` (with a ``solver_cache``) does for solving what
    ``delta_track`` does for grounding: :meth:`solve` then repairs the
    track's persistent solver state -- cached well-founded strata plus a
    selector-guarded completion encoding -- and re-solves under assumptions
    instead of solving from scratch.  The track is derived from ``work`` the
    same way as ``delta_track`` when not given explicitly.
    """

    def __init__(
        self,
        program: Optional[Program] = None,
        grounding_cache: Optional[GroundingCache] = None,
        delta_track: Optional[int] = None,
        work: Optional["WorkItem"] = None,
        solver_cache: Optional[SolverCache] = None,
        solver_track: Optional[int] = None,
    ):
        self._program = program.copy() if program is not None else Program()
        self._grounding_cache = grounding_cache
        self._work = work
        if (
            delta_track is None
            and work is not None
            and grounding_cache is not None
            and work.wants_incremental
        ):
            delta_track = work.track
        self._delta_track = delta_track
        self._solver_cache = solver_cache
        if (
            solver_track is None
            and work is not None
            and solver_cache is not None
            and work.wants_incremental
        ):
            solver_track = work.track
        self._solver_track = solver_track
        self._ground_program: Optional[GroundProgram] = None
        self._ground_from_cache: Optional[bool] = None
        self._ground_outcome: Optional[str] = None
        self._repair_stats: Optional[RepairStats] = None
        self._solve_stats: Optional[SolveStats] = None
        self._grounding_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def add(self, text: str) -> None:
        """Parse and add ASP source text (rules and/or facts)."""
        self._program.extend(parse_program(text))
        self._invalidate_grounding()

    def add_rule(self, rule: Rule) -> None:
        self._program.add_rule(rule)
        self._invalidate_grounding()

    def add_rules(self, rules: Iterable[Rule]) -> None:
        self._program.add_rules(rules)
        self._invalidate_grounding()

    def add_facts(self, atoms: Iterable[Atom]) -> None:
        self._program.add_facts(atoms)
        self._invalidate_grounding()

    def _invalidate_grounding(self) -> None:
        self._ground_program = None
        self._ground_from_cache = None
        self._ground_outcome = None
        self._repair_stats = None

    @property
    def program(self) -> Program:
        return self._program

    @property
    def work(self) -> Optional["WorkItem"]:
        """The typed work item this control evaluates (``None`` for ad-hoc runs)."""
        return self._work

    @property
    def epoch(self) -> Optional[int]:
        """Window epoch of the attached work item (``None`` without one)."""
        return self._work.epoch if self._work is not None else None

    # ------------------------------------------------------------------ #
    # Grounding and solving
    # ------------------------------------------------------------------ #
    def ground(self) -> GroundProgram:
        """Instantiate the program; idempotent until new rules are added.

        When a :class:`GroundingCache` was supplied, the instantiation is
        served from (and recorded into) the cache keyed on the program's fact
        signature; :attr:`ground_from_cache` reports which path was taken.
        """
        if self._ground_program is None:
            started = time.perf_counter()
            if self._grounding_cache is not None:
                if self._delta_track is not None:
                    self._ground_program, outcome, stats = self._grounding_cache.ground_incremental(
                        self._program, track=self._delta_track
                    )
                    self._ground_from_cache = outcome == "hit"
                    self._ground_outcome = outcome
                    self._repair_stats = stats
                else:
                    self._ground_program, from_cache = self._grounding_cache.ground(self._program)
                    self._ground_from_cache = from_cache
                    self._ground_outcome = "hit" if from_cache else "full"
            else:
                self._ground_program = Grounder(self._program).ground()
            self._grounding_seconds = time.perf_counter() - started
        return self._ground_program

    @property
    def ground_from_cache(self) -> Optional[bool]:
        """Whether the last grounding was a cache hit (``None``: no cache or not grounded)."""
        return self._ground_from_cache

    @property
    def ground_outcome(self) -> Optional[str]:
        """How the last grounding was obtained: ``"hit"``, ``"repair"``, or
        ``"full"`` (``None``: no cache or not grounded yet)."""
        return self._ground_outcome

    @property
    def repair_stats(self) -> Optional[RepairStats]:
        """Size record of the last delta repair (``None`` unless the last
        grounding outcome was ``"repair"``)."""
        return self._repair_stats

    @property
    def solve_stats(self) -> Optional[SolveStats]:
        """Record of the last incremental solve (``None`` without a
        ``solver_cache``-backed track or before :meth:`solve`)."""
        return self._solve_stats

    def solve(self, models: Optional[int] = None) -> SolveResult:
        """Ground (if needed) and enumerate up to ``models`` answer sets.

        ``models=None`` (or 0) enumerates all answer sets, matching clingo's
        ``--models=0`` convention.
        """
        limit = None if not models else models
        ground = self.ground()
        started = time.perf_counter()
        if self._solver_cache is not None and self._solver_track is not None:
            model_sets, self._solve_stats = self._solver_cache.solve_incremental(
                ground, track=self._solver_track, limit=limit
            )
            found = [Model(frozenset(model)) for model in model_sets]
        else:
            found = [Model(frozenset(model)) for model in StableModelSolver(ground).models(limit=limit)]
        solving_seconds = time.perf_counter() - started
        return SolveResult(
            models=tuple(found),
            grounding_seconds=self._grounding_seconds,
            solving_seconds=solving_seconds,
        )


def solve_program(program: Program, facts: Optional[Iterable[Atom]] = None, models: Optional[int] = None) -> SolveResult:
    """Solve a :class:`Program` (optionally extended with extra facts)."""
    control = Control(program)
    if facts is not None:
        control.add_facts(facts)
    return control.solve(models=models)


def solve(text: str, models: Optional[int] = None) -> SolveResult:
    """Parse and solve ASP source text in one call."""
    return solve_program(parse_program(text), models=models)
