"""Pure-Python Answer Set Programming (ASP) engine.

This subpackage is the substrate that replaces Clingo 4.3.0 used by the
paper.  It provides:

* :mod:`repro.asp.syntax` -- terms, atoms, literals, rules, programs and an
  ASP-Core-ish parser.
* :mod:`repro.asp.grounding` -- safety checking, predicate dependency
  analysis and a semi-naive grounder.
* :mod:`repro.asp.solving` -- well-founded semantics, Clark completion, a
  DPLL-style SAT core with unfounded-set (loop) checks, stable-model
  enumeration and disjunctive minimality checking.
* :mod:`repro.asp.control` -- a small Clingo-like facade (``Control``)
  exposing ``add`` / ``ground`` / ``solve``.

The public convenience API is re-exported here::

    from repro.asp import parse_program, solve, Control

    program = parse_program("a :- not b.  b :- not a.")
    models = solve(program)
"""

from repro.asp.control import Control, Model, solve, solve_program
from repro.asp.errors import (
    ASPError,
    GroundingError,
    ParseError,
    SafetyError,
    SolvingError,
)
from repro.asp.syntax.atoms import Atom, Comparison, Literal
from repro.asp.syntax.parser import parse_program, parse_rule, parse_term
from repro.asp.syntax.program import Program
from repro.asp.syntax.rules import Rule
from repro.asp.syntax.terms import Constant, FunctionTerm, Term, Variable

__all__ = [
    "ASPError",
    "Atom",
    "Comparison",
    "Constant",
    "Control",
    "FunctionTerm",
    "GroundingError",
    "Literal",
    "Model",
    "ParseError",
    "Program",
    "Rule",
    "SafetyError",
    "SolvingError",
    "Term",
    "Variable",
    "parse_program",
    "parse_rule",
    "parse_term",
    "solve",
    "solve_program",
]
