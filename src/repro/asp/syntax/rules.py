"""Rules of an ASP program.

A rule has the general disjunctive form::

    q1 | ... | qn :- p1, ..., pk, not pk+1, ..., not pm, c1, ..., cj.

where the ``qi`` are head atoms, the ``pi`` are body atom literals and the
``ci`` are builtin comparison literals.  Special cases:

* *fact*: a single head atom and an empty body (``q.``),
* *constraint*: an empty head (``:- body.``),
* *normal rule*: exactly one head atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple, Union

from repro.asp.syntax.atoms import Atom, Comparison, Literal
from repro.asp.syntax.terms import Variable

__all__ = ["BodyElement", "Rule"]

BodyElement = Union[Literal, Comparison]


@dataclass(frozen=True, slots=True)
class Rule:
    """A (possibly non-ground) disjunctive rule."""

    head: Tuple[Atom, ...] = ()
    body: Tuple[BodyElement, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "body", tuple(self.body))
        for atom in self.head:
            if not isinstance(atom, Atom):
                raise TypeError(f"head elements must be atoms, got {atom!r}")
        for element in self.body:
            if not isinstance(element, (Literal, Comparison)):
                raise TypeError(f"body elements must be literals or comparisons, got {element!r}")

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_fact(self) -> bool:
        """True for ``q.`` -- one head atom and no body."""
        return len(self.head) == 1 and not self.body

    @property
    def is_constraint(self) -> bool:
        """True for integrity constraints ``:- body.``"""
        return not self.head

    @property
    def is_normal(self) -> bool:
        """True when the head has at most one atom (non-disjunctive)."""
        return len(self.head) <= 1

    @property
    def is_disjunctive(self) -> bool:
        return len(self.head) > 1

    def is_ground(self) -> bool:
        return all(atom.is_ground() for atom in self.head) and all(
            element.is_ground() for element in self.body
        )

    # ------------------------------------------------------------------ #
    # Body views
    # ------------------------------------------------------------------ #
    @property
    def body_literals(self) -> Tuple[Literal, ...]:
        """Atom literals of the body (positive and negative), no comparisons."""
        return tuple(element for element in self.body if isinstance(element, Literal))

    @property
    def positive_body(self) -> Tuple[Literal, ...]:
        """``body+(r)``: positive atom literals."""
        return tuple(element for element in self.body_literals if element.positive)

    @property
    def negative_body(self) -> Tuple[Literal, ...]:
        """``body-(r)``: default-negated atom literals."""
        return tuple(element for element in self.body_literals if element.negative)

    @property
    def comparisons(self) -> Tuple[Comparison, ...]:
        return tuple(element for element in self.body if isinstance(element, Comparison))

    # ------------------------------------------------------------------ #
    # Predicates and variables
    # ------------------------------------------------------------------ #
    def head_predicates(self) -> Set[str]:
        return {atom.predicate for atom in self.head}

    def body_predicates(self) -> Set[str]:
        return {literal.predicate for literal in self.body_literals}

    def predicates(self) -> Set[str]:
        return self.head_predicates() | self.body_predicates()

    def variables(self) -> Set[Variable]:
        found: Set[Variable] = set()
        for atom in self.head:
            found.update(atom.variables())
        for element in self.body:
            found.update(element.variables())
        return found

    def substitute(self, mapping) -> "Rule":
        return Rule(
            tuple(atom.substitute(mapping) for atom in self.head),
            tuple(element.substitute(mapping) for element in self.body),
        )

    def __str__(self) -> str:
        head_text = " | ".join(str(atom) for atom in self.head)
        if not self.body:
            return f"{head_text}." if head_text else ":-."
        body_text = ", ".join(str(element) for element in self.body)
        if head_text:
            return f"{head_text} :- {body_text}."
        return f":- {body_text}."


def fact(atom: Atom) -> Rule:
    """Convenience constructor for a fact rule."""
    return Rule(head=(atom,), body=())
