"""A logic program: an ordered collection of rules with predicate metadata.

The paper uses three predicate sets throughout (Section I):

* ``pre(P)``   -- all predicates occurring in the program,
* ``inpre(P)`` -- the *input* predicates, i.e. predicates of data items
  streamed into the reasoner (a subset of ``pre(P)``; they may be EDB or
  IDB predicates),
* EDB / IDB    -- extensional predicates (never occur in a head) versus
  intensional predicates (occur in at least one head).

:class:`Program` exposes all of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Set

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.rules import Rule

__all__ = ["Program"]


@dataclass
class Program:
    """An ASP program (a finite set of rules, kept in insertion order)."""

    rules: List[Rule] = field(default_factory=list)
    name: str = "program"

    def __post_init__(self) -> None:
        self.rules = list(self.rules)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_rules(self, rules: Iterable[Rule]) -> None:
        self.rules.extend(rules)

    def add_fact(self, atom: Atom) -> None:
        self.rules.append(Rule(head=(atom,), body=()))

    def add_facts(self, atoms: Iterable[Atom]) -> None:
        for atom in atoms:
            self.add_fact(atom)

    def extend(self, other: "Program") -> None:
        """Append all rules of ``other`` to this program."""
        self.rules.extend(other.rules)

    def copy(self, name: Optional[str] = None) -> "Program":
        return Program(list(self.rules), name=name or self.name)

    def with_facts(self, atoms: Iterable[Atom], name: Optional[str] = None) -> "Program":
        """Return a new program consisting of this program plus the given facts."""
        combined = self.copy(name=name or self.name)
        combined.add_facts(atoms)
        return combined

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def facts(self) -> List[Rule]:
        return [rule for rule in self.rules if rule.is_fact]

    @property
    def proper_rules(self) -> List[Rule]:
        """Rules that are not facts (including constraints)."""
        return [rule for rule in self.rules if not rule.is_fact]

    @property
    def constraints(self) -> List[Rule]:
        return [rule for rule in self.rules if rule.is_constraint]

    def is_ground(self) -> bool:
        return all(rule.is_ground() for rule in self.rules)

    @property
    def has_disjunction(self) -> bool:
        return any(rule.is_disjunctive for rule in self.rules)

    @property
    def has_negation(self) -> bool:
        return any(rule.negative_body for rule in self.rules)

    # ------------------------------------------------------------------ #
    # Predicate metadata (pre, inpre, EDB, IDB)
    # ------------------------------------------------------------------ #
    def predicates(self) -> Set[str]:
        """``pre(P)``: every predicate occurring in the program."""
        found: Set[str] = set()
        for rule in self.rules:
            found.update(rule.predicates())
        return found

    def head_predicates(self) -> Set[str]:
        found: Set[str] = set()
        for rule in self.rules:
            found.update(rule.head_predicates())
        return found

    def idb_predicates(self) -> Set[str]:
        """Intensional predicates: those defined by at least one non-fact rule head."""
        found: Set[str] = set()
        for rule in self.rules:
            if not rule.is_fact:
                found.update(rule.head_predicates())
        return found

    def edb_predicates(self) -> Set[str]:
        """Extensional predicates: predicates never defined by a proper rule."""
        return self.predicates() - self.idb_predicates()

    def rules_defining(self, predicate: str) -> List[Rule]:
        """Rules whose head mentions ``predicate``."""
        return [rule for rule in self.rules if predicate in rule.head_predicates()]

    def rules_using(self, predicate: str) -> List[Rule]:
        """Rules whose body mentions ``predicate``."""
        return [rule for rule in self.rules if predicate in rule.body_predicates()]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        """Render the program back to parseable ASP syntax."""
        return "\n".join(str(rule) for rule in self.rules) + ("\n" if self.rules else "")

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Program(name={self.name!r}, rules={len(self.rules)})"
