"""Terms of the ASP language.

A term is one of:

* :class:`Constant` -- a symbolic constant (``newcastle``), an integer
  (``20``), or a quoted string (``"high speed"``).
* :class:`Variable` -- an uppercase-initial identifier (``X``) or the
  anonymous variable ``_``.
* :class:`FunctionTerm` -- an uninterpreted function symbol applied to terms
  (``loc(1, 2)``).

All term classes are immutable and hashable so they can be used freely as
dictionary keys and set members, which the grounder relies on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

__all__ = ["Constant", "FunctionTerm", "Term", "Variable"]


_ANONYMOUS_COUNTER = 0


def _next_anonymous_name() -> str:
    """Return a fresh name for an anonymous variable ``_``."""
    global _ANONYMOUS_COUNTER
    _ANONYMOUS_COUNTER += 1
    return f"_Anon{_ANONYMOUS_COUNTER}"


@dataclass(frozen=True, slots=True)
class Constant:
    """A ground constant: integer, symbolic constant, or quoted string."""

    value: Union[int, str]
    quoted: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.value, bool):
            raise TypeError("boolean constants are not part of the language")
        if not isinstance(self.value, (int, str)):
            raise TypeError(f"constant value must be int or str, got {type(self.value)!r}")

    @property
    def is_integer(self) -> bool:
        """True when the constant is an integer."""
        return isinstance(self.value, int)

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def substitute(self, mapping) -> "Constant":
        return self

    def __str__(self) -> str:
        if self.quoted:
            escaped = str(self.value).replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return str(self.value)

    def __lt__(self, other: "Constant") -> bool:
        """Total order used by comparison builtins: integers before symbols."""
        if not isinstance(other, Constant):
            return NotImplemented
        return _order_key(self) < _order_key(other)


def _order_key(constant: Constant) -> Tuple[int, object]:
    if constant.is_integer:
        return (0, constant.value)
    return (1, str(constant.value))


@dataclass(frozen=True, slots=True)
class Variable:
    """A logic variable (uppercase-initial or ``_``-prefixed identifier)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    @classmethod
    def anonymous(cls) -> "Variable":
        """Create a fresh anonymous variable (each ``_`` is distinct)."""
        return cls(_next_anonymous_name())

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def substitute(self, mapping) -> "Term":
        return mapping.get(self, self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FunctionTerm:
    """An uninterpreted function symbol applied to argument terms."""

    name: str
    arguments: Tuple["Term", ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("function name must be non-empty")
        object.__setattr__(self, "arguments", tuple(self.arguments))

    @property
    def arity(self) -> int:
        return len(self.arguments)

    def is_ground(self) -> bool:
        return all(argument.is_ground() for argument in self.arguments)

    def variables(self) -> Iterator[Variable]:
        for argument in self.arguments:
            yield from argument.variables()

    def substitute(self, mapping) -> "FunctionTerm":
        return FunctionTerm(self.name, tuple(argument.substitute(mapping) for argument in self.arguments))

    def __str__(self) -> str:
        if not self.arguments:
            return self.name
        inner = ",".join(str(argument) for argument in self.arguments)
        return f"{self.name}({inner})"


Term = Union[Constant, Variable, FunctionTerm]
