"""Atoms, literals and comparison builtins.

* :class:`Atom` -- ``predicate(arg1, ..., argN)``.
* :class:`Literal` -- an atom with a sign: positive or ``not``-negated
  (negation as failure).
* :class:`Comparison` -- a builtin relational literal between two terms
  (``X < 20``, ``Y != Z``), evaluated during grounding.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Tuple

from repro.asp.errors import GroundingError
from repro.asp.syntax.terms import Constant, Term, Variable

__all__ = ["Atom", "Comparison", "Literal", "Signature"]

Signature = Tuple[str, int]


@dataclass(frozen=True, slots=True)
class Atom:
    """A (possibly non-ground) atom ``predicate(t1, ..., tn)``."""

    predicate: str
    arguments: Tuple[Term, ...] = ()
    # Lazily cached hash (0 = not yet computed).  Atoms live in the hash-heavy
    # inner loops of grounding, delta repair, and solving; recomputing the
    # recursive tuple hash on every set operation dominates those loops.
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")
        object.__setattr__(self, "arguments", tuple(self.arguments))

    def __hash__(self) -> int:
        cached = self._hash
        if cached == 0:
            cached = hash((self.predicate, self.arguments)) or 1
            object.__setattr__(self, "_hash", cached)
        return cached

    def __reduce__(self):
        # Unpickle through the normal constructor so __post_init__ validation
        # runs on the receiving side, and never ship the cached hash across a
        # pickle boundary: string hashing is randomized per interpreter
        # (PYTHONHASHSEED), so a hash cached in the parent would disagree with
        # hashes computed in a spawn-started worker process, silently breaking
        # set/dict membership there.  The constructor leaves _hash at 0.
        return (Atom, (self.predicate, self.arguments))

    @property
    def arity(self) -> int:
        return len(self.arguments)

    @property
    def signature(self) -> Signature:
        """``(predicate, arity)`` pair identifying the predicate."""
        return (self.predicate, self.arity)

    def is_ground(self) -> bool:
        return all(argument.is_ground() for argument in self.arguments)

    def variables(self) -> Iterator[Variable]:
        for argument in self.arguments:
            yield from argument.variables()

    def substitute(self, mapping) -> "Atom":
        if not self.arguments:
            return self
        return Atom(self.predicate, tuple(argument.substitute(mapping) for argument in self.arguments))

    def __str__(self) -> str:
        if not self.arguments:
            return self.predicate
        inner = ",".join(str(argument) for argument in self.arguments)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True, slots=True)
class Literal:
    """An atom literal with a default-negation sign."""

    atom: Atom
    positive: bool = True

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def signature(self) -> Signature:
        return self.atom.signature

    @property
    def negative(self) -> bool:
        return not self.positive

    def negate(self) -> "Literal":
        """Return the literal with the opposite sign."""
        return Literal(self.atom, not self.positive)

    def is_ground(self) -> bool:
        return self.atom.is_ground()

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def substitute(self, mapping) -> "Literal":
        return Literal(self.atom.substitute(mapping), self.positive)

    def __str__(self) -> str:
        if self.positive:
            return str(self.atom)
        return f"not {self.atom}"


_COMPARISON_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_CANONICAL_OPERATOR = {"==": "=", "<>": "!="}


@dataclass(frozen=True, slots=True)
class Comparison:
    """A builtin comparison literal ``left OP right``.

    Comparisons are evaluated during grounding once both sides are ground.
    Integers compare numerically; any other pair of constants compares by the
    total order (integers < symbols, symbols lexicographically) so that the
    relation is always defined, mirroring clingo's behaviour.
    """

    operator: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.operator not in _COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator {self.operator!r}")
        object.__setattr__(self, "operator", _CANONICAL_OPERATOR.get(self.operator, self.operator))

    def is_ground(self) -> bool:
        return self.left.is_ground() and self.right.is_ground()

    def variables(self) -> Iterator[Variable]:
        yield from self.left.variables()
        yield from self.right.variables()

    def substitute(self, mapping) -> "Comparison":
        return Comparison(self.operator, self.left.substitute(mapping), self.right.substitute(mapping))

    def evaluate(self) -> bool:
        """Evaluate a ground comparison; raise :class:`GroundingError` otherwise."""
        if not self.is_ground():
            raise GroundingError(f"cannot evaluate non-ground comparison {self}")
        left_key = _comparison_key(self.left)
        right_key = _comparison_key(self.right)
        relation = _COMPARISON_OPERATORS[self.operator]
        return relation(left_key, right_key)

    def __str__(self) -> str:
        return f"{self.left}{self.operator}{self.right}"


def _comparison_key(term: Term):
    """Map a ground term to a comparable key (ints first, then strings)."""
    if isinstance(term, Constant):
        if term.is_integer:
            return (0, term.value)
        return (1, str(term.value))
    # Ground function terms compare structurally after constants.
    return (2, str(term))
