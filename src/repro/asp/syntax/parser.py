"""Parser for a practical subset of the ASP-Core-2 input language.

Supported syntax::

    % comments run to the end of the line
    fact(a, 1).
    head(X) :- body(X, Y), Y < 20, not excluded(X).
    a(X) | b(X) :- c(X).          % disjunctive heads ('|' or ';')
    :- a(X), b(X).                % integrity constraints

Terms may be integers (optionally negative), symbolic constants
(lowercase-initial identifiers), quoted strings, variables
(uppercase-initial or '_'-initial identifiers), the anonymous variable
``_`` and uninterpreted function terms ``f(t1, ..., tn)``.

Comparisons between terms use ``= == != <> < <= > >=``.

This covers everything the paper's programs (Listing 1 plus rule r7) and the
synthetic workloads need, while remaining a faithful miniature of the
language clingo accepts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.asp.errors import ParseError
from repro.asp.syntax.atoms import Atom, Comparison, Literal
from repro.asp.syntax.program import Program
from repro.asp.syntax.rules import BodyElement, Rule
from repro.asp.syntax.terms import Constant, FunctionTerm, Term, Variable

__all__ = ["parse_program", "parse_rule", "parse_term", "tokenize"]


# --------------------------------------------------------------------------- #
# Tokenizer
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    value: str
    line: int
    column: int


_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*"),
    ("STRING", r'"(?:\\.|[^"\\])*"'),
    ("IF", r":-"),
    ("NUMBER", r"-?\d+"),
    ("IDENTIFIER", r"[a-z_][A-Za-z0-9_]*"),
    ("VARIABLE", r"[A-Z][A-Za-z0-9_]*"),
    ("COMPARE", r"==|!=|<>|<=|>=|<|>|="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("OR", r"\||;"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]

_TOKEN_REGEX = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def tokenize(text: str) -> List[Token]:
    """Tokenize ASP source text, dropping comments and whitespace."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_REGEX.finditer(text):
        kind = match.lastgroup or "MISMATCH"
        value = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {value!r}", line=line, column=column)
        tokens.append(Token(kind, value, line, column))
    return tokens


# --------------------------------------------------------------------------- #
# Recursive-descent parser
# --------------------------------------------------------------------------- #
class _Parser:
    """Parses a token stream into rules."""

    def __init__(self, tokens: Sequence[Token]):
        self._tokens = list(tokens)
        self._position = 0

    # -- token helpers -------------------------------------------------- #
    def _peek(self) -> Optional[Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._position += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {kind}, found end of input")
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} ({token.value!r})",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None or token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        return True

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar -------------------------------------------------------- #
    def parse_program(self, name: str = "program") -> Program:
        program = Program(name=name)
        while not self.at_end():
            program.add_rule(self.parse_rule())
        return program

    def parse_rule(self) -> Rule:
        head: Tuple[Atom, ...] = ()
        body: Tuple[BodyElement, ...] = ()
        if self._check("IF"):
            # Constraint: ":- body."
            self._advance()
            body = self._parse_body()
        else:
            head = self._parse_head()
            if self._check("IF"):
                self._advance()
                body = self._parse_body()
        self._expect("DOT")
        return Rule(head=head, body=body)

    def _parse_head(self) -> Tuple[Atom, ...]:
        atoms = [self._parse_atom()]
        while self._check("OR"):
            self._advance()
            atoms.append(self._parse_atom())
        return tuple(atoms)

    def _parse_body(self) -> Tuple[BodyElement, ...]:
        elements = [self._parse_body_element()]
        while self._check("COMMA"):
            self._advance()
            elements.append(self._parse_body_element())
        return tuple(elements)

    def _parse_body_element(self) -> BodyElement:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in rule body")
        if token.kind == "IDENTIFIER" and token.value == "not":
            self._advance()
            atom = self._parse_atom()
            return Literal(atom, positive=False)
        # Either a comparison (term OP term) or a positive atom literal.
        saved_position = self._position
        term = self._try_parse_term()
        if term is not None and self._check("COMPARE"):
            operator = self._advance().value
            right = self._parse_term()
            return Comparison(operator, term, right)
        self._position = saved_position
        atom = self._parse_atom()
        if self._check("COMPARE"):
            # e.g. "f(X) < 3" where the left side parsed as an atom.
            operator = self._advance().value
            right = self._parse_term()
            left = FunctionTerm(atom.predicate, atom.arguments) if atom.arguments else Constant(atom.predicate)
            return Comparison(operator, left, right)
        return Literal(atom, positive=True)

    def _parse_atom(self) -> Atom:
        token = self._expect("IDENTIFIER")
        if token.value == "not":
            raise ParseError("'not' is not a valid predicate name", line=token.line, column=token.column)
        arguments: Tuple[Term, ...] = ()
        if self._check("LPAREN"):
            self._advance()
            arguments = self._parse_term_list()
            self._expect("RPAREN")
        return Atom(token.value, arguments)

    def _parse_term_list(self) -> Tuple[Term, ...]:
        terms = [self._parse_term()]
        while self._check("COMMA"):
            self._advance()
            terms.append(self._parse_term())
        return tuple(terms)

    def _try_parse_term(self) -> Optional[Term]:
        """Parse a term if the upcoming tokens form one followed by a comparison."""
        saved_position = self._position
        try:
            term = self._parse_term()
        except ParseError:
            self._position = saved_position
            return None
        return term

    def _parse_term(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input while reading a term")
        if token.kind == "NUMBER":
            self._advance()
            return Constant(int(token.value))
        if token.kind == "STRING":
            self._advance()
            raw = token.value[1:-1]
            unescaped = raw.replace('\\"', '"').replace("\\\\", "\\")
            return Constant(unescaped, quoted=True)
        if token.kind == "VARIABLE":
            self._advance()
            return Variable(token.value)
        if token.kind == "IDENTIFIER":
            self._advance()
            if token.value == "_":
                return Variable.anonymous()
            if token.value.startswith("_"):
                return Variable(token.value)
            if self._check("LPAREN"):
                self._advance()
                arguments = self._parse_term_list()
                self._expect("RPAREN")
                return FunctionTerm(token.value, arguments)
            return Constant(token.value)
        raise ParseError(
            f"unexpected token {token.value!r} while reading a term",
            line=token.line,
            column=token.column,
        )


# --------------------------------------------------------------------------- #
# Public helpers
# --------------------------------------------------------------------------- #
def parse_program(text: str, name: str = "program") -> Program:
    """Parse ASP source ``text`` into a :class:`Program`."""
    return _Parser(tokenize(text)).parse_program(name=name)


def parse_rule(text: str) -> Rule:
    """Parse a single rule (trailing '.' required)."""
    parser = _Parser(tokenize(text))
    rule = parser.parse_rule()
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(
            "trailing input after rule",
            line=token.line if token else None,
            column=token.column if token else None,
        )
    return rule


def parse_term(text: str) -> Term:
    """Parse a single term."""
    parser = _Parser(tokenize(text))
    term = parser._parse_term()
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(
            "trailing input after term",
            line=token.line if token else None,
            column=token.column if token else None,
        )
    return term
