"""Abstract syntax for ASP programs: terms, atoms, literals, rules."""

from repro.asp.syntax.atoms import Atom, Comparison, Literal
from repro.asp.syntax.parser import parse_program, parse_rule, parse_term
from repro.asp.syntax.program import Program
from repro.asp.syntax.rules import Rule
from repro.asp.syntax.symbols import SymbolDelta, SymbolSyncError, SymbolTable, pack_ids, unpack_ids
from repro.asp.syntax.terms import Constant, FunctionTerm, Term, Variable

__all__ = [
    "Atom",
    "Comparison",
    "Constant",
    "FunctionTerm",
    "Literal",
    "Program",
    "Rule",
    "SymbolDelta",
    "SymbolSyncError",
    "SymbolTable",
    "Term",
    "Variable",
    "pack_ids",
    "unpack_ids",
    "parse_program",
    "parse_rule",
    "parse_term",
]
