"""Interned symbol ids: dense integer names for ground symbols.

Ground atoms (and any other hashable ground symbols: constants, RDF
triples) are heavy to compare and hash -- an :class:`~repro.asp.syntax.atoms.Atom`
hash walks its whole term tree on first use, and every pickle boundary
drops the cached hash on purpose (string hashing is randomized per
interpreter).  A :class:`SymbolTable` interns each distinct symbol once
and hands out a dense integer id ``0..n-1``; the inner loops of
grounding, delta repair and the wire then key on machine ints instead of
re-hashing object graphs, and a window's fact set becomes a flat id
array (:func:`pack_ids`) that crosses process boundaries without
pickling.

The table is *append-only*: an id, once assigned, never changes and is
never reused.  That gives three properties the rest of the stack leans
on:

* **Snapshots are integers.**  ``snapshot()`` is just the current length;
  ``diff_since(snapshot)`` is the tail of the symbol list.  Two sides of
  a boundary stay in sync by shipping only the newly-interned tail
  (:class:`SymbolDelta`), exactly once per symbol.
* **Determinism.**  Ids are assigned in interning order, so two
  processes that intern the same symbol stream agree on every id without
  coordination -- including across ``spawn`` boundaries where hash seeds
  differ.
* **Lock-free reads.**  Appends take a lock; ``resolve`` reads the
  backing list without one (CPython list appends are atomic with respect
  to reads of already-present slots).

Like :class:`~repro.asp.grounding.grounder.GroundingCache` and
:class:`~repro.asp.solving.incremental.SolverCache`, a pickled table
ships *empty*: id assignments are interpreter-local, and cross-boundary
sync is explicit via snapshot/diff, never implicit via pickle.
"""

from __future__ import annotations

import sys
import threading
from array import array
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SymbolDelta",
    "SymbolSyncError",
    "SymbolTable",
    "pack_ids",
    "unpack_ids",
]


class SymbolSyncError(ValueError):
    """A :class:`SymbolDelta` cannot be applied to this table.

    Raised when applying a delta would leave a gap in the id space (the
    receiver missed an earlier delta) or would rebind an existing id to a
    different symbol (the two sides diverged).  Either way the replica
    can no longer be trusted to resolve ids correctly.
    """


@dataclass(frozen=True, slots=True)
class SymbolDelta:
    """The tail of a table: symbols interned since a snapshot.

    ``start`` is the id of the first symbol in ``symbols``; the delta
    covers the contiguous id range ``[start, start + len(symbols))``.
    """

    start: int
    symbols: Tuple[Hashable, ...]

    @property
    def stop(self) -> int:
        return self.start + len(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    def __bool__(self) -> bool:
        return bool(self.symbols)


class SymbolTable:
    """Append-only interner mapping hashable symbols to dense integer ids."""

    __slots__ = ("_symbols", "_ids", "_lock")

    def __init__(self, symbols: Iterable[Hashable] = ()):
        self._symbols: List[Hashable] = []
        self._ids: Dict[Hashable, int] = {}
        self._lock = threading.Lock()
        for symbol in symbols:
            self.intern(symbol)

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #
    def intern(self, symbol: Hashable) -> int:
        """Return the id of ``symbol``, assigning the next dense id if new."""
        existing = self._ids.get(symbol)
        if existing is not None:
            return existing
        with self._lock:
            # Re-check under the lock: another thread may have interned it
            # between the optimistic probe and lock acquisition.
            existing = self._ids.get(symbol)
            if existing is not None:
                return existing
            symbol_id = len(self._symbols)
            self._symbols.append(symbol)
            self._ids[symbol] = symbol_id
            return symbol_id

    def intern_many(self, symbols: Iterable[Hashable]) -> List[int]:
        """Intern a batch; one lock round-trip covers all the new symbols."""
        ids = self._ids
        out: List[int] = []
        missing: List[Tuple[int, Hashable]] = []
        for position, symbol in enumerate(symbols):
            existing = ids.get(symbol)
            if existing is None:
                missing.append((position, symbol))
                out.append(-1)
            else:
                out.append(existing)
        if missing:
            with self._lock:
                for position, symbol in missing:
                    existing = ids.get(symbol)
                    if existing is None:
                        existing = len(self._symbols)
                        self._symbols.append(symbol)
                        ids[symbol] = existing
                    out[position] = existing
        return out

    def id_of(self, symbol: Hashable) -> Optional[int]:
        """Probe for the id of ``symbol`` without interning it."""
        return self._ids.get(symbol)

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve(self, symbol_id: int) -> Hashable:
        """Return the symbol behind ``symbol_id``; raise on unknown ids."""
        if symbol_id < 0:
            raise IndexError(f"symbol id {symbol_id} out of range")
        return self._symbols[symbol_id]

    def resolve_many(self, symbol_ids: Iterable[int]) -> Tuple[Hashable, ...]:
        symbols = self._symbols
        return tuple(symbols[symbol_id] for symbol_id in symbol_ids)

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._ids

    def __iter__(self) -> Iterator[Hashable]:
        return iter(tuple(self._symbols))

    # ------------------------------------------------------------------ #
    # Snapshot / diff sync
    # ------------------------------------------------------------------ #
    def snapshot(self) -> int:
        """An opaque sync point: the number of symbols interned so far."""
        return len(self._symbols)

    def diff_since(self, snapshot: int) -> SymbolDelta:
        """Symbols interned since ``snapshot`` (possibly empty)."""
        if not 0 <= snapshot <= len(self._symbols):
            raise SymbolSyncError(
                f"snapshot {snapshot} out of range for table of {len(self._symbols)} symbols"
            )
        return SymbolDelta(start=snapshot, symbols=tuple(self._symbols[snapshot:]))

    def apply(self, delta: SymbolDelta) -> int:
        """Append a replica delta; returns the number of new symbols added.

        Overlap with already-known ids is tolerated as long as the symbols
        agree (re-delivered deltas are idempotent); a gap or a mismatch
        raises :class:`SymbolSyncError` because the replica would resolve
        ids to the wrong symbols from then on.
        """
        with self._lock:
            size = len(self._symbols)
            if delta.start > size:
                raise SymbolSyncError(
                    f"delta starts at id {delta.start} but table only has {size} symbols "
                    "(a preceding delta was lost)"
                )
            added = 0
            for offset, symbol in enumerate(delta.symbols):
                symbol_id = delta.start + offset
                if symbol_id < size:
                    if self._symbols[symbol_id] != symbol:
                        raise SymbolSyncError(
                            f"delta rebinds id {symbol_id}: table holds "
                            f"{self._symbols[symbol_id]!r}, delta carries {symbol!r}"
                        )
                    continue
                self._symbols.append(symbol)
                self._ids[symbol] = symbol_id
                size += 1
                added += 1
            return added

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        # Ship an *empty* table: ids are interpreter-local names, and the
        # explicit snapshot/diff protocol is the only sanctioned way to
        # replicate them.  This mirrors GroundingCache/SolverCache, which
        # ship configuration, not contents.
        return (SymbolTable, ())


# --------------------------------------------------------------------------- #
# Flat id arrays
# --------------------------------------------------------------------------- #
_ID_TYPECODE = "I"  # u32: 4 bytes per fact id on every supported platform


def pack_ids(symbol_ids: Sequence[int]) -> bytes:
    """Pack ids into a flat little-endian u32 array (the wire/ring format).

    Raises :class:`OverflowError` when an id does not fit in a u32 --
    4 billion distinct ground symbols is far past any plausible session.
    """
    if array(_ID_TYPECODE).itemsize != 4:  # pragma: no cover - not reachable on CPython
        raise OverflowError("platform array('I') is not 4 bytes wide")
    packed = array(_ID_TYPECODE, symbol_ids)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        packed.byteswap()
    return packed.tobytes()


def unpack_ids(data: bytes) -> Tuple[int, ...]:
    """Inverse of :func:`pack_ids`."""
    if len(data) % 4:
        raise ValueError(f"id array of {len(data)} bytes is not a whole number of u32s")
    packed = array(_ID_TYPECODE)
    packed.frombytes(data)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        packed.byteswap()
    return tuple(packed)
