"""Solving phase: from a ground program to its stable models."""

from repro.asp.solving.completion import CompletionEncoding, build_completion
from repro.asp.solving.sat import DPLLSolver, Satisfiability
from repro.asp.solving.solver import StableModelSolver, stable_models
from repro.asp.solving.unfounded import greatest_unfounded_set, is_founded
from repro.asp.solving.wellfounded import WellFoundedModel, well_founded_model

__all__ = [
    "CompletionEncoding",
    "DPLLSolver",
    "Satisfiability",
    "StableModelSolver",
    "WellFoundedModel",
    "build_completion",
    "greatest_unfounded_set",
    "is_founded",
    "stable_models",
    "well_founded_model",
]
