"""Solving phase: from a ground program to its stable models."""

from repro.asp.solving.completion import CompletionEncoding, build_completion
from repro.asp.solving.incremental import IncrementalSolver, SolveStats, SolverCache
from repro.asp.solving.sat import DPLLSolver, Satisfiability
from repro.asp.solving.solver import (
    StableModelSolver,
    constraints_satisfied,
    seed_wellfounded_consequences,
    stable_models,
)
from repro.asp.solving.unfounded import greatest_unfounded_set, is_founded
from repro.asp.solving.wellfounded import WellFoundedModel, alternating_fixpoint, well_founded_model

__all__ = [
    "CompletionEncoding",
    "DPLLSolver",
    "IncrementalSolver",
    "Satisfiability",
    "SolveStats",
    "SolverCache",
    "StableModelSolver",
    "WellFoundedModel",
    "alternating_fixpoint",
    "build_completion",
    "constraints_satisfied",
    "greatest_unfounded_set",
    "is_founded",
    "seed_wellfounded_consequences",
    "stable_models",
    "well_founded_model",
]
