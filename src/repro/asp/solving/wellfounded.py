"""Well-founded semantics via the alternating fixpoint.

For a normal (non-disjunctive) ground program the well-founded model
partitions atoms into *true*, *false* and *undefined*.  Every stable model
contains all well-founded-true atoms and no well-founded-false atom, so:

* if the well-founded model is *total* (no undefined atoms) the program has
  exactly one stable model candidate -- this is the fast path that the
  paper's stratified traffic programs always hit;
* otherwise the undefined atoms delimit the search space handed to the
  DPLL-based solver.

The alternating fixpoint (Van Gelder) iterates the antimonotone operator
``Γ(X) = least model of the reduct of P w.r.t. X``:

    T_0 = Γ(H),  U_0 = Γ(T_0),  T_1 = Γ(U_0), ...

converging to the set of true atoms ``T`` and the set of possibly-true atoms
``Γ(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.asp.grounding.grounder import GroundProgram, GroundRule
from repro.asp.syntax.atoms import Atom

__all__ = ["WellFoundedModel", "alternating_fixpoint", "well_founded_model"]


@dataclass(frozen=True)
class WellFoundedModel:
    """The three-valued well-founded model of a normal ground program."""

    true: FrozenSet[Atom]
    false: FrozenSet[Atom]
    undefined: FrozenSet[Atom]

    @property
    def is_total(self) -> bool:
        """True when no atom is undefined -- the model is two-valued."""
        return not self.undefined


def _least_model(rules: List[GroundRule], facts: Set[Atom], assume_false: Set[Atom], universe: Set[Atom]) -> Set[Atom]:
    """Least model of the reduct w.r.t. ``assume_false``.

    The reduct keeps a rule iff none of its negative body atoms is *outside*
    ``assume_false`` ... i.e. a negative literal ``not a`` is satisfied iff
    ``a`` is assumed false.  Computed with the usual counter-based linear
    fixpoint (Dowling-Gallier style).
    """
    derived: Set[Atom] = set(facts)
    # Precompute, per rule, whether the reduct keeps it and how many positive
    # body atoms are still unsatisfied.
    watchers: Dict[Atom, List[int]] = {}
    counters: List[int] = []
    heads: List[Optional[Atom]] = []
    queue: List[Atom] = list(derived)

    for rule_index, rule in enumerate(rules):
        if len(rule.head) != 1:
            raise ValueError("well-founded semantics requires a normal (non-disjunctive) program")
        if any(atom not in assume_false for atom in rule.negative_body):
            counters.append(-1)  # rule deleted by the reduct
            heads.append(None)
            continue
        missing = [atom for atom in rule.positive_body if atom not in derived]
        counters.append(len(missing))
        heads.append(rule.head[0])
        if not missing:
            head = rule.head[0]
            if head not in derived:
                derived.add(head)
                queue.append(head)
        else:
            for atom in missing:
                watchers.setdefault(atom, []).append(rule_index)

    while queue:
        atom = queue.pop()
        for rule_index in watchers.get(atom, ()):  # counters may go negative if already satisfied; guard below
            if counters[rule_index] <= 0:
                continue
            counters[rule_index] -= 1
            if counters[rule_index] == 0:
                head = heads[rule_index]
                if head is not None and head not in derived:
                    derived.add(head)
                    queue.append(head)
    # Every derived atom is a fact or a rule head, both of which the caller
    # includes in ``universe``, so no restriction to the universe is needed.
    return derived


def alternating_fixpoint(rules: List[GroundRule], facts: Set[Atom], universe: Set[Atom]):
    """Run Van Gelder's alternating fixpoint over an explicit subprogram.

    Returns ``(true_set, possible_set)``: the well-founded-true atoms and
    the possibly-true atoms (their difference is the undefined set; atoms of
    ``universe`` outside ``possible_set`` are well-founded-false).  Exposed
    separately from :func:`well_founded_model` so that the incremental
    solving layer can evaluate stratum slices of the residual program
    without materialising a full :class:`WellFoundedModel` each time.
    """

    def gamma(assume_false: Set[Atom]) -> Set[Atom]:
        return _least_model(rules, facts, assume_false, universe)

    # Alternating fixpoint.  true_set grows, possible_set shrinks.
    true_set: Set[Atom] = set()
    possible_set: Set[Atom] = set(universe)
    while True:
        new_true = gamma(universe - possible_set)
        new_possible = gamma(universe - new_true)
        if new_true == true_set and new_possible == possible_set:
            break
        true_set, possible_set = new_true, new_possible
    return true_set, possible_set


def well_founded_model(ground: GroundProgram) -> WellFoundedModel:
    """Compute the well-founded model of a normal ground program.

    Integrity constraints (headless rules) are ignored here; the caller is
    responsible for checking them against the resulting model.
    """
    rules = [rule for rule in ground.rules if not rule.is_constraint]
    facts = set(ground.facts)
    universe: Set[Atom] = set(ground.possible_atoms) | set(facts)
    for rule in rules:
        universe.update(rule.atoms())

    true_set, possible_set = alternating_fixpoint(rules, facts, universe)

    false_set = universe - possible_set
    undefined = possible_set - true_set
    return WellFoundedModel(
        true=frozenset(true_set),
        false=frozenset(false_set),
        undefined=frozenset(undefined),
    )
