"""Incremental solving across window slides.

`DeltaGrounding` repairs the *instantiation* between overlapping windows;
this module does the same one layer down, for the *solving* state.  An
:class:`IncrementalSolver` holds per-track state that survives from one
window to the next and is repaired from the content delta between the two
ground programs (the counting-only `RepairStats` from the grounder tells us
*that* a repair happened; the rule/fact diff tells us *what* changed):

* **Well-founded strata reuse** -- the residual rules are sliced into
  strongly-connected predicate components, evaluated bottom-up with the
  alternating fixpoint.  Each stratum's consequences are cached keyed on its
  rules, its facts and the truth of its input atoms; strata untouched by the
  window's repair are reused verbatim.  Crucially the fixpoint only ever
  sees the *relevant subprogram* (residual rules plus the facts their
  bodies mention), never the full window of facts -- from-scratch solving
  re-derives every fact through the fixpoint queue on every window, which
  is where its per-window cost goes.
* **Persistent completion encoding** -- when the well-founded model is not
  total, a selector-guarded Clark completion is kept alive inside one
  :class:`DPLLSolver`.  Every rule clause carries a selector literal and
  every fact a fact-selector; a solve assumes the selectors of the rules
  and facts of the *current* window plus the window's well-founded
  consequences, and enumerates answer sets under those assumptions.
  Retracted rules and facts have their clauses removed and the affected
  support clauses rebuilt; learned unfounded-set clauses are retained
  across windows while their source rules survive the slide and dropped as
  soon as a new rule head or fact could give the unfounded atoms fresh
  external support.  Blocking clauses are window-scoped and removed after
  each enumeration.

Disjunctive programs fall back to the from-scratch
:class:`StableModelSolver` (their guess-and-check minimality test keeps no
reusable state).  The contract in all cases: answer sets are identical to
from-scratch solving of the same ground program.

:class:`SolverCache` wraps one :class:`IncrementalSolver` per delta track,
mirroring how `GroundingCache` keys its `DeltaGrounding` states: LRU
eviction beyond ``max_states``, per-track locks for thread backends, and a
``__reduce__`` that ships an empty cache across process boundaries (worker
processes warm their own solver state).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.asp.grounding.dependency import strongly_connected_components
from repro.asp.grounding.grounder import GroundProgram, GroundRule
from repro.asp.solving.sat import DPLLSolver, Satisfiability
from repro.asp.solving.solver import StableModelSolver, constraints_satisfied
from repro.asp.solving.unfounded import greatest_unfounded_set
from repro.asp.solving.wellfounded import alternating_fixpoint
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.symbols import SymbolTable

__all__ = ["IncrementalSolver", "SolveStats", "SolverCache"]

#: Compact the persistent SAT clause database once this many tombstones
#: accumulate (and they outnumber the live clauses).
_COMPACTION_THRESHOLD = 256


@dataclass(frozen=True)
class SolveStats:
    """Outcome of one :meth:`IncrementalSolver.solve` call.

    ``outcome`` is ``"incremental"`` when prior track state was repaired and
    re-solved under assumptions, ``"full"`` for the first window of a track,
    and ``"fallback"`` when a disjunctive program forced from-scratch
    solving.
    """

    outcome: str
    encoding_repairs: int = 0
    clauses_retained: int = 0
    clauses_dropped: int = 0
    strata_reused: int = 0
    strata_recomputed: int = 0

    @property
    def is_incremental(self) -> bool:
        return self.outcome == "incremental"


class _Counters:
    """Mutable accumulator threaded through one solve call."""

    __slots__ = ("encoding_repairs", "clauses_retained", "clauses_dropped", "strata_reused", "strata_recomputed")

    def __init__(self) -> None:
        self.encoding_repairs = 0
        self.clauses_retained = 0
        self.clauses_dropped = 0
        self.strata_reused = 0
        self.strata_recomputed = 0


@dataclass
class _StratumResult:
    """Cached well-founded consequences of one predicate component."""

    rules: FrozenSet[GroundRule]
    facts: FrozenSet[Atom]
    inputs: FrozenSet[Tuple[Atom, bool]]
    true: Set[Atom]
    undefined: Set[Atom]


class _RuleEntry:
    __slots__ = ("selector", "body_variable", "clause_ids", "head")

    def __init__(self, selector: int, body_variable: Optional[int], clause_ids: List[int], head: Optional[Atom]):
        self.selector = selector
        self.body_variable = body_variable
        self.clause_ids = clause_ids
        self.head = head


class _FactEntry:
    __slots__ = ("selector", "clause_ids")

    def __init__(self, selector: int, clause_ids: List[int]):
        self.selector = selector
        self.clause_ids = clause_ids


class _Support:
    __slots__ = ("clause_id", "bodies")

    def __init__(self) -> None:
        self.clause_id: Optional[int] = None
        self.bodies: List[int] = []


class _LearnedClause:
    __slots__ = ("clause_id", "atoms", "sources")

    def __init__(self, clause_id: int, atoms: FrozenSet[Atom], sources: FrozenSet[GroundRule]):
        self.clause_id = clause_id
        self.atoms = atoms
        self.sources = sources


class _PersistentEncoding:
    """A selector-guarded Clark completion kept alive across windows.

    Each non-disjunctive rule contributes a selector ``s`` and (for
    non-empty bodies) a body variable ``b`` with ``b <-> s & body``; each
    fact atom contributes a fact selector ``f`` with ``f -> atom``.  The
    support ("only if") clause of an atom disjoins the body variables and
    fact selectors currently defining it and is rebuilt whenever that set
    changes.  Assuming all active selectors true makes the encoding
    logically identical to the from-scratch completion of the current
    window.
    """

    def __init__(self) -> None:
        self.solver = DPLLSolver()
        #: Interner of the atoms this encoding has ever seen; the mapping
        #: to solver variables below keys on its dense ids, so the hot
        #: atom->variable lookups of enumeration hash each atom once for
        #: the lifetime of the encoding.
        self.symbols = SymbolTable()
        self.atom_to_variable: Dict[int, int] = {}
        self.rule_entries: Dict[GroundRule, _RuleEntry] = {}
        self.fact_entries: Dict[Atom, _FactEntry] = {}
        #: Active atoms and their support state; membership here defines
        #: which atoms participate in model extraction and blocking.
        self.supports: Dict[Atom, _Support] = {}
        self.learned: List[_LearnedClause] = []
        self._learned_keys: Set[Tuple[FrozenSet[Atom], FrozenSet[GroundRule]]] = set()
        self._atom_refs: Dict[Atom, int] = {}

    # -- atom bookkeeping ---------------------------------------------- #
    def variable_of(self, atom: Atom) -> int:
        """Solver variable of an atom already registered via _variable_of."""
        return self.atom_to_variable[self.symbols.intern(atom)]

    def _variable_of(self, atom: Atom) -> int:
        atom_id = self.symbols.intern(atom)
        variable = self.atom_to_variable.get(atom_id)
        if variable is None:
            variable = self.solver.new_variable()
            self.atom_to_variable[atom_id] = variable
        return variable

    def _retain_atoms(self, atoms: Iterable[Atom], dirty: Set[Atom]) -> None:
        for atom in atoms:
            count = self._atom_refs.get(atom, 0)
            self._atom_refs[atom] = count + 1
            if count == 0:
                self._variable_of(atom)
                self.supports[atom] = _Support()
                # A freshly active atom starts with no support: the rebuild
                # pass emits its "forced false unless supported" clause.
                dirty.add(atom)

    def _release_atoms(self, atoms: Iterable[Atom], dirty: Set[Atom], counters: _Counters) -> None:
        for atom in atoms:
            count = self._atom_refs[atom] - 1
            if count:
                self._atom_refs[atom] = count
                continue
            del self._atom_refs[atom]
            support = self.supports.pop(atom)
            if support.clause_id is not None:
                self.solver.remove_clause(support.clause_id)
                counters.clauses_dropped += 1
            dirty.discard(atom)

    # -- synchronisation ------------------------------------------------ #
    def sync(self, rules: Set[GroundRule], facts: Set[Atom], counters: _Counters) -> bool:
        """Repair the encoding to match the given rules and facts.

        Returns True when anything changed.  ``rules`` must contain no
        disjunctive rule (the caller falls back before reaching here).
        """
        removed_rules = [rule for rule in self.rule_entries if rule not in rules]
        added_rules = [rule for rule in rules if rule not in self.rule_entries]
        removed_facts = [atom for atom in self.fact_entries if atom not in facts]
        added_facts = [atom for atom in facts if atom not in self.fact_entries]
        changed = bool(removed_rules or added_rules or removed_facts or added_facts)
        if not changed:
            counters.clauses_retained += len(self.learned)
            return False

        dirty: Set[Atom] = set()
        invalidating_atoms: Set[Atom] = set()

        for rule in removed_rules:
            entry = self.rule_entries.pop(rule)
            for clause_id in entry.clause_ids:
                self.solver.remove_clause(clause_id)
                counters.clauses_dropped += 1
            if entry.head is not None:
                support = self.supports[entry.head]
                support.bodies.remove(entry.body_variable)
                dirty.add(entry.head)
            self._release_atoms(set(rule.atoms()), dirty, counters)

        for atom in removed_facts:
            entry = self.fact_entries.pop(atom)
            for clause_id in entry.clause_ids:
                self.solver.remove_clause(clause_id)
                counters.clauses_dropped += 1
            support = self.supports[atom]
            support.bodies.remove(entry.selector)
            dirty.add(atom)
            self._release_atoms((atom,), dirty, counters)

        for atom in added_facts:
            self._retain_atoms((atom,), dirty)
            selector = self.solver.new_variable()
            clause_ids = []
            clause_id = self.solver.add_clause([-selector, self._variable_of(atom)])
            if clause_id is not None:
                clause_ids.append(clause_id)
            self.fact_entries[atom] = _FactEntry(selector, clause_ids)
            self.supports[atom].bodies.append(selector)
            dirty.add(atom)
            invalidating_atoms.add(atom)

        for rule in added_rules:
            self._retain_atoms(set(rule.atoms()), dirty)
            selector = self.solver.new_variable()
            clause_ids: List[int] = []

            def emit(literals: List[int]) -> None:
                clause_id = self.solver.add_clause(literals)
                if clause_id is not None:
                    clause_ids.append(clause_id)

            body_literals = [self._variable_of(atom) for atom in rule.positive_body]
            body_literals += [-self._variable_of(atom) for atom in rule.negative_body]

            if rule.is_constraint:
                emit([-selector] + [-literal for literal in body_literals])
                self.rule_entries[rule] = _RuleEntry(selector, None, clause_ids, None)
                continue

            head = rule.head[0]
            if not body_literals:
                # An active empty-body rule supports its head outright: the
                # selector doubles as the body variable.
                body_variable = selector
                emit([-selector, self._variable_of(head)])
            else:
                body_variable = self.solver.new_variable()
                emit([-body_variable, selector])
                for literal in body_literals:
                    emit([-body_variable, literal])
                emit([body_variable, -selector] + [-literal for literal in body_literals])
                emit([-body_variable, self._variable_of(head)])
            self.rule_entries[rule] = _RuleEntry(selector, body_variable, clause_ids, head)
            self.supports[head].bodies.append(body_variable)
            dirty.add(head)
            invalidating_atoms.add(head)

        # Learned unfounded-set clauses survive while all their source rules
        # survive and nothing could lend the unfounded atoms new external
        # support (a new rule head or fact inside the set).
        retained: List[_LearnedClause] = []
        self._learned_keys.clear()
        for learned in self.learned:
            if learned.atoms & invalidating_atoms or any(
                source not in self.rule_entries for source in learned.sources
            ):
                self.solver.remove_clause(learned.clause_id)
                counters.clauses_dropped += 1
            else:
                retained.append(learned)
                self._learned_keys.add((learned.atoms, learned.sources))
        counters.clauses_retained += len(retained)
        self.learned = retained

        for atom in dirty:
            support = self.supports.get(atom)
            if support is None:
                continue
            if support.clause_id is not None:
                self.solver.remove_clause(support.clause_id)
                counters.clauses_dropped += 1
            support.clause_id = self.solver.add_clause([-self.variable_of(atom)] + support.bodies)

        if self.solver.removed_clause_count > _COMPACTION_THRESHOLD and (
            self.solver.removed_clause_count > self.solver.clause_count
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Rebuild the SAT solver without tombstoned clauses or dead variables."""
        old = self.solver
        fresh = DPLLSolver()
        variable_map: Dict[int, int] = {}

        def remap(literals: List[int]) -> List[int]:
            mapped = []
            for literal in literals:
                variable = variable_map.get(abs(literal))
                if variable is None:
                    variable = fresh.new_variable()
                    variable_map[abs(literal)] = variable
                mapped.append(variable if literal > 0 else -variable)
            return mapped

        def migrate(clause_ids: List[int]) -> List[int]:
            migrated = []
            for clause_id in clause_ids:
                literals = old.clause_literals(clause_id)
                if literals is None:
                    continue
                fresh_id = fresh.add_clause(remap(literals))
                if fresh_id is not None:
                    migrated.append(fresh_id)
            return migrated

        for entry in self.rule_entries.values():
            entry.clause_ids = migrate(entry.clause_ids)
        for fact_entry in self.fact_entries.values():
            fact_entry.clause_ids = migrate(fact_entry.clause_ids)
        for support in self.supports.values():
            if support.clause_id is not None:
                [support.clause_id] = migrate([support.clause_id]) or [None]
            support.bodies = [
                (variable_map.setdefault(body, fresh.new_variable())) for body in support.bodies
            ]
        for learned in self.learned:
            [learned.clause_id] = migrate([learned.clause_id]) or [None]
        self.learned = [learned for learned in self.learned if learned.clause_id is not None]
        for entry in self.rule_entries.values():
            entry.selector = variable_map.setdefault(entry.selector, fresh.new_variable())
            if entry.body_variable is not None:
                entry.body_variable = variable_map.setdefault(entry.body_variable, fresh.new_variable())
        for fact_entry in self.fact_entries.values():
            fact_entry.selector = variable_map.setdefault(fact_entry.selector, fresh.new_variable())
        self.atom_to_variable = {
            atom: variable_map[variable]
            for atom, variable in self.atom_to_variable.items()
            if variable in variable_map
        }
        self.solver = fresh


class IncrementalSolver:
    """Per-track solver state repaired window-to-window.

    Stateless from the caller's perspective: :meth:`solve` takes the current
    window's ground program and returns its answer sets (identical to
    from-scratch solving) plus a :class:`SolveStats` describing how much
    prior state was reused.
    """

    def __init__(self) -> None:
        self._stratum_cache: Dict[FrozenSet[str], _StratumResult] = {}
        self._encoding: Optional[_PersistentEncoding] = None
        self._windows_solved = 0

    def solve(self, ground: GroundProgram, limit: Optional[int] = None) -> Tuple[List[Set[Atom]], SolveStats]:
        first_window = self._windows_solved == 0
        self._windows_solved += 1
        counters = _Counters()

        if any(rule.is_disjunctive for rule in ground.rules):
            # Guess-and-check minimality keeps no reusable state: fall back.
            models = [] if limit is not None and limit <= 0 else list(StableModelSolver(ground).models(limit=limit))
            return models, SolveStats(outcome="fallback")

        outcome = "full" if first_window else "incremental"
        if limit is not None and limit <= 0:
            return [], self._finish(outcome, counters)

        rules = [rule for rule in ground.rules if not rule.is_constraint]
        constraints = [rule for rule in ground.rules if rule.is_constraint]
        facts = set(ground.facts)

        true_atoms, undefined = self._well_founded(rules, facts, counters)
        if not undefined:
            candidate = facts | true_atoms
            models = [candidate] if constraints_satisfied(constraints, candidate) else []
            return models, self._finish(outcome, counters)

        models = self._enumerate(ground, constraints, facts, true_atoms, undefined, limit, counters)
        return models, self._finish(outcome, counters)

    @staticmethod
    def _finish(outcome: str, counters: _Counters) -> SolveStats:
        return SolveStats(
            outcome=outcome,
            encoding_repairs=counters.encoding_repairs,
            clauses_retained=counters.clauses_retained,
            clauses_dropped=counters.clauses_dropped,
            strata_reused=counters.strata_reused,
            strata_recomputed=counters.strata_recomputed,
        )

    # -- well-founded evaluation over the relevant subprogram ------------ #
    def _well_founded(
        self, rules: List[GroundRule], facts: Set[Atom], counters: _Counters
    ) -> Tuple[Set[Atom], Set[Atom]]:
        """Well-founded (true, undefined) atoms of the residual rules.

        Facts outside the residual rules' atoms are trivially true and are
        *not* included in the returned true set; the caller unions the full
        fact set back in.  This is what keeps the incremental path off the
        O(window) fixpoint: only the relevant subprogram is evaluated.
        """
        if not rules:
            return set(), set()

        rules_by_head_predicate: Dict[str, List[GroundRule]] = {}
        adjacency: Dict[str, Set[str]] = {}
        for rule in rules:
            head_predicate = rule.head[0].predicate
            rules_by_head_predicate.setdefault(head_predicate, []).append(rule)
            adjacency.setdefault(head_predicate, set())
            for atom in rule.positive_body:
                adjacency.setdefault(atom.predicate, set()).add(head_predicate)
            for atom in rule.negative_body:
                adjacency.setdefault(atom.predicate, set()).add(head_predicate)

        facts_by_predicate: Dict[str, Set[Atom]] = {}
        for atom in facts:
            if atom.predicate in adjacency:
                facts_by_predicate.setdefault(atom.predicate, set()).add(atom)

        derived_true: Set[Atom] = set()
        undefined: Set[Atom] = set()
        # Tarjan emits sink components first; reverse for dependencies-first.
        for component in reversed(strongly_connected_components(adjacency)):
            component_rules = [
                rule for predicate in component for rule in rules_by_head_predicate.get(predicate, ())
            ]
            if not component_rules:
                continue
            component_facts: Set[Atom] = set()
            for predicate in component:
                component_facts |= facts_by_predicate.get(predicate, set())

            inputs: Dict[Atom, bool] = {}
            deferred = False
            for rule in component_rules:
                for atom in rule.positive_body:
                    if atom.predicate not in component and atom not in inputs:
                        if atom in undefined:
                            deferred = True
                            break
                        inputs[atom] = atom in facts or atom in derived_true
                for atom in rule.negative_body:
                    if atom.predicate not in component and atom not in inputs:
                        if atom in undefined:
                            deferred = True
                            break
                        inputs[atom] = atom in facts or atom in derived_true
                if deferred:
                    break
            if deferred:
                # An input is three-valued: stratum-wise evaluation no longer
                # applies cleanly, so evaluate the whole relevant subprogram
                # jointly (still never the full window of facts).
                counters.strata_recomputed += 1
                return self._joint_well_founded(rules, facts)

            key_rules = frozenset(component_rules)
            key_facts = frozenset(component_facts)
            key_inputs = frozenset(inputs.items())
            component_key = frozenset(component)
            cached = self._stratum_cache.get(component_key)
            if (
                cached is not None
                and cached.rules == key_rules
                and cached.facts == key_facts
                and cached.inputs == key_inputs
            ):
                counters.strata_reused += 1
                derived_true |= cached.true
                undefined |= cached.undefined
                continue

            counters.strata_recomputed += 1
            simplified: List[GroundRule] = []
            for rule in component_rules:
                alive = True
                positive: List[Atom] = []
                negative: List[Atom] = []
                for atom in rule.positive_body:
                    if atom.predicate in component:
                        positive.append(atom)
                    elif not inputs[atom]:
                        alive = False
                        break
                if not alive:
                    continue
                for atom in rule.negative_body:
                    if atom.predicate in component:
                        negative.append(atom)
                    elif inputs[atom]:
                        alive = False
                        break
                if not alive:
                    continue
                simplified.append(GroundRule(rule.head, tuple(positive), tuple(negative)))

            universe: Set[Atom] = set(component_facts)
            for rule in simplified:
                universe.update(rule.atoms())
            stratum_true, stratum_possible = alternating_fixpoint(simplified, component_facts, universe)
            stratum_undefined = stratum_possible - stratum_true
            self._stratum_cache[component_key] = _StratumResult(
                rules=key_rules,
                facts=key_facts,
                inputs=key_inputs,
                true=stratum_true,
                undefined=stratum_undefined,
            )
            derived_true |= stratum_true
            undefined |= stratum_undefined
        return derived_true, undefined

    @staticmethod
    def _joint_well_founded(rules: List[GroundRule], facts: Set[Atom]) -> Tuple[Set[Atom], Set[Atom]]:
        universe: Set[Atom] = set()
        for rule in rules:
            universe.update(rule.atoms())
        relevant_facts = {atom for atom in universe if atom in facts}
        true_atoms, possible = alternating_fixpoint(rules, relevant_facts, universe)
        return true_atoms, possible - true_atoms

    # -- assumption-based enumeration over the persistent encoding ------- #
    def _enumerate(
        self,
        ground: GroundProgram,
        constraints: List[GroundRule],
        facts: Set[Atom],
        wf_true: Set[Atom],
        wf_undefined: Set[Atom],
        limit: Optional[int],
        counters: _Counters,
    ) -> List[Set[Atom]]:
        encoding = self._encoding
        freshly_built = encoding is None
        if encoding is None:
            encoding = self._encoding = _PersistentEncoding()
        changed = encoding.sync(set(ground.rules), facts, counters)
        if changed and not freshly_built:
            counters.encoding_repairs += 1

        assumptions: List[int] = []
        for entry in encoding.rule_entries.values():
            assumptions.append(entry.selector)
        for fact_entry in encoding.fact_entries.values():
            assumptions.append(fact_entry.selector)
        # Well-founded consequences, window-scoped.  Every active atom is
        # classified by the well-founded pass (facts are true, rule atoms are
        # in the relevant universe), so anything neither true nor undefined
        # is known false.
        for atom in encoding.supports:
            if atom in facts or atom in wf_true:
                assumptions.append(encoding.variable_of(atom))
            elif atom not in wf_undefined:
                assumptions.append(-encoding.variable_of(atom))

        active_atoms = list(encoding.supports)
        models: List[Set[Atom]] = []
        blocking_ids: List[int] = []
        try:
            while limit is None or len(models) < limit:
                status, assignment = encoding.solver.solve(assumptions)
                if status is Satisfiability.UNSATISFIABLE or assignment is None:
                    break
                candidate = {
                    atom for atom in active_atoms if assignment.get(encoding.variable_of(atom), False)
                }
                blocking = [
                    (-encoding.variable_of(atom) if atom in candidate else encoding.variable_of(atom))
                    for atom in active_atoms
                ]
                if blocking:
                    blocking_id = encoding.solver.add_clause(blocking)
                    if blocking_id is not None:
                        blocking_ids.append(blocking_id)
                if constraints_satisfied(constraints, candidate):
                    unfounded = greatest_unfounded_set(ground, candidate)
                    if unfounded:
                        self._learn_unfounded(encoding, unfounded)
                    else:
                        models.append(candidate)
                if not blocking:
                    break  # degenerate: nothing to block, a single model exists
        finally:
            # Blocking clauses are meaningful only for this window's
            # enumeration: retract them so the next re-solve starts clean.
            for blocking_id in blocking_ids:
                encoding.solver.remove_clause(blocking_id)
        return models

    @staticmethod
    def _learn_unfounded(encoding: _PersistentEncoding, unfounded: Set[Atom]) -> None:
        """Learn the unfounded-set clause: not all of the set without support.

        Sound for any window in which no rule head or fact inside the set
        appears beyond the recorded sources -- `sync` drops the clause the
        moment that could happen.
        """
        sources: List[GroundRule] = []
        clause = [-encoding.variable_of(atom) for atom in unfounded]
        for rule, entry in encoding.rule_entries.items():
            if entry.head is None or entry.head not in unfounded:
                continue
            if any(atom in unfounded for atom in rule.positive_body):
                continue  # internal support does not found the set
            sources.append(rule)
            clause.append(entry.body_variable)
        key = (frozenset(unfounded), frozenset(sources))
        if key in encoding._learned_keys:
            return
        clause_id = encoding.solver.add_clause(clause)
        if clause_id is not None:
            encoding.learned.append(_LearnedClause(clause_id, key[0], key[1]))
            encoding._learned_keys.add(key)


def _rebuild_solver_cache(max_states: int) -> "SolverCache":
    return SolverCache(max_states=max_states)


class SolverCache:
    """Per-track incremental solver states with LRU eviction.

    The streaming layer attaches one of these next to its `GroundingCache`;
    each delta track gets an :class:`IncrementalSolver` whose state survives
    across the track's windows.  Evicting a track (beyond ``max_states``)
    just costs the next window a full solve.
    """

    def __init__(self, max_states: int = 16):
        if max_states < 1:
            raise ValueError("max_states must be at least 1")
        self.max_states = max_states
        self._states: "OrderedDict[int, IncrementalSolver]" = OrderedDict()
        self._state_locks: Dict[int, threading.Lock] = {}
        self._lock = threading.Lock()
        self._incremental_solves = 0
        self._full_solves = 0
        self._fallback_solves = 0
        self._encoding_repairs = 0
        self._clauses_retained = 0
        self._clauses_dropped = 0
        self._strata_reused = 0
        self._strata_recomputed = 0
        self._evictions = 0
        # Track -> human-readable name, attached by multiplexing owners
        # (see GroundingCache.label_track); observability only.
        self._track_labels: Dict[int, str] = {}

    def solve_incremental(
        self, ground: GroundProgram, track: int, limit: Optional[int] = None
    ) -> Tuple[List[Set[Atom]], SolveStats]:
        """Solve ``ground`` with (and updating) the state of ``track``."""
        with self._lock:
            state = self._states.get(track)
            if state is None:
                state = IncrementalSolver()
                self._states[track] = state
            self._states.move_to_end(track)
            while len(self._states) > self.max_states:
                evicted_track, _ = self._states.popitem(last=False)
                self._state_locks.pop(evicted_track, None)
                self._evictions += 1
            state_lock = self._state_locks.setdefault(track, threading.Lock())
        with state_lock:
            models, stats = state.solve(ground, limit=limit)
        with self._lock:
            if stats.outcome == "incremental":
                self._incremental_solves += 1
            elif stats.outcome == "fallback":
                self._fallback_solves += 1
            else:
                self._full_solves += 1
            self._encoding_repairs += stats.encoding_repairs
            self._clauses_retained += stats.clauses_retained
            self._clauses_dropped += stats.clauses_dropped
            self._strata_reused += stats.strata_reused
            self._strata_recomputed += stats.strata_recomputed
        return models, stats

    def label_track(self, track: int, label: str) -> None:
        """Name a solver track (observability only; solving ignores it)."""
        with self._lock:
            self._track_labels[track] = label

    def track_labels(self) -> Dict[int, str]:
        """The labels attached via :meth:`label_track` (a copy)."""
        with self._lock:
            return dict(self._track_labels)

    def statistics(self) -> Dict[str, float]:
        with self._lock:
            return {
                "incremental_solves": float(self._incremental_solves),
                "full_solves": float(self._full_solves),
                "fallback_solves": float(self._fallback_solves),
                "encoding_repairs": float(self._encoding_repairs),
                "clauses_retained": float(self._clauses_retained),
                "clauses_dropped": float(self._clauses_dropped),
                "strata_reused": float(self._strata_reused),
                "strata_recomputed": float(self._strata_recomputed),
                "solver_states": float(len(self._states)),
                "evictions": float(self._evictions),
                "labeled_tracks": float(len(self._track_labels)),
            }

    def clear(self) -> None:
        with self._lock:
            self._states.clear()
            self._state_locks.clear()

    def __reduce__(self):
        # Solver state is per-process by design: worker processes receive an
        # empty cache and warm their own track states (mirrors GroundingCache).
        return (_rebuild_solver_cache, (self.max_states,))
