"""Clark completion of a ground normal program.

The completion turns a ground program into a propositional formula whose
models coincide with the stable models *for tight programs* (programs
without cycles through positive literals).  For non-tight programs the
solver additionally applies unfounded-set (loop formula) checks -- see
:mod:`repro.asp.solving.unfounded`.

Encoding
--------
* every atom gets a propositional variable,
* every rule body gets an auxiliary variable ``b`` with
  ``b <-> conjunction of body literals``,
* every atom ``a`` with defining bodies ``b1..bk`` gets
  ``a <-> b1 | ... | bk`` (atoms with no defining rule are forced false),
* facts are forced true,
* constraints contribute the clause "some body literal is false".

Disjunctive rules are encoded by their classical clause
``body -> head1 | ... | headn`` (head support and minimality are then the
solver's responsibility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.asp.grounding.grounder import GroundProgram
from repro.asp.solving.sat import DPLLSolver
from repro.asp.syntax.atoms import Atom

__all__ = ["CompletionEncoding", "build_completion"]


@dataclass
class CompletionEncoding:
    """Mapping between ground atoms and propositional variables plus clauses."""

    solver: DPLLSolver
    atom_to_variable: Dict[Atom, int]
    variable_to_atom: Dict[int, Atom]

    def variable(self, atom: Atom) -> int:
        return self.atom_to_variable[atom]

    def atoms_of_model(self, model: Dict[int, bool]) -> Set[Atom]:
        """Extract the set of true atoms from a SAT assignment."""
        return {
            atom
            for atom, variable in self.atom_to_variable.items()
            if model.get(variable, False)
        }

    def block_model(self, true_atoms: Set[Atom]) -> None:
        """Add a blocking clause excluding exactly this atom assignment."""
        clause = []
        for atom, variable in self.atom_to_variable.items():
            clause.append(-variable if atom in true_atoms else variable)
        self.solver.add_clause(clause)


def build_completion(ground: GroundProgram) -> CompletionEncoding:
    """Build the Clark completion encoding of ``ground``."""
    solver = DPLLSolver()
    atom_to_variable: Dict[Atom, int] = {}
    variable_to_atom: Dict[int, Atom] = {}

    def variable_of(atom: Atom) -> int:
        existing = atom_to_variable.get(atom)
        if existing is not None:
            return existing
        fresh = solver.new_variable()
        atom_to_variable[atom] = fresh
        variable_to_atom[fresh] = atom
        return fresh

    # Register every atom that can occur anywhere.
    for atom in ground.possible_atoms:
        variable_of(atom)
    for rule in ground.rules:
        for atom in rule.atoms():
            variable_of(atom)
    for atom in ground.facts:
        variable_of(atom)

    # Facts are unconditionally true.
    for atom in ground.facts:
        solver.add_clause([variable_of(atom)])

    # Group defining rules per (non-disjunctive) head atom.
    bodies_by_head: Dict[Atom, List[int]] = {atom: [] for atom in atom_to_variable}
    for atom in ground.facts:
        # A fact supports itself; give it a trivially true body variable.
        body_variable = solver.new_variable()
        solver.add_clause([body_variable])
        bodies_by_head[atom].append(body_variable)

    for rule in ground.rules:
        if rule.is_constraint:
            clause = [-variable_of(atom) for atom in rule.positive_body]
            clause += [variable_of(atom) for atom in rule.negative_body]
            solver.add_clause(clause)
            continue

        body_literals = [variable_of(atom) for atom in rule.positive_body]
        body_literals += [-variable_of(atom) for atom in rule.negative_body]

        if not body_literals:
            body_variable: Optional[int] = None
        else:
            body_variable = solver.new_variable()
            # body_variable -> each literal
            for literal in body_literals:
                solver.add_clause([-body_variable, literal])
            # all literals -> body_variable
            solver.add_clause([body_variable] + [-literal for literal in body_literals])

        if rule.is_disjunctive:
            # Classical satisfaction only; stability handled by minimality check.
            head_clause = [variable_of(atom) for atom in rule.head]
            if body_variable is None:
                solver.add_clause(head_clause)
            else:
                solver.add_clause([-body_variable] + head_clause)
            continue

        head_atom = rule.head[0]
        if body_variable is None:
            solver.add_clause([variable_of(head_atom)])
            always_true = solver.new_variable()
            solver.add_clause([always_true])
            bodies_by_head[head_atom].append(always_true)
        else:
            solver.add_clause([-body_variable, variable_of(head_atom)])
            bodies_by_head[head_atom].append(body_variable)

    # Completion "only if" direction: an atom needs at least one true body.
    # Atoms heading disjunctive rules are exempt (their support is checked by
    # the minimality test instead).
    disjunctive_heads: Set[Atom] = set()
    for rule in ground.rules:
        if rule.is_disjunctive:
            disjunctive_heads.update(rule.head)

    for atom, body_variables in bodies_by_head.items():
        if atom in disjunctive_heads:
            continue
        clause = [-atom_to_variable[atom]] + body_variables
        solver.add_clause(clause)

    return CompletionEncoding(
        solver=solver,
        atom_to_variable=atom_to_variable,
        variable_to_atom=variable_to_atom,
    )
