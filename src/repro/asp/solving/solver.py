"""Stable-model computation for ground programs.

The solver layers three techniques, mirroring the architecture of modern ASP
systems (and of Clingo, which the paper uses):

1. **Well-founded fast path** -- for normal (non-disjunctive) programs the
   well-founded model is computed first.  When it is total (which is always
   the case for the stratified traffic programs of the paper), it *is* the
   unique stable-model candidate and only the integrity constraints remain
   to be checked.
2. **Completion + DPLL search with unfounded-set checking** -- for normal
   programs with cycles through negation, classical models of the Clark
   completion are enumerated and filtered by the unfounded-set (loop) check.
3. **Guess-and-check minimality** -- for disjunctive programs, classical
   models are checked for minimality of the reduct (the canonical
   Sigma^p_2-complete test), implemented with a secondary SAT query.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.asp.grounding.grounder import GroundProgram
from repro.asp.solving.completion import build_completion
from repro.asp.solving.sat import DPLLSolver, Satisfiability
from repro.asp.solving.unfounded import greatest_unfounded_set
from repro.asp.solving.wellfounded import well_founded_model
from repro.asp.syntax.atoms import Atom

__all__ = [
    "StableModelSolver",
    "constraints_satisfied",
    "seed_wellfounded_consequences",
    "stable_models",
]


def seed_wellfounded_consequences(encoding, wf_model) -> None:
    """Add the well-founded consequences to a completion encoding as units.

    Both polarities are guarded by encoding membership: an atom may be
    well-founded while absent from the completion's variable table (e.g.
    when seeding a persistent encoding that only covers the residual rules),
    and an unguarded lookup would raise ``KeyError`` instead of skipping it.
    """
    for atom in wf_model.true:
        if atom in encoding.atom_to_variable:
            encoding.solver.add_clause([encoding.variable(atom)])
    for atom in wf_model.false:
        if atom in encoding.atom_to_variable:
            encoding.solver.add_clause([-encoding.variable(atom)])


def constraints_satisfied(constraints, model: Set[Atom]) -> bool:
    """True when ``model`` violates none of the integrity constraints."""
    for rule in constraints:
        if all(atom in model for atom in rule.positive_body) and not any(
            atom in model for atom in rule.negative_body
        ):
            return False
    return True


class StableModelSolver:
    """Enumerates the stable models (answer sets) of a ground program."""

    def __init__(self, ground: GroundProgram):
        self.ground = ground
        self._constraints = [rule for rule in ground.rules if rule.is_constraint]
        self._has_disjunction = any(rule.is_disjunctive for rule in ground.rules)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def models(self, limit: Optional[int] = None) -> Iterator[Set[Atom]]:
        """Yield stable models as sets of true atoms."""
        if limit is not None and limit <= 0:
            return
        if self._has_disjunction:
            yield from self._disjunctive_models(limit)
            return
        yield from self._normal_models(limit)

    def first_model(self) -> Optional[Set[Atom]]:
        """Return one stable model, or ``None`` when the program is inconsistent."""
        for model in self.models(limit=1):
            return model
        return None

    # ------------------------------------------------------------------ #
    # Normal programs
    # ------------------------------------------------------------------ #
    def _normal_models(self, limit: Optional[int]) -> Iterator[Set[Atom]]:
        wf_model = well_founded_model(self.ground)
        if wf_model.is_total:
            candidate = set(wf_model.true) | set(self.ground.facts)
            if self._constraints_satisfied(candidate):
                yield candidate
            return
        # Residual search: completion models filtered by the unfounded check.
        encoding = build_completion(self.ground)
        produced = 0
        seed_wellfounded_consequences(encoding, wf_model)
        while limit is None or produced < limit:
            status, assignment = encoding.solver.solve()
            if status is Satisfiability.UNSATISFIABLE or assignment is None:
                return
            candidate = encoding.atoms_of_model(assignment)
            encoding.block_model(candidate)
            if not self._constraints_satisfied(candidate):
                continue
            if greatest_unfounded_set(self.ground, candidate):
                continue
            produced += 1
            yield candidate

    # ------------------------------------------------------------------ #
    # Disjunctive programs
    # ------------------------------------------------------------------ #
    def _disjunctive_models(self, limit: Optional[int]) -> Iterator[Set[Atom]]:
        encoding = build_completion(self.ground)
        produced = 0
        while limit is None or produced < limit:
            status, assignment = encoding.solver.solve()
            if status is Satisfiability.UNSATISFIABLE or assignment is None:
                return
            candidate = encoding.atoms_of_model(assignment)
            encoding.block_model(candidate)
            if not self._constraints_satisfied(candidate):
                continue
            if not self._is_minimal_model_of_reduct(candidate):
                continue
            if greatest_unfounded_set(self.ground, candidate):
                continue
            produced += 1
            yield candidate

    def _is_minimal_model_of_reduct(self, candidate: Set[Atom]) -> bool:
        """Check that no proper subset of ``candidate`` satisfies the reduct."""
        atoms = sorted(candidate, key=str)
        if not atoms:
            return True
        index_of: Dict[Atom, int] = {atom: index + 1 for index, atom in enumerate(atoms)}
        checker = DPLLSolver(variable_count=len(atoms))

        # Facts must stay true.
        for atom in self.ground.facts:
            if atom in index_of:
                checker.add_clause([index_of[atom]])

        for rule in self.ground.rules:
            if rule.is_constraint:
                continue
            if any(atom in candidate for atom in rule.negative_body):
                continue  # rule removed by the reduct
            if any(atom not in candidate for atom in rule.positive_body):
                continue  # body can never hold within subsets of the candidate
            clause = [-index_of[atom] for atom in rule.positive_body]
            clause += [index_of[atom] for atom in rule.head if atom in candidate]
            checker.add_clause(clause)

        # Require a *proper* subset: at least one candidate atom is false.
        checker.add_clause([-index_of[atom] for atom in atoms])

        status, _ = checker.solve()
        return status is Satisfiability.UNSATISFIABLE

    # ------------------------------------------------------------------ #
    # Constraints
    # ------------------------------------------------------------------ #
    def _constraints_satisfied(self, model: Set[Atom]) -> bool:
        return constraints_satisfied(self._constraints, model)


def stable_models(ground: GroundProgram, limit: Optional[int] = None) -> List[Set[Atom]]:
    """Compute (up to ``limit``) stable models of a ground program."""
    return list(StableModelSolver(ground).models(limit=limit))
