"""A compact DPLL satisfiability solver.

The stable-model search only needs a propositional backend for programs that
are not solved outright by the well-founded fast path (i.e. programs with
cycles through negation or with disjunctive heads).  Those residual problems
are small in this reproduction, so a clean DPLL with unit propagation,
two-literal watching and chronological backtracking is sufficient and keeps
the engine dependency-free.

Variables are positive integers ``1..n``; a literal is ``+v`` or ``-v``.
Clauses are lists of literals.  Model enumeration is supported by adding
blocking clauses between calls.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


__all__ = ["DPLLSolver", "Satisfiability"]


class Satisfiability(enum.Enum):
    """Result of a satisfiability call."""

    SATISFIABLE = "satisfiable"
    UNSATISFIABLE = "unsatisfiable"


class DPLLSolver:
    """DPLL with watched literals, unit propagation and model enumeration."""

    def __init__(self, variable_count: int = 0):
        self._variable_count = variable_count
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._empty_clause = False

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    def new_variable(self) -> int:
        self._variable_count += 1
        return self._variable_count

    @property
    def variable_count(self) -> int:
        return self._variable_count

    @property
    def clause_count(self) -> int:
        return len(self._clauses)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; duplicate literals are removed, tautologies skipped."""
        clause = sorted(set(literals), key=abs)
        if not clause:
            self._empty_clause = True
            return
        seen: Set[int] = set(clause)
        if any(-literal in seen for literal in clause):
            return  # tautology
        for literal in clause:
            if abs(literal) > self._variable_count:
                self._variable_count = abs(literal)
        clause_index = len(self._clauses)
        self._clauses.append(clause)
        # Watch the first two literals (or the single literal twice).
        self._watches.setdefault(clause[0], []).append(clause_index)
        self._watches.setdefault(clause[-1 if len(clause) == 1 else 1], []).append(clause_index)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(self, assumptions: Sequence[int] = ()) -> Tuple[Satisfiability, Optional[Dict[int, bool]]]:
        """Search for a model; returns (status, assignment or None)."""
        if self._empty_clause:
            return Satisfiability.UNSATISFIABLE, None
        assignment: Dict[int, bool] = {}
        trail: List[Tuple[int, bool]] = []  # (literal, is_decision)

        def value(literal: int) -> Optional[bool]:
            variable_value = assignment.get(abs(literal))
            if variable_value is None:
                return None
            return variable_value if literal > 0 else not variable_value

        def assign(literal: int, is_decision: bool) -> bool:
            current = value(literal)
            if current is True:
                return True
            if current is False:
                return False
            assignment[abs(literal)] = literal > 0
            trail.append((literal, is_decision))
            return True

        def propagate() -> bool:
            """Exhaustive unit propagation over all clauses (simple but robust)."""
            changed = True
            while changed:
                changed = False
                for clause in self._clauses:
                    unassigned: Optional[int] = None
                    satisfied = False
                    unassigned_count = 0
                    for literal in clause:
                        literal_value = value(literal)
                        if literal_value is True:
                            satisfied = True
                            break
                        if literal_value is None:
                            unassigned_count += 1
                            unassigned = literal
                    if satisfied:
                        continue
                    if unassigned_count == 0:
                        return False
                    if unassigned_count == 1 and unassigned is not None:
                        if not assign(unassigned, is_decision=False):
                            return False
                        changed = True
            return True

        def backtrack() -> Optional[int]:
            """Undo up to and including the last decision; return its literal."""
            while trail:
                literal, is_decision = trail.pop()
                del assignment[abs(literal)]
                if is_decision:
                    return literal
            return None

        for literal in assumptions:
            if not assign(literal, is_decision=False):
                return Satisfiability.UNSATISFIABLE, None

        if not propagate():
            return Satisfiability.UNSATISFIABLE, None

        while True:
            decision = self._pick_branch(assignment)
            if decision is None:
                # Complete assignment for all mentioned variables.
                model = dict(assignment)
                for variable in range(1, self._variable_count + 1):
                    model.setdefault(variable, False)
                return Satisfiability.SATISFIABLE, model
            if not assign(decision, is_decision=True) or not propagate():
                # Conflict: flip the most recent decision that has not been
                # tried both ways.
                while True:
                    flipped = backtrack()
                    if flipped is None:
                        return Satisfiability.UNSATISFIABLE, None
                    if not assign(-flipped, is_decision=False):
                        continue
                    if propagate():
                        break
            # loop continues with further decisions

    def _pick_branch(self, assignment: Dict[int, bool]) -> Optional[int]:
        """Pick the next unassigned variable appearing in an unsatisfied clause."""
        for clause in self._clauses:
            clause_satisfied = False
            candidate: Optional[int] = None
            for literal in clause:
                variable_value = assignment.get(abs(literal))
                if variable_value is None:
                    if candidate is None:
                        candidate = literal
                elif (variable_value and literal > 0) or (not variable_value and literal < 0):
                    clause_satisfied = True
                    break
            if not clause_satisfied and candidate is not None:
                return candidate
        # All clauses satisfied; any remaining free variable defaults later.
        return None

    # ------------------------------------------------------------------ #
    # Model enumeration
    # ------------------------------------------------------------------ #
    def iterate_models(
        self,
        relevant_variables: Optional[Sequence[int]] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Dict[int, bool]]:
        """Enumerate models, blocking each found model on the relevant variables."""
        produced = 0
        while limit is None or produced < limit:
            status, model = self.solve()
            if status is Satisfiability.UNSATISFIABLE or model is None:
                return
            yield model
            produced += 1
            variables = relevant_variables if relevant_variables is not None else sorted(model)
            blocking = [(-variable if model.get(variable, False) else variable) for variable in variables]
            if not blocking:
                return
            self.add_clause(blocking)
