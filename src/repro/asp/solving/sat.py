"""A compact DPLL satisfiability solver.

The stable-model search only needs a propositional backend for programs that
are not solved outright by the well-founded fast path (i.e. programs with
cycles through negation or with disjunctive heads).  Those residual problems
are small in this reproduction, so a clean DPLL with watch-driven unit
propagation and chronological backtracking is sufficient and keeps the
engine dependency-free.

Variables are positive integers ``1..n``; a literal is ``+v`` or ``-v``.
Clauses are lists of literals.  The per-solve assignment is a flat
int-indexed array over the dense variable ids (slot ``v`` holds 1/-1/0),
so evaluating a literal is two array reads rather than a dict probe --
the ids are dense because the incremental encoding layer interns atoms
through a :class:`~repro.asp.syntax.symbols.SymbolTable` before they ever
reach the solver.  Unit propagation is driven by a two-literal watch
index: each clause watches two of its literals (one for a unit clause),
and an assignment only visits the clauses watching the falsified literal
instead of re-scanning the whole clause database.  The branching
heuristic (:meth:`_pick_branch`) still scans for an unsatisfied clause --
watching accelerates *propagation*, not decision picking.

Model enumeration is supported by adding blocking clauses between calls,
and :meth:`solve` takes ``assumptions``: literals fixed below every
decision, so the search never flips them and an unsatisfiable core of
assumptions reports UNSAT without touching the clause database.  Clauses
can be retracted again with :meth:`remove_clause` -- the incremental
solving layer uses this to drop window-scoped blocking clauses and
invalidated learned clauses between re-solves.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


__all__ = ["DPLLSolver", "Satisfiability"]


class Satisfiability(enum.Enum):
    """Result of a satisfiability call."""

    SATISFIABLE = "satisfiable"
    UNSATISFIABLE = "unsatisfiable"


class DPLLSolver:
    """DPLL with two-literal watches, unit propagation and model enumeration."""

    def __init__(self, variable_count: int = 0):
        self._variable_count = variable_count
        #: Clause database; ``None`` marks a removed (retracted) clause.
        self._clauses: List[Optional[List[int]]] = []
        #: literal -> indices of clauses currently watching that literal.
        #: Positions 0 and 1 of each clause hold its watched literals (a
        #: unit clause watches its single literal once, at position 0).
        self._watches: Dict[int, List[int]] = {}
        #: Indices of unit clauses: their literals seed every solve call.
        self._unit_clauses: List[int] = []
        self._alive_count = 0
        self._empty_clause = False

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    def new_variable(self) -> int:
        self._variable_count += 1
        return self._variable_count

    @property
    def variable_count(self) -> int:
        return self._variable_count

    @property
    def clause_count(self) -> int:
        """Number of live (non-removed) clauses."""
        return self._alive_count

    @property
    def removed_clause_count(self) -> int:
        """Number of tombstoned slots still occupying the clause database."""
        return len(self._clauses) - self._alive_count

    def clause_literals(self, clause_index: int) -> Optional[List[int]]:
        """Literals of a live clause (copy), or ``None`` when removed."""
        clause = self._clauses[clause_index]
        return None if clause is None else list(clause)

    def add_clause(self, literals: Iterable[int]) -> Optional[int]:
        """Add a clause; duplicate literals are removed, tautologies skipped.

        Returns the clause's index (the handle :meth:`remove_clause`
        accepts), or ``None`` when the clause was dropped as a tautology or
        recorded as the empty clause.
        """
        clause = sorted(set(literals), key=abs)
        if not clause:
            self._empty_clause = True
            return None
        seen: Set[int] = set(clause)
        if any(-literal in seen for literal in clause):
            return None  # tautology
        for literal in clause:
            if abs(literal) > self._variable_count:
                self._variable_count = abs(literal)
        clause_index = len(self._clauses)
        self._clauses.append(clause)
        self._alive_count += 1
        # Watch the first two literals; a unit clause registers its single
        # literal exactly once.
        self._watches.setdefault(clause[0], []).append(clause_index)
        if len(clause) == 1:
            self._unit_clauses.append(clause_index)
        else:
            self._watches.setdefault(clause[1], []).append(clause_index)
        return clause_index

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def remove_clause(self, clause_index: int) -> None:
        """Retract a clause previously returned by :meth:`add_clause`.

        The slot is tombstoned; watch lists drop the index lazily during
        propagation.  Must not be called while a :meth:`solve` is running
        (the solver is single-shot between calls, so this only matters for
        re-entrant use).
        """
        if self._clauses[clause_index] is not None:
            self._clauses[clause_index] = None
            self._alive_count -= 1

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(self, assumptions: Sequence[int] = ()) -> Tuple[Satisfiability, Optional[Dict[int, bool]]]:
        """Search for a model; returns (status, assignment or None).

        ``assumptions`` are assigned before any decision and are never
        flipped by backtracking: when the clauses are unsatisfiable under
        them, the call returns UNSAT even if the clause set alone is
        satisfiable.  The solver itself is unchanged by the call, so
        repeated solves under different assumptions reuse the same clause
        database -- the incremental re-solving workhorse.
        """
        if self._empty_clause:
            return Satisfiability.UNSATISFIABLE, None
        # Assumptions may mention fresh variables; grow the space first so
        # the assignment array below covers them.
        for literal in assumptions:
            if abs(literal) > self._variable_count:
                self._variable_count = abs(literal)
        # Int-indexed assignment array over interned variable ids: slot v
        # holds 1 (true), -1 (false) or 0 (unassigned).  Propagation is the
        # hash-heaviest loop of the solver; indexing a flat array beats a
        # dict probe per literal visit.
        values: List[int] = [0] * (self._variable_count + 1)
        trail: List[Tuple[int, bool]] = []  # (literal, is_decision)
        queue: List[int] = []  # literals assigned true, pending watch visits

        def literal_value(literal: int) -> int:
            """Truth of a literal under the current assignment: 1/-1/0."""
            return values[literal] if literal > 0 else -values[-literal]

        def assign(literal: int, is_decision: bool) -> bool:
            variable = literal if literal > 0 else -literal
            current = values[variable]
            if current != 0:
                return (current > 0) == (literal > 0)
            values[variable] = 1 if literal > 0 else -1
            trail.append((literal, is_decision))
            queue.append(literal)
            return True

        def propagate() -> bool:
            """Watch-driven unit propagation from the queued assignments."""
            while queue:
                falsified = -queue.pop()
                watchers = self._watches.get(falsified)
                if not watchers:
                    continue
                kept: List[int] = []
                conflict = False
                for clause_index in watchers:
                    clause = self._clauses[clause_index]
                    if clause is None:
                        continue  # retracted clause: drop the stale entry
                    if conflict:
                        kept.append(clause_index)
                        continue
                    if len(clause) == 1:
                        # A falsified unit clause is an immediate conflict.
                        kept.append(clause_index)
                        conflict = True
                        continue
                    # Normalize: the falsified watch sits at position 1.
                    if clause[0] == falsified:
                        clause[0], clause[1] = clause[1], clause[0]
                    other = clause[0]
                    other_value = literal_value(other)
                    if other_value > 0:
                        kept.append(clause_index)
                        continue
                    # Look for a replacement watch among the tail literals.
                    moved = False
                    for position in range(2, len(clause)):
                        if literal_value(clause[position]) >= 0:
                            clause[1], clause[position] = clause[position], clause[1]
                            self._watches.setdefault(clause[1], []).append(clause_index)
                            moved = True
                            break
                    if moved:
                        continue
                    # No replacement: the clause is unit on `other` (or
                    # conflicting when `other` is already false).
                    kept.append(clause_index)
                    if other_value < 0:
                        conflict = True
                        continue
                    assign(other, is_decision=False)
                if len(kept) != len(watchers):
                    if kept:
                        self._watches[falsified] = kept
                    else:
                        del self._watches[falsified]
                else:
                    self._watches[falsified] = kept
                if conflict:
                    queue.clear()
                    return False
            return True

        def backtrack() -> Optional[int]:
            """Undo up to and including the last decision; return its literal."""
            queue.clear()
            while trail:
                literal, is_decision = trail.pop()
                values[abs(literal)] = 0
                if is_decision:
                    return literal
            return None

        # Unit clauses seed the assignment (watches only fire on changes).
        for clause_index in self._unit_clauses:
            clause = self._clauses[clause_index]
            if clause is None:
                continue
            if not assign(clause[0], is_decision=False):
                return Satisfiability.UNSATISFIABLE, None

        for literal in assumptions:
            if not assign(literal, is_decision=False):
                return Satisfiability.UNSATISFIABLE, None

        if not propagate():
            return Satisfiability.UNSATISFIABLE, None

        while True:
            decision = self._pick_branch(values)
            if decision is None:
                # Complete assignment for all mentioned variables
                # (unassigned variables default to false).
                model = {
                    variable: values[variable] > 0
                    for variable in range(1, self._variable_count + 1)
                }
                return Satisfiability.SATISFIABLE, model
            if not assign(decision, is_decision=True) or not propagate():
                # Conflict: flip the most recent decision that has not been
                # tried both ways.  Assumptions sit below every decision, so
                # they are never flipped -- exhausting the decisions means
                # UNSAT under the given assumptions.
                while True:
                    flipped = backtrack()
                    if flipped is None:
                        return Satisfiability.UNSATISFIABLE, None
                    if not assign(-flipped, is_decision=False):
                        continue
                    if propagate():
                        break
            # loop continues with further decisions

    def _pick_branch(self, values: List[int]) -> Optional[int]:
        """Pick the next unassigned variable appearing in an unsatisfied clause."""
        for clause in self._clauses:
            if clause is None:
                continue
            clause_satisfied = False
            candidate: Optional[int] = None
            for literal in clause:
                variable_value = values[literal if literal > 0 else -literal]
                if variable_value == 0:
                    if candidate is None:
                        candidate = literal
                elif (variable_value > 0) == (literal > 0):
                    clause_satisfied = True
                    break
            if not clause_satisfied and candidate is not None:
                return candidate
        # All clauses satisfied; any remaining free variable defaults later.
        return None

    # ------------------------------------------------------------------ #
    # Model enumeration
    # ------------------------------------------------------------------ #
    def iterate_models(
        self,
        relevant_variables: Optional[Sequence[int]] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Dict[int, bool]]:
        """Enumerate models, blocking each found model on the relevant variables."""
        produced = 0
        while limit is None or produced < limit:
            status, model = self.solve()
            if status is Satisfiability.UNSATISFIABLE or model is None:
                return
            yield model
            produced += 1
            variables = relevant_variables if relevant_variables is not None else sorted(model)
            blocking = [(-variable if model.get(variable, False) else variable) for variable in variables]
            if not blocking:
                return
            self.add_clause(blocking)
