"""Unfounded-set detection (external support / loop checking).

The Clark completion admits classical models that are not stable when a
program has cycles through positive literals (e.g. ``a :- b. b :- a.``).
The standard remedy is to check a candidate model for *unfounded* atoms:
true atoms that cannot be derived from outside their own positive loop.  A
model with a non-empty unfounded set is not stable; blocking it (or adding
its loop formula) and continuing the search yields exactly the stable
models.

``greatest_unfounded_set`` computes, for a candidate set of true atoms
``model``, the largest set of true atoms lacking a non-circular derivation.
For normal programs this characterises stability:

    model is a stable model  <=>  model satisfies the program
                                  and its greatest unfounded set is empty.
"""

from __future__ import annotations

from typing import List, Set

from repro.asp.grounding.grounder import GroundProgram, GroundRule
from repro.asp.syntax.atoms import Atom

__all__ = ["greatest_unfounded_set", "is_founded"]


def greatest_unfounded_set(ground: GroundProgram, model: Set[Atom]) -> Set[Atom]:
    """Return the true atoms of ``model`` that lack external support.

    An atom is *founded* when it is a fact, or when some rule with the atom
    in its head has: all positive body atoms founded (and true in the
    model), all negative body atoms false in the model, and -- for
    disjunctive rules -- no other head atom true in the model (otherwise the
    rule supports that other atom instead).
    """
    founded: Set[Atom] = {atom for atom in ground.facts if atom in model}
    candidate_rules: List[GroundRule] = [
        rule
        for rule in ground.rules
        if not rule.is_constraint and any(atom in model for atom in rule.head)
    ]

    changed = True
    while changed:
        changed = False
        for rule in candidate_rules:
            if any(atom in model for atom in rule.negative_body):
                continue
            if not all(atom in model and atom in founded for atom in rule.positive_body):
                continue
            true_heads = [atom for atom in rule.head if atom in model]
            if len(true_heads) != 1:
                # No true head: the rule supports nothing.  Several true
                # heads: a disjunctive rule does not provide unambiguous
                # support to any single one of them.
                continue
            head = true_heads[0]
            if head not in founded:
                founded.add(head)
                changed = True
    return {atom for atom in model if atom not in founded}


def is_founded(ground: GroundProgram, model: Set[Atom]) -> bool:
    """True when ``model`` has no unfounded atoms."""
    return not greatest_unfounded_set(ground, model)
