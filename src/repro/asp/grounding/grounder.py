"""Semi-naive grounder (instantiation phase).

The grounder turns a safe program plus input facts into a ground program
whose stable models coincide with those of the original program.  It follows
the standard intelligent-grounding recipe used by DLV and gringo:

1. build the predicate dependency graph and evaluate its strongly connected
   components bottom-up,
2. within a component, iterate semi-naively (re-evaluating recursive rules
   only against newly derived atoms),
3. instantiate rule bodies by indexed joins over the *possible atoms*
   derived so far, evaluating builtin comparisons as soon as their variables
   are bound,
4. simplify ground rules: positive body atoms that are certainly true are
   removed, negative literals over atoms that can never be derived are
   removed, and rules whose body is certainly false are dropped.

Atoms derived by non-disjunctive rules whose body contains no negation and
only certain atoms are tracked as *certain facts*; for stratified programs
without disjunction (such as the paper's traffic programs ``P`` and ``P'``)
this is not the complete answer set because rules with default negation are
deliberately left to the solving phase.

For streaming workloads the same window content recurs (overlapping sliding
windows, periodic sensor readings): :class:`GroundingCache` memoizes the
SCC-stratified instantiation keyed on the program's *fact signature* so a
recurring window skips the whole instantiation.

Delta-grounding
---------------
Exact recurrence is rare under *overlapping* sliding windows: window
``W_{i+1}`` is ``W_i`` minus the expired facts plus the arrived ones, so the
signature changes on every slide even though most of the instantiation is
unchanged.  :class:`DeltaGrounding` keeps a repairable instantiation state
(unsimplified ground instances plus reverse body/head indexes) and moves it
from one fact set to the next with a delete-and-rederive (DRed) repair:
overdelete everything transitively supported by a retracted fact, rescue
atoms that keep an untouched alternative derivation, then run the
semi-naive join seeded only with the rescued and newly asserted atoms.
:meth:`GroundingCache.ground_incremental` wires the two layers together per
*track* (one track per consecutive window stream, e.g. a partition index):
exact signature recurrence is served from the LRU, overlapping windows are
delta-repaired, and anything else falls back to a full (state-rebuilding)
instantiation.  Repairs re-simplify against a freshly computed definite
closure, so the emitted :class:`GroundProgram` always has the same answer
sets as grounding the current window from scratch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.asp.errors import GroundingError
from repro.asp.grounding.dependency import (
    PredicateDependencyGraph,
    strongly_connected_components,
)
from repro.asp.grounding.safety import check_safety
from repro.asp.grounding.substitution import Substitution, match_atom
from repro.asp.syntax.atoms import Atom, Comparison, Literal
from repro.asp.syntax.program import Program
from repro.asp.syntax.rules import Rule
from repro.asp.syntax.symbols import SymbolTable

__all__ = [
    "DeltaGrounding",
    "GroundProgram",
    "GroundRule",
    "Grounder",
    "GroundingCache",
    "RepairStats",
    "ground_program",
]


def _rebuild_cache(max_entries: int, max_delta_states: int, max_repair_fraction: float) -> "GroundingCache":
    """Unpickle helper: rebuild an (empty) cache from its configuration."""
    return GroundingCache(
        max_entries,
        max_delta_states=max_delta_states,
        max_repair_fraction=max_repair_fraction,
    )


# --------------------------------------------------------------------------- #
# Ground program representation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class GroundRule:
    """A variable-free rule with comparisons already evaluated away."""

    head: Tuple[Atom, ...]
    positive_body: Tuple[Atom, ...]
    negative_body: Tuple[Atom, ...]

    @property
    def is_fact(self) -> bool:
        return len(self.head) == 1 and not self.positive_body and not self.negative_body

    @property
    def is_constraint(self) -> bool:
        return not self.head

    @property
    def is_disjunctive(self) -> bool:
        return len(self.head) > 1

    def atoms(self) -> Iterable[Atom]:
        yield from self.head
        yield from self.positive_body
        yield from self.negative_body

    def __str__(self) -> str:
        head_text = " | ".join(str(atom) for atom in self.head)
        body_parts = [str(atom) for atom in self.positive_body]
        body_parts += [f"not {atom}" for atom in self.negative_body]
        if not body_parts:
            return f"{head_text}."
        body_text = ", ".join(body_parts)
        if head_text:
            return f"{head_text} :- {body_text}."
        return f":- {body_text}."


@dataclass
class GroundProgram:
    """Result of grounding: certain facts plus residual ground rules."""

    facts: Set[Atom] = field(default_factory=set)
    rules: List[GroundRule] = field(default_factory=list)
    possible_atoms: Set[Atom] = field(default_factory=set)

    @property
    def atoms(self) -> Set[Atom]:
        """All atoms that may appear in some answer set."""
        return set(self.possible_atoms)

    def statistics(self) -> Dict[str, int]:
        return {
            "facts": len(self.facts),
            "rules": len(self.rules),
            "possible_atoms": len(self.possible_atoms),
        }

    def copy(self) -> "GroundProgram":
        """Equal ground program with fresh containers.

        The contained :class:`GroundRule` and :class:`Atom` objects are
        immutable and shared; only the top-level sets and list are copied, so
        mutating the copy never affects the original (used by
        :class:`GroundingCache` to keep cached entries isolated).
        """
        return GroundProgram(
            facts=set(self.facts),
            rules=list(self.rules),
            possible_atoms=set(self.possible_atoms),
        )

    def __str__(self) -> str:
        lines = [f"{atom}." for atom in sorted(self.facts, key=str)]
        lines += [str(rule) for rule in self.rules]
        return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# Indexed atom store
# --------------------------------------------------------------------------- #
class _AtomStore:
    """Per-predicate store of ground atoms with lazily built join indexes.

    Membership is tracked as a set of interned symbol ids against a
    :class:`~repro.asp.syntax.symbols.SymbolTable` -- an atom is hashed
    once when first interned, and every subsequent membership probe keys
    on a machine int.  The table may be shared (``DeltaGrounding`` passes
    one so ids survive store rebuilds across repairs); by default the
    store owns a private table.
    """

    def __init__(self, symbols: Optional[SymbolTable] = None) -> None:
        self.symbols = symbols if symbols is not None else SymbolTable()
        self._by_signature: Dict[Tuple[str, int], List[Atom]] = {}
        self._member_ids: Set[int] = set()
        # (signature, bound positions) -> (indexed_upto, {key values -> [atoms]})
        self._indexes: Dict[Tuple[Tuple[str, int], Tuple[int, ...]], Tuple[int, Dict[Tuple, List[Atom]]]] = {}

    def __contains__(self, atom: Atom) -> bool:
        atom_id = self.symbols.id_of(atom)
        return atom_id is not None and atom_id in self._member_ids

    def __len__(self) -> int:
        return len(self._member_ids)

    def atoms(self) -> Set[Atom]:
        resolve = self.symbols.resolve
        return {resolve(atom_id) for atom_id in self._member_ids}

    def member_ids(self) -> Set[int]:
        """Snapshot of the member atoms as interned ids."""
        return set(self._member_ids)

    def add(self, atom: Atom) -> bool:
        """Add a ground atom; return True when it was not present before."""
        atom_id = self.symbols.intern(atom)
        if atom_id in self._member_ids:
            return False
        self._member_ids.add(atom_id)
        self._by_signature.setdefault(atom.signature, []).append(atom)
        return True

    def by_signature(self, signature: Tuple[str, int]) -> List[Atom]:
        return self._by_signature.get(signature, [])

    def candidates(self, pattern: Atom, binding: Substitution) -> List[Atom]:
        """Atoms that could match ``pattern`` under ``binding``.

        Uses a hash index on the argument positions that are already ground
        after applying the binding; falls back to a full predicate scan when
        no position is bound.
        """
        instantiated = pattern.substitute(binding) if binding else pattern
        bound_positions: List[int] = []
        bound_values: List[object] = []
        for position, argument in enumerate(instantiated.arguments):
            if argument.is_ground():
                bound_positions.append(position)
                bound_values.append(argument)
        signature = pattern.signature
        population = self._by_signature.get(signature, [])
        if not bound_positions:
            return population
        # Fully-ground pattern: a membership probe beats building an index.
        if len(bound_positions) == len(instantiated.arguments):
            return [instantiated] if instantiated in self else []
        key_positions = tuple(bound_positions)
        index_key = (signature, key_positions)
        indexed_upto, table = self._indexes.get(index_key, (0, {}))
        if indexed_upto < len(population):
            for atom in population[indexed_upto:]:
                key = tuple(atom.arguments[position] for position in key_positions)
                table.setdefault(key, []).append(atom)
            self._indexes[index_key] = (len(population), table)
        return table.get(tuple(bound_values), [])


# --------------------------------------------------------------------------- #
# Grounding cache
# --------------------------------------------------------------------------- #
#: Cache key: (rendered proper rules, frozenset of ground fact atoms).
CacheKey = Tuple[Tuple[str, ...], FrozenSet[Atom]]


class GroundingCache:
    """LRU memo of grounding results keyed on the program's *fact signature*.

    In the streaming setting the rule part of the program is fixed while the
    facts change window by window -- and recurring or overlapping window
    content produces the *same* fact set again and again.  The key therefore
    separates the two: the rendered proper rules identify the program, and a
    frozenset of the ground fact atoms identifies the window content
    (order-insensitive, duplicate-insensitive -- exactly the granularity at
    which grounding results coincide).

    Isolation guarantees:

    * the key snapshots the facts at call time, so mutating the caller's
      fact list (or the program) afterwards can never corrupt an entry;
    * :meth:`store` keeps a :meth:`GroundProgram.copy` and :meth:`lookup`
      returns a fresh copy, so cached entries are object-equal to -- but
      never aliased with -- what callers see, and caller-side mutation of a
      returned ground program cannot leak back into the cache.

    The cache is thread-safe (one lock around the LRU book-keeping) so a
    single instance can back ``ExecutionMode.THREADS``; in
    ``ExecutionMode.PROCESSES`` every worker process holds its own instance.
    """

    def __init__(
        self,
        max_entries: int = 128,
        *,
        max_delta_states: int = 16,
        max_repair_fraction: float = 1.0,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_delta_states < 1:
            raise ValueError("max_delta_states must be at least 1")
        if not 0.0 < max_repair_fraction <= 1.0:
            raise ValueError("max_repair_fraction must be in (0, 1]")
        self.max_entries = max_entries
        self.max_delta_states = max_delta_states
        self.max_repair_fraction = max_repair_fraction
        self._entries: "OrderedDict[CacheKey, GroundProgram]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        # Delta-grounding layer: (rules key, track) -> repairable state.  A
        # *track* identifies one stream of consecutive windows (partition
        # index, worker slot); consecutive windows of the same track repair
        # the same state instead of regrounding.
        self._delta_states: "OrderedDict[Tuple[Tuple[str, ...], int], DeltaGrounding]" = OrderedDict()
        self._delta_locks: Dict[Tuple[Tuple[str, ...], int], threading.Lock] = {}
        self.delta_repairs = 0
        self.delta_rebuilds = 0
        self.repaired_atoms = 0
        self.repaired_rules = 0
        # Human-readable track names (track -> label), attached by owners
        # that multiplex many logical streams over one cache -- the query
        # server labels each tenant lane's track range so the per-track
        # delta states stay attributable in the ops metrics export.
        self._track_labels: Dict[int, str] = {}
        # Rendered-rules memo: tuple of rule ids -> (strong refs, rendering).
        # In the streaming setting the rule part is fixed while the facts
        # change per window, and Program.copy shares the Rule objects -- so
        # the O(rules) string rendering of key_for needs to happen only once
        # per distinct rule set, not once per partition per window.  The
        # strong references keep the rules alive, so an id can never be
        # recycled while its memo entry exists.
        self._rules_memo: Dict[Tuple[int, ...], Tuple[Tuple[Rule, ...], Tuple[str, ...]]] = {}

    # ------------------------------------------------------------------ #
    @staticmethod
    def _split(program: Program) -> Tuple[List[Rule], List[Atom]]:
        """Partition a program into (proper rules, fact atoms) -- the two
        halves of the cache key."""
        proper_rules: List[Rule] = []
        facts: List[Atom] = []
        for rule in program.rules:
            if rule.is_fact:
                facts.append(rule.head[0])
            else:
                proper_rules.append(rule)
        return proper_rules, facts

    @staticmethod
    def key_for(program: Program) -> CacheKey:
        """Cache key of ``program``: rendered rules plus fact-atom set."""
        proper_rules, facts = GroundingCache._split(program)
        return (tuple(str(rule) for rule in proper_rules), frozenset(facts))

    def _memoized_key(self, program: Program) -> CacheKey:
        """Like :meth:`key_for`, with the rules part rendered at most once."""
        proper_rules, facts = self._split(program)
        identity = tuple(map(id, proper_rules))
        with self._lock:
            memo = self._rules_memo.get(identity)
        if memo is None:
            # Render outside the lock (worst case: two threads render the
            # same rules once each), then publish under it.
            memo = (tuple(proper_rules), tuple(str(rule) for rule in proper_rules))
            with self._lock:
                if len(self._rules_memo) >= 8:
                    self._rules_memo.clear()
                self._rules_memo[identity] = memo
        return (memo[1], frozenset(facts))

    def lookup(self, key: CacheKey) -> Optional[GroundProgram]:
        """Return a fresh copy of the entry for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        # Stored entries are never mutated in place, so the (potentially
        # large) copy can happen outside the lock without serializing
        # concurrent THREADS-mode readers through it.
        return entry.copy()

    def store(self, key: CacheKey, ground: GroundProgram) -> None:
        """Record a grounding result (a snapshot copy) under ``key``."""
        snapshot = ground.copy()
        with self._lock:
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    # ------------------------------------------------------------------ #
    def ground(self, program: Program) -> Tuple[GroundProgram, bool]:
        """Ground ``program`` through the cache.

        Returns ``(ground_program, from_cache)``.
        """
        key = self._memoized_key(program)
        cached = self.lookup(key)
        if cached is not None:
            return cached, True
        ground = Grounder(program).ground()
        self.store(key, ground)
        return ground, False

    def ground_incremental(
        self, program: Program, track: int = 0
    ) -> Tuple[GroundProgram, str, Optional["RepairStats"]]:
        """Ground ``program`` incrementally against the ``track``'s last state.

        Returns ``(ground_program, outcome, repair_stats)`` with outcome one
        of ``"hit"`` (exact fact-signature recurrence, served from the LRU),
        ``"repair"`` (the track's cached instantiation was delta-repaired to
        the new fact set), or ``"full"`` (no state, or the fact churn
        exceeded ``max_repair_fraction`` of the window, so the state was
        rebuilt from scratch).  ``repair_stats`` is only set for ``"repair"``.

        The retracted/asserted delta is computed here by set difference
        against the cached state's fact set, so callers only signal *that*
        window-to-window continuity is expected (and on which track) -- a
        stale or divergent state degrades to a rebuild, never to a wrong
        answer.
        """
        key = self._memoized_key(program)
        cached = self.lookup(key)
        if cached is not None:
            return cached, "hit", None
        rules_key = key[0]
        facts = set(key[1])
        state_key = (rules_key, track)
        with self._lock:
            state = self._delta_states.get(state_key)
            if state is not None:
                self._delta_states.move_to_end(state_key)
            state_lock = self._delta_locks.setdefault(state_key, threading.Lock())
        with state_lock:
            if state is not None:
                churn = len(state.facts - facts) + len(facts - state.facts)
                budget = self.max_repair_fraction * max(len(facts), len(state.facts), 1)
                # churn < |facts| + |state facts| iff the two sets overlap:
                # with nothing shared a "repair" would redo all the work of a
                # reground while paying the deletion cascade on top.
                if churn <= budget and churn < len(facts) + len(state.facts):
                    stats = state.repair(facts)
                    ground = state.to_ground_program()
                    self.store(key, ground)
                    with self._lock:
                        self.delta_repairs += 1
                        self.repaired_atoms += stats.repair_size
                        self.repaired_rules += stats.rules_deleted + stats.rules_added
                    return ground, "repair", stats
                # Over-budget or zero-overlap churn: ground plainly and leave
                # the state as it is.  Repairing (or rebuilding repairable
                # state) would cost more than the reground it replaces, and
                # because repairs diff against the *state's* fact set, a
                # later window that overlaps the stale state again resumes
                # repairing by itself.
                ground = Grounder(program).ground()
                self.store(key, ground)
                with self._lock:
                    self.delta_rebuilds += 1
                return ground, "full", None
            state = DeltaGrounding(program)
            ground = state.to_ground_program()
        self.store(key, ground)
        with self._lock:
            self.delta_rebuilds += 1
            self._delta_states[state_key] = state
            self._delta_states.move_to_end(state_key)
            while len(self._delta_states) > self.max_delta_states:
                evicted_key, _ = self._delta_states.popitem(last=False)
                self._delta_locks.pop(evicted_key, None)
        return ground, "full", None

    # ------------------------------------------------------------------ #
    def __reduce__(self):
        # Pickling ships the configuration, not the contents: the lock is
        # unpicklable and cached entries are only useful to the process that
        # produced them, so an unpickled cache (e.g. in a fresh worker
        # process) starts empty at the same capacity.
        return (
            _rebuild_cache,
            (self.max_entries, self.max_delta_states, self.max_repair_fraction),
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._delta_states.clear()
            self._delta_locks.clear()
            self.hits = 0
            self.misses = 0
            self.delta_repairs = 0
            self.delta_rebuilds = 0
            self.repaired_atoms = 0
            self.repaired_rules = 0

    def label_track(self, track: int, label: str) -> None:
        """Name a delta track (observability only; evaluation ignores it)."""
        with self._lock:
            self._track_labels[track] = label

    def track_labels(self) -> Dict[int, str]:
        """The labels attached via :meth:`label_track` (a copy)."""
        with self._lock:
            return dict(self._track_labels)

    def statistics(self) -> Dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "delta_states": float(len(self._delta_states)),
            "delta_repairs": float(self.delta_repairs),
            "delta_rebuilds": float(self.delta_rebuilds),
            "repaired_atoms": float(self.repaired_atoms),
            "repaired_rules": float(self.repaired_rules),
            "labeled_tracks": float(len(self._track_labels)),
        }


# --------------------------------------------------------------------------- #
# Grounder
# --------------------------------------------------------------------------- #
class Grounder:
    """Instantiates a program bottom-up along its predicate dependency SCCs.

    ``certain_negative_drop`` controls an instantiation-time optimization:
    a ground instance whose negative body mentions a certainly-true atom can
    never fire, so by default it is dropped on the spot and its head atoms
    are not registered as possible.  :class:`DeltaGrounding` disables the
    optimization because the dropped instance may become viable again once
    the certain atom is *retracted* in a later window -- the repairable
    state must therefore keep it (final simplification still removes it
    from the emitted :class:`GroundProgram`, so answer sets are unchanged).
    """

    def __init__(
        self,
        program: Program,
        extra_facts: Optional[Iterable[Atom]] = None,
        *,
        certain_negative_drop: bool = True,
        symbols: Optional[SymbolTable] = None,
    ):
        self.program = program.copy()
        if extra_facts is not None:
            self.program.add_facts(extra_facts)
        check_safety(self.program)
        self._certain_negative_drop = certain_negative_drop
        # Symbol table backing the possible-atom store; DeltaGrounding passes
        # a shared table so interned ids stay stable across repair-time store
        # rebuilds.  None means each _instantiate owns a fresh table.
        self._symbols = symbols

    # ------------------------------------------------------------------ #
    def ground(self) -> GroundProgram:
        possible, certain, ground_rules, _ = self._instantiate()

        # Final simplification --------------------------------------------- #
        possible_atoms = possible.atoms()
        simplified: List[GroundRule] = []
        for rule in ground_rules:
            cleaned = _simplify(rule, certain, possible_atoms)
            if cleaned is not None:
                simplified.append(cleaned)

        return GroundProgram(facts=set(certain), rules=simplified, possible_atoms=possible_atoms | set(certain))

    # ------------------------------------------------------------------ #
    def _instantiate(self) -> Tuple[_AtomStore, Set[Atom], List[GroundRule], Set[Tuple]]:
        """Run the full bottom-up instantiation (steps 1-4, no simplification).

        Returns the possible-atom store, the certain facts, the unsimplified
        ground rules, and the dedup keys of the recorded instances.
        """
        possible = _AtomStore(self._symbols)
        certain: Set[Atom] = set()
        ground_rules: List[GroundRule] = []
        seen_rules: Set[Tuple] = set()

        # 1. Facts -------------------------------------------------------- #
        proper_rules: List[Rule] = []
        for rule in self.program.rules:
            if rule.is_fact:
                atom = rule.head[0]
                if not atom.is_ground():
                    raise GroundingError(f"non-ground fact {atom} (facts must be variable-free)")
                possible.add(atom)
                certain.add(atom)
            else:
                proper_rules.append(rule)

        # 2. Component evaluation order ----------------------------------- #
        graph = PredicateDependencyGraph.from_program(self.program)
        # Tarjan emits sink components first; reverse for bottom-up evaluation
        # (predicates a rule depends on must be instantiated before the rule).
        components = list(reversed(strongly_connected_components(graph.adjacency())))
        component_of: Dict[str, int] = {}
        for component_index, component in enumerate(components):
            for predicate in component:
                component_of[predicate] = component_index

        rules_by_component: Dict[int, List[Rule]] = {}
        constraint_rules: List[Rule] = []
        for rule in proper_rules:
            if rule.is_constraint:
                constraint_rules.append(rule)
                continue
            # A rule is evaluated with the highest component among its head
            # predicates (they are in the same SCC for disjunctive rules that
            # are mutually recursive; otherwise max is a sound choice).
            component_index = max(component_of.get(predicate, 0) for predicate in rule.head_predicates())
            rules_by_component.setdefault(component_index, []).append(rule)

        # 3. Bottom-up semi-naive evaluation ------------------------------ #
        for component_index, component in enumerate(components):
            rules = rules_by_component.get(component_index, [])
            if not rules:
                continue
            self._evaluate_component(
                rules, component, possible, certain, ground_rules, seen_rules
            )

        # 4. Constraints are instantiated last over all possible atoms ---- #
        for rule in constraint_rules:
            self._instantiate_rule(rule, possible, certain, ground_rules, seen_rules, delta=None, restrict=None)

        return possible, certain, ground_rules, seen_rules

    # ------------------------------------------------------------------ #
    def _evaluate_component(
        self,
        rules: Sequence[Rule],
        component: Set[str],
        possible: _AtomStore,
        certain: Set[Atom],
        ground_rules: List[GroundRule],
        seen_rules: Set[Tuple],
    ) -> None:
        """Semi-naive fixpoint over one strongly connected component."""
        recursive = [
            rule for rule in rules if any(literal.predicate in component for literal in rule.positive_body)
        ]
        non_recursive = [rule for rule in rules if rule not in recursive]

        delta: Set[Atom] = set()
        for rule in non_recursive:
            delta.update(
                self._instantiate_rule(rule, possible, certain, ground_rules, seen_rules, delta=None, restrict=None)
            )
        if not recursive:
            return
        # First pass of recursive rules against everything derived so far.
        for rule in recursive:
            delta.update(
                self._instantiate_rule(rule, possible, certain, ground_rules, seen_rules, delta=None, restrict=None)
            )
        # Subsequent passes only need bindings that use at least one new atom.
        while delta:
            new_delta: Set[Atom] = set()
            for rule in recursive:
                new_delta.update(
                    self._instantiate_rule(
                        rule, possible, certain, ground_rules, seen_rules, delta=delta, restrict=component
                    )
                )
            delta = new_delta

    # ------------------------------------------------------------------ #
    def _instantiate_rule(
        self,
        rule: Rule,
        possible: _AtomStore,
        certain: Set[Atom],
        ground_rules: List[GroundRule],
        seen_rules: Set[Tuple],
        delta: Optional[Set[Atom]],
        restrict: Optional[Set[str]],
    ) -> Set[Atom]:
        """Instantiate one rule and record its ground instances.

        When ``delta`` is given, only substitutions where at least one
        positive body literal over a predicate in ``restrict`` matches an
        atom in ``delta`` are produced (semi-naive evaluation).

        Returns the set of newly derived *possible* head atoms.
        """
        new_atoms: Set[Atom] = set()
        positive_literals = list(rule.positive_body)
        comparisons = list(rule.comparisons)

        seed_indices: List[Optional[int]]
        if delta is None:
            seed_indices = [None]
        else:
            seed_indices = [
                index
                for index, literal in enumerate(positive_literals)
                if restrict is not None and literal.predicate in restrict
            ]
            if not seed_indices:
                return new_atoms

        for seed in seed_indices:
            for binding in self._join(positive_literals, comparisons, possible, delta, seed):
                derived = self._emit_ground_rule(rule, binding, possible, certain, ground_rules, seen_rules)
                new_atoms.update(derived)
        return new_atoms

    # ------------------------------------------------------------------ #
    def _join(
        self,
        literals: List[Literal],
        comparisons: List[Comparison],
        possible: _AtomStore,
        delta: Optional[Set[Atom]],
        seed: Optional[int],
    ) -> Iterable[Substitution]:
        """Enumerate substitutions satisfying the positive body and comparisons.

        The join is a depth-first nested-loop join with a greedy
        most-bound-first literal ordering and early evaluation of
        comparisons.
        """
        pending_comparisons = list(comparisons)
        remaining = list(range(len(literals)))

        def ready_comparisons(binding: Substitution) -> Optional[List[Comparison]]:
            """Evaluate comparisons whose variables are all bound.

            Returns the still-pending comparisons or None if one failed.
            """
            still_pending = []
            for comparison in pending_stack[-1]:
                instantiated = comparison.substitute(binding)
                if instantiated.is_ground():
                    if not instantiated.evaluate():
                        return None
                else:
                    still_pending.append(comparison)
            return still_pending

        # Depth-first search over literal orderings.
        pending_stack: List[List[Comparison]] = [pending_comparisons]

        def descend(binding: Substitution, todo: List[int]) -> Iterable[Substitution]:
            still_pending = ready_comparisons(binding)
            if still_pending is None:
                return
            pending_stack.append(still_pending)
            try:
                if not todo:
                    if still_pending:
                        # Unsafe comparisons should have been rejected earlier.
                        raise GroundingError(
                            f"comparison {still_pending[0]} has unbound variables after the join"
                        )
                    yield dict(binding)
                    return
                # Pick the next literal: prefer the seed (must consume delta),
                # then the literal with the most bound arguments.
                chosen = None
                if seed is not None and seed in todo:
                    chosen = seed
                else:
                    def bound_count(index: int) -> int:
                        literal = literals[index]
                        pattern = literal.atom.substitute(binding) if binding else literal.atom
                        return sum(1 for argument in pattern.arguments if argument.is_ground())

                    chosen = max(todo, key=bound_count)
                literal = literals[chosen]
                rest = [index for index in todo if index != chosen]
                if seed is not None and chosen == seed and delta is not None:
                    if binding:
                        candidates = [atom for atom in possible.candidates(literal.atom, binding) if atom in delta]
                    else:
                        # The seed is (by preference) matched first, with an
                        # empty binding: iterating the delta directly beats
                        # scanning the whole predicate population and
                        # filtering -- the delta is what semi-naive rounds
                        # and window repairs keep small.
                        signature = literal.atom.signature
                        candidates = [atom for atom in delta if atom.signature == signature and atom in possible]
                else:
                    candidates = possible.candidates(literal.atom, binding)
                for candidate in candidates:
                    extended = match_atom(literal.atom, candidate, binding)
                    if extended is None:
                        continue
                    yield from descend(extended, rest)
            finally:
                pending_stack.pop()

        yield from descend({}, remaining)

    # ------------------------------------------------------------------ #
    def _emit_ground_rule(
        self,
        rule: Rule,
        binding: Substitution,
        possible: _AtomStore,
        certain: Set[Atom],
        ground_rules: List[GroundRule],
        seen_rules: Set[Tuple],
    ) -> Set[Atom]:
        """Create the ground instance of ``rule`` under ``binding``."""
        head = tuple(atom.substitute(binding) for atom in rule.head)
        positive = tuple(literal.atom.substitute(binding) for literal in rule.positive_body)
        negative = tuple(literal.atom.substitute(binding) for literal in rule.negative_body)

        for atom in head + positive + negative:
            if not atom.is_ground():
                raise GroundingError(f"incomplete instantiation of {rule}: {atom} is not ground")

        # A negative literal over a certainly-true atom falsifies the body
        # outright: the instance can never fire, so do not even register its
        # head atoms as possible.  Kept (for later retraction) in delta mode.
        if self._certain_negative_drop and any(atom in certain for atom in negative):
            return set()

        new_atoms: Set[Atom] = set()
        for atom in head:
            if possible.add(atom):
                new_atoms.add(atom)

        ground = GroundRule(head=head, positive_body=positive, negative_body=negative)
        # Dedup instances on interned-id triples: a window emits the same
        # instance through many bindings, and id-tuple hashing beats
        # re-hashing three atom tuples every time.
        intern = possible.symbols.intern
        key = (
            tuple(map(intern, head)),
            tuple(map(intern, positive)),
            tuple(map(intern, negative)),
        )
        if key not in seen_rules:
            seen_rules.add(key)
            ground_rules.append(ground)

        # Track certainly-true atoms (definite consequences).
        if len(head) == 1 and not negative and all(atom in certain for atom in positive):
            certain.add(head[0])
        return new_atoms


def _simplify(rule: GroundRule, certain: Set[Atom], possible: Set[Atom]) -> Optional[GroundRule]:
    """Simplify a ground rule against certain and possible atom sets.

    Returns ``None`` when the rule can never fire or is trivially satisfied.
    """
    # A negative literal over a certainly true atom falsifies the body.
    for atom in rule.negative_body:
        if atom in certain:
            return None
    positive = tuple(atom for atom in rule.positive_body if atom not in certain)
    negative = tuple(atom for atom in rule.negative_body if atom in possible)
    # A rule whose single head atom is already certain adds no information.
    if len(rule.head) == 1 and rule.head[0] in certain and not positive and not negative:
        return None
    return GroundRule(head=rule.head, positive_body=positive, negative_body=negative)


# --------------------------------------------------------------------------- #
# Delta-grounding (incremental instantiation repair)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RepairStats:
    """Size record of one delta repair."""

    retracted: int
    asserted: int
    rules_deleted: int
    rules_added: int
    atoms_deleted: int
    atoms_added: int

    @property
    def repair_size(self) -> int:
        """Total fact churn (retracted + asserted atoms) of the repair."""
        return self.retracted + self.asserted


class DeltaGrounding:
    """Repairable instantiation of one rule set against a sliding fact set.

    The instance holds the *unsimplified* ground rules of a program together
    with reverse indexes (positive-body atom -> instances, head atom ->
    instances).  :meth:`repair` moves the state from one fact set to the
    next without regrounding from scratch, following the delete-and-rederive
    (DRed) recipe:

    1. *overdelete* -- starting from the retracted facts, transitively kill
       every ground instance whose positive body touches a deleted atom and
       every head atom those instances derived;
    2. *rescue* -- overdeleted atoms still derived by a surviving instance
       (an alternative derivation untouched by the retraction) stay
       possible and seed re-derivation;
    3. *re-derive* -- run the semi-naive join restricted to the rescued and
       newly asserted atoms, re-creating exactly the instances reachable
       from the delta.

    Instantiation runs with ``certain_negative_drop=False`` (see
    :class:`Grounder`): instances blocked by a certainly-true negative
    literal are kept in the state so a later retraction of that literal's
    atom revives them.  :meth:`to_ground_program` recomputes the definite
    (certain) closure and re-simplifies, so the emitted program has the same
    answer sets as a from-scratch grounding of the current facts.
    """

    def __init__(self, program: Program):
        proper_rules, fact_atoms = GroundingCache._split(program)
        self._proper_rules: List[Rule] = list(proper_rules)
        # Positive-body predicate -> rules, for delta-restricted instantiation.
        self._rules_by_predicate: Dict[str, List[Rule]] = {}
        for rule in self._proper_rules:
            for literal in rule.positive_body:
                bucket = self._rules_by_predicate.setdefault(literal.predicate, [])
                if rule not in bucket:
                    bucket.append(rule)
        # One symbol table for the lifetime of the state: atom ids survive
        # store rebuilds across repairs, so the repair indexes below can key
        # on dense ints instead of re-hashing atoms window after window.
        self._symbols = SymbolTable()
        self._machine = Grounder(program, certain_negative_drop=False, symbols=self._symbols)
        self.facts: Set[Atom] = set(fact_atoms)

        store, _certain, ground_rules, seen = self._machine._instantiate()
        self._store = store
        self._seen: Set[Tuple] = seen
        self._instances: Dict[int, GroundRule] = {}
        #: interned atom id -> instance ids whose positive body contains it.
        self._body_index: Dict[int, Set[int]] = {}
        #: interned atom id -> instance ids deriving it.
        self._head_index: Dict[int, Set[int]] = {}
        self._next_id = 0
        for ground in ground_rules:
            self._add_instance(ground)

    # ------------------------------------------------------------------ #
    # Instance bookkeeping
    # ------------------------------------------------------------------ #
    def _seen_key(self, ground: GroundRule) -> Tuple:
        intern = self._symbols.intern
        return (
            tuple(map(intern, ground.head)),
            tuple(map(intern, ground.positive_body)),
            tuple(map(intern, ground.negative_body)),
        )

    def _add_instance(self, ground: GroundRule) -> None:
        instance_id = self._next_id
        self._next_id += 1
        self._instances[instance_id] = ground
        intern = self._symbols.intern
        for atom in set(ground.positive_body):
            self._body_index.setdefault(intern(atom), set()).add(instance_id)
        for atom in ground.head:
            self._head_index.setdefault(intern(atom), set()).add(instance_id)

    def _remove_instance(self, instance_id: int) -> None:
        ground = self._instances.pop(instance_id)
        self._seen.discard(self._seen_key(ground))
        intern = self._symbols.intern
        for atom in set(ground.positive_body):
            bucket = self._body_index.get(intern(atom))
            if bucket is not None:
                bucket.discard(instance_id)
                if not bucket:
                    del self._body_index[intern(atom)]
        for atom in ground.head:
            bucket = self._head_index.get(intern(atom))
            if bucket is not None:
                bucket.discard(instance_id)
                if not bucket:
                    del self._head_index[intern(atom)]

    @property
    def instance_count(self) -> int:
        return len(self._instances)

    # ------------------------------------------------------------------ #
    # Repair
    # ------------------------------------------------------------------ #
    def repair(self, new_facts: Iterable[Atom]) -> RepairStats:
        """Move the instantiation from ``self.facts`` to ``new_facts``."""
        table = self._symbols
        intern = table.intern
        target = set(new_facts)
        retracted = self.facts - target
        asserted = target - self.facts
        target_ids = set(table.intern_many(target))

        # 1. Overdelete (the cascade runs entirely over interned ids) ------ #
        dead_ids: Set[int] = set()
        dead_instances: Set[int] = set()
        worklist: List[int] = [intern(atom) for atom in retracted]
        while worklist:
            atom_id = worklist.pop()
            if atom_id in dead_ids or atom_id in target_ids:
                continue
            dead_ids.add(atom_id)
            for instance_id in self._body_index.get(atom_id, ()):
                if instance_id in dead_instances:
                    continue
                dead_instances.add(instance_id)
                worklist.extend(intern(head) for head in self._instances[instance_id].head)
        for instance_id in dead_instances:
            self._remove_instance(instance_id)

        # 2. Rescue: overdeleted atoms with a surviving alternative support. #
        rescued_ids = {atom_id for atom_id in dead_ids if self._head_index.get(atom_id)}
        dead_ids -= rescued_ids

        # Rebuild the possible-atom store without the dead atoms (the store
        # is append-only; a rebuild is O(atoms) with small constants, far
        # below the join work a full reground would redo).  The rebuilt
        # store shares the state's symbol table, so surviving ids are
        # unchanged.
        resolve = table.resolve
        if dead_ids:
            survivor_ids = self._store.member_ids() - dead_ids
            self._store = _AtomStore(table)
            for atom_id in survivor_ids:
                self._store.add(resolve(atom_id))

        # 3. Assert + re-derive -------------------------------------------- #
        self.facts = target
        rescued = {resolve(atom_id) for atom_id in rescued_ids}
        seeds: Set[Atom] = set(rescued)
        for atom in asserted:
            if self._store.add(atom):
                seeds.add(atom)
        rules_added = 0
        atoms_added = 0
        delta = seeds
        throwaway_certain: Set[Atom] = set()
        while delta:
            predicates = {atom.predicate for atom in delta}
            touched: List[Rule] = []
            for predicate in predicates:
                for rule in self._rules_by_predicate.get(predicate, ()):
                    if rule not in touched:
                        touched.append(rule)
            buffer: List[GroundRule] = []
            new_atoms: Set[Atom] = set()
            for rule in touched:
                new_atoms.update(
                    self._machine._instantiate_rule(
                        rule,
                        self._store,
                        throwaway_certain,
                        buffer,
                        self._seen,
                        delta=delta,
                        restrict=predicates,
                    )
                )
            for ground in buffer:
                self._add_instance(ground)
            rules_added += len(buffer)
            atoms_added += len(new_atoms)
            delta = new_atoms

        return RepairStats(
            retracted=len(retracted),
            asserted=len(asserted),
            rules_deleted=len(dead_instances),
            rules_added=rules_added,
            atoms_deleted=len(dead_ids),
            atoms_added=atoms_added + len(seeds - rescued),
        )

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def _certain_closure(self) -> Set[Atom]:
        """Definite consequences of the current state (facts + definite rules).

        The fixpoint runs over interned ids: the queue, the certain set and
        the body-index probes all key on machine ints, resolving back to
        atoms only once at the end.
        """
        table = self._symbols
        intern = table.intern
        certain_ids: Set[int] = set(table.intern_many(self.facts))
        remaining: Dict[int, int] = {}
        queue: List[int] = list(certain_ids)
        for instance_id, ground in self._instances.items():
            if len(ground.head) != 1 or ground.negative_body:
                continue
            need = len(set(ground.positive_body))
            if need == 0:
                head_id = intern(ground.head[0])
                if head_id not in certain_ids:
                    certain_ids.add(head_id)
                    queue.append(head_id)
            else:
                remaining[instance_id] = need
        while queue:
            atom_id = queue.pop()
            for instance_id in self._body_index.get(atom_id, ()):
                need = remaining.get(instance_id)
                if need is None:
                    continue
                need -= 1
                remaining[instance_id] = need
                if need == 0:
                    head_id = intern(self._instances[instance_id].head[0])
                    if head_id not in certain_ids:
                        certain_ids.add(head_id)
                        queue.append(head_id)
        resolve = table.resolve
        return {resolve(atom_id) for atom_id in certain_ids}

    def to_ground_program(self) -> GroundProgram:
        """Simplify the current state into a fresh :class:`GroundProgram`."""
        certain = self._certain_closure()
        possible = self._store.atoms()
        simplified: List[GroundRule] = []
        for ground in self._instances.values():
            cleaned = _simplify(ground, certain, possible)
            if cleaned is not None:
                simplified.append(cleaned)
        return GroundProgram(facts=certain, rules=simplified, possible_atoms=possible | certain)


def ground_program(program: Program, facts: Optional[Iterable[Atom]] = None) -> GroundProgram:
    """Convenience wrapper: ground ``program`` (optionally with extra facts)."""
    return Grounder(program, extra_facts=facts).ground()
