"""Predicate-level dependency analysis of a program.

This is the *classic* ASP dependency graph the paper cites from Calimeri,
Perri and Ricca ([6] in the paper): a directed graph over predicates where
an edge ``p -> q`` means ``p`` occurs in the body of a rule whose head
mentions ``q``.  Strongly connected components of this graph yield an
evaluation order for the grounder, and the sign of edges through negation
decides whether the program is *stratified*.

Note this is distinct from the paper's own contribution (the *extended*
dependency graph and *input* dependency graph over input predicates), which
live in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.asp.syntax.program import Program

__all__ = ["PredicateDependencyGraph", "stratify", "strongly_connected_components"]


@dataclass
class PredicateDependencyGraph:
    """Directed predicate dependency graph with positive/negative edge marks."""

    nodes: Set[str] = field(default_factory=set)
    positive_edges: Set[Tuple[str, str]] = field(default_factory=set)
    negative_edges: Set[Tuple[str, str]] = field(default_factory=set)

    @classmethod
    def from_program(cls, program: Program) -> "PredicateDependencyGraph":
        graph = cls()
        graph.nodes.update(program.predicates())
        for rule in program.rules:
            heads = rule.head_predicates()
            for literal in rule.body_literals:
                for head in heads:
                    edge = (literal.predicate, head)
                    if literal.positive:
                        graph.positive_edges.add(edge)
                    else:
                        graph.negative_edges.add(edge)
        return graph

    @property
    def edges(self) -> Set[Tuple[str, str]]:
        return self.positive_edges | self.negative_edges

    def successors(self, node: str) -> Set[str]:
        return {target for source, target in self.edges if source == node}

    def predecessors(self, node: str) -> Set[str]:
        return {source for source, target in self.edges if target == node}

    def adjacency(self) -> Dict[str, Set[str]]:
        mapping: Dict[str, Set[str]] = {node: set() for node in self.nodes}
        for source, target in self.edges:
            mapping.setdefault(source, set()).add(target)
            mapping.setdefault(target, set())
        return mapping


def strongly_connected_components(adjacency: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's algorithm over an adjacency mapping.

    Components are emitted in Tarjan's natural order (sink components of the
    condensation first).  Callers that need a bottom-up evaluation order --
    dependencies before dependents, following body->head edges -- should
    reverse the returned list, as the grounder does.
    """
    index_counter = 0
    stack: List[str] = []
    on_stack: Set[str] = set()
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    components: List[Set[str]] = []

    # Iterative Tarjan to avoid recursion limits on large programs.
    for start in adjacency:
        if start in index:
            continue
        work: List[Tuple[str, Iterable[str]]] = [(start, iter(adjacency.get(start, ())))]
        index[start] = lowlink[start] = index_counter
        index_counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclass
class Stratification:
    """Result of stratifying a program.

    Attributes
    ----------
    strata:
        Mapping predicate -> stratum index (0-based).  Lower strata are
        evaluated first.
    is_stratified:
        False when some cycle in the dependency graph passes through a
        negative edge (the program then needs full stable-model search).
    order:
        Predicates grouped by stratum, lowest first.
    """

    strata: Dict[str, int]
    is_stratified: bool

    @property
    def order(self) -> List[List[str]]:
        if not self.strata:
            return []
        grouped: Dict[int, List[str]] = {}
        for predicate, level in self.strata.items():
            grouped.setdefault(level, []).append(predicate)
        return [sorted(grouped[level]) for level in sorted(grouped)]


def stratify(program: Program) -> Stratification:
    """Compute a stratification of ``program`` (or detect that none exists)."""
    graph = PredicateDependencyGraph.from_program(program)
    adjacency = graph.adjacency()
    components = strongly_connected_components(adjacency)

    component_of: Dict[str, int] = {}
    for component_index, component in enumerate(components):
        for node in component:
            component_of[node] = component_index

    # A program is stratified iff no negative edge lies inside a single SCC.
    is_stratified = True
    for source, target in graph.negative_edges:
        if component_of.get(source) == component_of.get(target):
            is_stratified = False
            break

    # Assign strata: longest path over the condensation counting negative
    # edges as +1 and positive edges as +0 (standard construction).
    strata: Dict[str, int] = {node: 0 for node in graph.nodes}
    changed = True
    iterations = 0
    limit = max(1, len(graph.nodes)) ** 2 + len(graph.nodes) + 1
    while changed and is_stratified:
        changed = False
        iterations += 1
        if iterations > limit:  # pragma: no cover - defensive only
            break
        for source, target in graph.positive_edges:
            if strata[target] < strata[source]:
                strata[target] = strata[source]
                changed = True
        for source, target in graph.negative_edges:
            if strata[target] < strata[source] + 1:
                strata[target] = strata[source] + 1
                changed = True
    return Stratification(strata=strata, is_stratified=is_stratified)
