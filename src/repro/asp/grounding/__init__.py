"""Grounding (instantiation) of ASP programs.

The grounder turns a program with variables plus a set of input facts into an
equivalent variable-free (ground) program, following the classic two-phase
architecture of ASP systems (ground, then solve) the paper describes in its
footnote 1.
"""

from repro.asp.grounding.dependency import PredicateDependencyGraph, stratify
from repro.asp.grounding.grounder import (
    DeltaGrounding,
    GroundProgram,
    GroundRule,
    Grounder,
    GroundingCache,
    RepairStats,
    ground_program,
)
from repro.asp.grounding.safety import check_safety, is_safe, unsafe_variables
from repro.asp.grounding.substitution import Substitution, match_atom

__all__ = [
    "DeltaGrounding",
    "GroundProgram",
    "GroundRule",
    "Grounder",
    "GroundingCache",
    "PredicateDependencyGraph",
    "RepairStats",
    "Substitution",
    "check_safety",
    "ground_program",
    "is_safe",
    "match_atom",
    "stratify",
    "unsafe_variables",
]
