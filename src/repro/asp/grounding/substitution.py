"""Substitutions (variable bindings) and atom matching.

A substitution maps variables to ground terms.  ``match_atom`` unifies a
possibly non-ground atom against a ground atom, extending a given binding;
this is the primitive the semi-naive grounder builds joins out of.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant, FunctionTerm, Term, Variable

__all__ = ["Substitution", "match_atom", "match_term"]

Substitution = Dict[Variable, Term]


def match_term(pattern: Term, target: Term, binding: Substitution) -> Optional[Substitution]:
    """Match ``pattern`` (may contain variables) against ground ``target``.

    Returns an extended copy of ``binding`` on success, ``None`` on failure.
    The input binding is never mutated.
    """
    if isinstance(pattern, Variable):
        bound = binding.get(pattern)
        if bound is None:
            extended = dict(binding)
            extended[pattern] = target
            return extended
        return binding if bound == target else None
    if isinstance(pattern, Constant):
        return binding if pattern == target else None
    if isinstance(pattern, FunctionTerm):
        if not isinstance(target, FunctionTerm):
            return None
        if pattern.name != target.name or pattern.arity != target.arity:
            return None
        current: Optional[Substitution] = binding
        for sub_pattern, sub_target in zip(pattern.arguments, target.arguments):
            current = match_term(sub_pattern, sub_target, current)
            if current is None:
                return None
        return current
    raise TypeError(f"unsupported term type {type(pattern)!r}")


def match_atom(pattern: Atom, target: Atom, binding: Optional[Substitution] = None) -> Optional[Substitution]:
    """Match a (non-ground) atom pattern against a ground atom.

    Returns the extended substitution, or ``None`` when the atoms do not
    unify under the given binding.
    """
    if binding is None:
        binding = {}
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    current: Optional[Substitution] = binding
    for pattern_argument, target_argument in zip(pattern.arguments, target.arguments):
        current = match_term(pattern_argument, target_argument, current)
        if current is None:
            return None
    return current
