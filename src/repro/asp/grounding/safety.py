"""Rule safety checking.

A rule is *safe* when every variable occurring anywhere in the rule also
occurs in at least one positive body atom literal.  Unsafe rules cannot be
finitely instantiated and are rejected before grounding, exactly as clingo
and DLV do.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.asp.errors import SafetyError
from repro.asp.syntax.program import Program
from repro.asp.syntax.rules import Rule
from repro.asp.syntax.terms import Variable

__all__ = ["check_safety", "is_safe", "unsafe_variables"]


def unsafe_variables(rule: Rule) -> Set[str]:
    """Return the names of variables that violate safety in ``rule``."""
    bound: Set[Variable] = set()
    for literal in rule.positive_body:
        bound.update(literal.variables())
    unsafe: Set[str] = set()
    for atom in rule.head:
        unsafe.update(variable.name for variable in atom.variables() if variable not in bound)
    for literal in rule.negative_body:
        unsafe.update(variable.name for variable in literal.variables() if variable not in bound)
    for comparison in rule.comparisons:
        unsafe.update(variable.name for variable in comparison.variables() if variable not in bound)
    return unsafe


def is_safe(rule: Rule) -> bool:
    """True when the rule is safe."""
    return not unsafe_variables(rule)


def check_safety(program_or_rules: "Program | Iterable[Rule]") -> None:
    """Raise :class:`SafetyError` for the first unsafe rule found."""
    rules = program_or_rules.rules if isinstance(program_or_rules, Program) else program_or_rules
    for rule in rules:
        violating = unsafe_variables(rule)
        if violating:
            raise SafetyError(rule, violating)
