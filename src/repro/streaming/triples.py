"""RDF triples -- the wire format of the experimental data.

The paper's experimental data "is in RDF triple format <s, p, o>"; subjects
and objects are either identifiers or numbers bound by the window size.  A
:class:`Triple` optionally carries a timestamp so time-based windows can be
exercised as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = ["Triple"]

TermValue = Union[str, int]


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF-style triple ``<subject, predicate, object>`` with an optional timestamp."""

    subject: TermValue
    predicate: str
    object: TermValue
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.predicate, str) or not self.predicate:
            raise ValueError("the predicate of a triple must be a non-empty string")

    def as_tuple(self) -> Tuple[TermValue, str, TermValue]:
        return (self.subject, self.predicate, self.object)

    def with_timestamp(self, timestamp: float) -> "Triple":
        return Triple(self.subject, self.predicate, self.object, timestamp)

    def __str__(self) -> str:
        return f"<{self.subject}, {self.predicate}, {self.object}>"
