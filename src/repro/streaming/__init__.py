"""Streaming substrate: RDF triples, windows, generators, format processors.

In the original StreamRule deployment, CQELS filters RDF streams from the
Web of Data and a *data format processor* translates the query results into
ASP facts before they reach Clingo (Figure 1 of the paper).  This package
provides a faithful, self-contained stand-in:

* :mod:`repro.streaming.triples` -- the RDF triple data model,
* :mod:`repro.streaming.format` -- RDF <-> ASP translation (the data format
  processor),
* :mod:`repro.streaming.generator` -- synthetic stream generators: the
  paper's random-triple scheme and a realistic traffic scenario,
* :mod:`repro.streaming.window` -- tuple-based and time-based windows,
* :mod:`repro.streaming.processor` -- a predicate-filtering stream query
  processor standing in for CQELS.
"""

from repro.streaming.format import DataFormatProcessor
from repro.streaming.generator import (
    FraudScenarioGenerator,
    IotScenarioGenerator,
    SyntheticStreamConfig,
    TrafficScenarioGenerator,
    UniformTripleGenerator,
    generate_window,
)
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.triples import Triple
from repro.streaming.window import (
    CountWindow,
    CountWindowStepper,
    LateArrivalError,
    TimeWindow,
    TimeWindowStepper,
    WindowDelta,
    WindowedStream,
)

__all__ = [
    "CountWindow",
    "CountWindowStepper",
    "DataFormatProcessor",
    "LateArrivalError",
    "StreamQueryProcessor",
    "FraudScenarioGenerator",
    "IotScenarioGenerator",
    "SyntheticStreamConfig",
    "TimeWindow",
    "TimeWindowStepper",
    "WindowDelta",
    "TrafficScenarioGenerator",
    "Triple",
    "UniformTripleGenerator",
    "WindowedStream",
    "generate_window",
]
