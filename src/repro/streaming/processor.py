"""Stream query processor: the CQELS stand-in.

In StreamRule (Figure 1) a semantic stream query processor filters the Web
of Data streams before they reach the non-monotonic reasoner -- the first
tier of the 2-tier architecture.  In the paper's experiments the query is a
pass-through filter on the input predicates, so this stand-in implements
exactly that: keep triples whose predicate is registered, drop everything
else, and keep simple statistics so the filtering overhead can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Set

from repro.streaming.triples import Triple

__all__ = ["StreamQueryProcessor"]


@dataclass
class StreamQueryProcessor:
    """Filters a raw triple stream down to the reasoner's input predicates."""

    input_predicates: Set[str]
    #: optional additional predicate-level filters (predicate -> triple predicate function)
    filters: Dict[str, Callable[[Triple], bool]] = field(default_factory=dict)
    accepted_count: int = 0
    rejected_count: int = 0

    def __post_init__(self) -> None:
        self.input_predicates = set(self.input_predicates)

    def register_filter(self, predicate: str, keep: Callable[[Triple], bool]) -> None:
        """Attach an extra per-predicate filter (e.g. value range checks)."""
        self.filters[predicate] = keep

    def accepts(self, triple: Triple) -> bool:
        if triple.predicate not in self.input_predicates:
            return False
        keep = self.filters.get(triple.predicate)
        return keep is None or bool(keep(triple))

    def process(self, triples: Iterable[Triple]) -> List[Triple]:
        """Filter one batch of triples (one window's worth)."""
        accepted: List[Triple] = []
        for triple in triples:
            if self.accepts(triple):
                accepted.append(triple)
                self.accepted_count += 1
            else:
                self.rejected_count += 1
        return accepted

    def stream(self, triples: Iterable[Triple]) -> Iterator[Triple]:
        """Lazily filter an unbounded stream."""
        for triple in triples:
            if self.accepts(triple):
                self.accepted_count += 1
                yield triple
            else:
                self.rejected_count += 1

    @property
    def selectivity(self) -> float:
        """Fraction of processed triples that passed the filter."""
        total = self.accepted_count + self.rejected_count
        if total == 0:
            return 0.0
        return self.accepted_count / total
