"""Synthetic stream generators for the evaluation workloads.

The paper builds its experimental data "by randomly generating triples where
each p belongs to inpre(P).  For s or o, we randomly generate their values
as numbers bound by n, where n is the size of the input window."

Four generators are provided:

* :class:`UniformTripleGenerator` -- the literal scheme above: predicates
  uniform over ``inpre(P)``, subject and object uniform integers bounded by
  the window size.
* :class:`TrafficScenarioGenerator` -- a calibrated variant of the same
  scheme for the traffic programs: subjects are drawn from a pool of road
  segments / cars and objects from realistic value ranges (speeds, car
  counts, smoke levels), so that the programs' rules actually fire and the
  accuracy differences between dependency-aware and random partitioning
  become observable, as they are in the paper's Figures 8 and 10.  This is
  the substitution documented in DESIGN.md: the paper's exact random ranges
  are under-specified, so the scenario generator preserves the property that
  matters -- joins between predicates share subjects at a controllable rate.
* :class:`FraudScenarioGenerator` / :class:`IotScenarioGenerator` -- the
  same calibration idea for the query-server scenario programs
  (:mod:`repro.programs.fraud`, :mod:`repro.programs.iot`): entity pools
  sized so that joins (account--transaction, sensor--zone) actually meet
  inside one window and the recursive / negation-heavy rules fire.

All generators are deterministic for a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.streaming.triples import Triple

__all__ = [
    "FraudScenarioGenerator",
    "IotScenarioGenerator",
    "SyntheticStreamConfig",
    "TrafficScenarioGenerator",
    "UniformTripleGenerator",
    "generate_window",
]


@dataclass(frozen=True)
class SyntheticStreamConfig:
    """Configuration of a synthetic window.

    Attributes
    ----------
    window_size:
        Number of triples in the window (the paper sweeps 5000..40000).
    input_predicates:
        The predicates ``inpre(P)`` that triples may use.
    scheme:
        ``"uniform"`` for the paper's literal scheme, ``"traffic"`` for the
        calibrated traffic scenario, ``"fraud"`` / ``"iot"`` for the
        query-server scenario workloads.
    seed:
        Random seed (windows are reproducible for a fixed seed).
    value_bound:
        Upper bound for random numeric values in the uniform scheme
        (defaults to the window size, as in the paper).
    location_count:
        Number of distinct road segments in the traffic scheme (defaults to
        ``max(10, window_size // 50)``).
    car_count:
        Number of distinct cars in the traffic scheme (defaults to
        ``max(10, window_size // 50)``).
    primary_count:
        Size of the primary entity pool in the fraud/iot schemes (accounts
        respectively sensors); defaults are scheme-specific.
    secondary_count:
        Size of the secondary entity pool in the fraud/iot schemes
        (transactions respectively zones); defaults are scheme-specific.
    """

    window_size: int
    input_predicates: Tuple[str, ...]
    scheme: str = "traffic"
    seed: Optional[int] = None
    value_bound: Optional[int] = None
    location_count: Optional[int] = None
    car_count: Optional[int] = None
    primary_count: Optional[int] = None
    secondary_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_size < 0:
            raise ValueError("window_size must be non-negative")
        if not self.input_predicates:
            raise ValueError("at least one input predicate is required")
        if self.scheme not in ("uniform", "traffic", "fraud", "iot"):
            raise ValueError(
                f"unknown scheme {self.scheme!r} (expected 'uniform', 'traffic', 'fraud', or 'iot')"
            )


class UniformTripleGenerator:
    """The paper's literal generator: everything uniform, bounded by ``n``."""

    def __init__(self, config: SyntheticStreamConfig):
        self._config = config
        self._random = random.Random(config.seed)

    def generate(self) -> List[Triple]:
        config = self._config
        bound = config.value_bound if config.value_bound is not None else max(1, config.window_size)
        predicates = list(config.input_predicates)
        triples: List[Triple] = []
        for index in range(config.window_size):
            predicate = self._random.choice(predicates)
            subject = self._random.randrange(bound)
            obj = self._random.randrange(bound)
            triples.append(Triple(subject, predicate, obj, timestamp=float(index)))
        return triples


# Predicates of the traffic programs that the scenario generator understands.
_TRAFFIC_PREDICATES = (
    "average_speed",
    "car_number",
    "traffic_light",
    "car_in_smoke",
    "car_speed",
    "car_location",
)


class TrafficScenarioGenerator:
    """Calibrated traffic workload for programs ``P`` and ``P'``.

    Subjects are road segments (``seg_i``) or cars (``car_i``); objects are
    drawn from realistic ranges so the rules of Listing 1 fire with
    non-negligible probability:

    * ``average_speed(S, V)`` with ``V`` uniform in [0, 120) -- slow traffic
      (``V < 20``) on roughly 1/6 of the readings,
    * ``car_number(S, C)`` with ``C`` uniform in [0, 100) -- crowded roads
      (``C > 40``) on roughly 3/5 of the readings,
    * ``traffic_light(S)`` present for a configurable fraction of segments,
    * ``car_in_smoke(C, L)`` with ``L`` in {high, low},
    * ``car_speed(C, V)`` with a bias towards 0 for smoking cars,
    * ``car_location(C, S)`` linking cars to segments.

    Unknown extra input predicates (for custom rule sets) fall back to the
    uniform scheme.
    """

    def __init__(self, config: SyntheticStreamConfig):
        self._config = config
        self._random = random.Random(config.seed)

    def generate(self) -> List[Triple]:
        config = self._config
        size = config.window_size
        # Entity pools are sized so that each entity receives only a couple of
        # readings per predicate inside one window.  This mirrors the paper's
        # scheme (values "bound by n") where ground atoms rarely repeat, which
        # is what makes random partitioning lose joins.
        location_count = config.location_count or max(10, size // 10)
        car_count = config.car_count or max(10, size // 8)
        locations = [f"seg_{index}" for index in range(location_count)]
        cars = [f"car_{index}" for index in range(car_count)]
        predicates = list(config.input_predicates)

        triples: List[Triple] = []
        for index in range(size):
            predicate = self._random.choice(predicates)
            triples.append(self._make_triple(predicate, locations, cars, float(index)))
        return triples

    # ------------------------------------------------------------------ #
    def _make_triple(self, predicate: str, locations: Sequence[str], cars: Sequence[str], timestamp: float) -> Triple:
        roll = self._random
        if predicate == "average_speed":
            return Triple(roll.choice(locations), predicate, roll.randrange(0, 120), timestamp)
        if predicate == "car_number":
            return Triple(roll.choice(locations), predicate, roll.randrange(0, 100), timestamp)
        if predicate == "traffic_light":
            return Triple(roll.choice(locations), predicate, "true", timestamp)
        if predicate == "car_in_smoke":
            level = "high" if roll.random() < 0.3 else "low"
            return Triple(roll.choice(cars), predicate, level, timestamp)
        if predicate == "car_speed":
            speed = 0 if roll.random() < 0.4 else roll.randrange(1, 120)
            return Triple(roll.choice(cars), predicate, speed, timestamp)
        if predicate == "car_location":
            return Triple(roll.choice(cars), predicate, roll.choice(locations), timestamp)
        # Unknown predicate: uniform fallback bounded by the window size.
        bound = max(1, self._config.window_size)
        return Triple(roll.randrange(bound), predicate, roll.randrange(bound), timestamp)


class FraudScenarioGenerator:
    """Calibrated transaction workload for :mod:`repro.programs.fraud`.

    Subjects are accounts (``acc_i``) and transactions (``txn_j``).  The
    transaction pool is kept small relative to the window so that
    ``sent``/``received``/``amount`` triples for the same transaction meet
    inside one window and the transfer-chain recursion has edges to close:

    * ``sent(A, T)`` / ``received(B, T)`` link accounts to transactions,
    * ``amount(T, X)`` with ``X`` uniform in [0, 1000) -- "big" (``> 500``)
      about half the time,
    * ``withdrawal(T)``, ``blacklisted(A)``, ``verified(A)`` are unary
      markers on a fraction of the entities.
    """

    def __init__(self, config: SyntheticStreamConfig):
        self._config = config
        self._random = random.Random(config.seed)

    def generate(self) -> List[Triple]:
        config = self._config
        size = config.window_size
        account_count = config.primary_count or max(6, size // 12)
        transaction_count = config.secondary_count or max(8, size // 6)
        accounts = [f"acc_{index}" for index in range(account_count)]
        transactions = [f"txn_{index}" for index in range(transaction_count)]
        predicates = list(config.input_predicates)

        triples: List[Triple] = []
        for index in range(size):
            predicate = self._random.choice(predicates)
            triples.append(self._make_triple(predicate, accounts, transactions, float(index)))
        return triples

    # ------------------------------------------------------------------ #
    def _make_triple(
        self, predicate: str, accounts: Sequence[str], transactions: Sequence[str], timestamp: float
    ) -> Triple:
        roll = self._random
        if predicate == "sent":
            return Triple(roll.choice(accounts), predicate, roll.choice(transactions), timestamp)
        if predicate == "received":
            return Triple(roll.choice(accounts), predicate, roll.choice(transactions), timestamp)
        if predicate == "amount":
            return Triple(roll.choice(transactions), predicate, roll.randrange(0, 1000), timestamp)
        if predicate == "withdrawal":
            return Triple(roll.choice(transactions), predicate, "true", timestamp)
        if predicate == "blacklisted":
            return Triple(roll.choice(accounts), predicate, "true", timestamp)
        if predicate == "verified":
            return Triple(roll.choice(accounts), predicate, "true", timestamp)
        bound = max(1, self._config.window_size)
        return Triple(roll.randrange(bound), predicate, roll.randrange(bound), timestamp)


class IotScenarioGenerator:
    """Calibrated telemetry workload for :mod:`repro.programs.iot`.

    Subjects are sensors (``sensor_i``) mapped onto a small pool of zones
    (``zone_j``).  Readings spread over [0, 120) so both extremes (``> 90``,
    ``< 10``) occur; ``registered`` markers outnumber actual readings per
    sensor enough that some registered sensors stay silent in a window,
    which is what exercises the negation-over-derived ``silent`` rule.
    """

    def __init__(self, config: SyntheticStreamConfig):
        self._config = config
        self._random = random.Random(config.seed)

    def generate(self) -> List[Triple]:
        config = self._config
        size = config.window_size
        sensor_count = config.primary_count or max(8, size // 8)
        zone_count = config.secondary_count or max(4, size // 25)
        sensors = [f"sensor_{index}" for index in range(sensor_count)]
        zones = [f"zone_{index}" for index in range(zone_count)]
        predicates = list(config.input_predicates)

        triples: List[Triple] = []
        for index in range(size):
            predicate = self._random.choice(predicates)
            triples.append(self._make_triple(predicate, sensors, zones, float(index)))
        return triples

    # ------------------------------------------------------------------ #
    def _make_triple(
        self, predicate: str, sensors: Sequence[str], zones: Sequence[str], timestamp: float
    ) -> Triple:
        roll = self._random
        if predicate == "reading":
            return Triple(roll.choice(sensors), predicate, roll.randrange(0, 120), timestamp)
        if predicate == "located":
            return Triple(roll.choice(sensors), predicate, roll.choice(zones), timestamp)
        if predicate == "ventilated":
            return Triple(roll.choice(zones), predicate, "true", timestamp)
        if predicate == "registered":
            return Triple(roll.choice(sensors), predicate, "true", timestamp)
        bound = max(1, self._config.window_size)
        return Triple(roll.randrange(bound), predicate, roll.randrange(bound), timestamp)


def generate_window(config: SyntheticStreamConfig) -> List[Triple]:
    """Generate one window of triples according to ``config``."""
    if config.scheme == "uniform":
        return UniformTripleGenerator(config).generate()
    if config.scheme == "fraud":
        return FraudScenarioGenerator(config).generate()
    if config.scheme == "iot":
        return IotScenarioGenerator(config).generate()
    return TrafficScenarioGenerator(config).generate()
