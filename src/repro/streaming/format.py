"""The data format processor: RDF triples <-> ASP facts.

StreamRule "intercepts the output RDF stream query results filtered by CQELS
and translates them into Answer Set Programming (ASP) syntax before
streaming them into Clingo" (Section I).  The reverse direction turns answer
set atoms back into triples for downstream consumers.  The paper stresses
that this transformation overhead is part of the reasoner's latency, so both
directions are implemented as explicit, measurable steps.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant, Term
from repro.streaming.triples import Triple

__all__ = ["DataFormatProcessor"]


class DataFormatProcessor:
    """Bidirectional translator between RDF triples and ASP ground atoms.

    A triple ``<s, p, o>`` becomes the binary atom ``p(s, o)``; unary
    "type-like" triples whose object equals ``marker`` become ``p(s)``
    (used for predicates such as ``traffic_light(newcastle)``).
    """

    def __init__(self, unary_marker: str = "true"):
        self._unary_marker = unary_marker

    # ------------------------------------------------------------------ #
    # RDF -> ASP
    # ------------------------------------------------------------------ #
    def triple_to_atom(self, triple: Triple) -> Atom:
        subject = self._to_term(triple.subject)
        if triple.object == self._unary_marker:
            return Atom(triple.predicate, (subject,))
        return Atom(triple.predicate, (subject, self._to_term(triple.object)))

    def triples_to_atoms(self, triples: Iterable[Triple]) -> List[Atom]:
        return [self.triple_to_atom(triple) for triple in triples]

    # ------------------------------------------------------------------ #
    # ASP -> RDF
    # ------------------------------------------------------------------ #
    def atom_to_triple(self, atom: Atom, timestamp: Optional[float] = None) -> Triple:
        if atom.arity == 1:
            return Triple(self._to_value(atom.arguments[0]), atom.predicate, self._unary_marker, timestamp)
        if atom.arity == 2:
            return Triple(
                self._to_value(atom.arguments[0]),
                atom.predicate,
                self._to_value(atom.arguments[1]),
                timestamp,
            )
        raise ValueError(f"cannot express {atom} (arity {atom.arity}) as a single triple")

    def atoms_to_triples(self, atoms: Iterable[Atom], timestamp: Optional[float] = None) -> List[Triple]:
        return [self.atom_to_triple(atom, timestamp) for atom in atoms]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_term(value: Union[str, int]) -> Term:
        if isinstance(value, int):
            return Constant(value)
        return Constant(str(value))

    @staticmethod
    def _to_value(term: Term) -> Union[str, int]:
        if isinstance(term, Constant):
            return term.value
        return str(term)
