"""Windows over triple streams.

The reasoner processes one *input window* per computation (Section I).  The
paper (and [12]) use tuple-based windows; time-based windows are provided as
well since StreamRule's stream processor supports both.

Window semantics
----------------
Both window kinds support a ``slide`` parameter:

* ``slide == size`` (tumbling, the paper's setting): consecutive windows
  partition the stream; at stream end a trailing partial window carries the
  leftover items.
* ``slide < size`` (sliding): consecutive windows overlap by
  ``size - slide`` items.  The overlap means window ``W_{i+1}`` equals
  ``W_i`` minus its ``slide`` oldest items plus the newly arrived ones --
  exactly the *delta* structure that incremental (delta-) grounding exploits.
* ``slide > size`` (hopping): ``slide - size`` items between consecutive
  windows are skipped entirely.

``emit_partial`` controls the trailing window at stream end: when ``True``
(the default, matching the paper's tumbling semantics) a final partial
window is emitted *iff it contains items never seen in a full window* --
so tumbling and hopping streams keep their leftover tail, while sliding
streams no longer re-emit a tail that is a pure suffix of the last full
window.  ``False`` suppresses partial windows entirely.

Delta iteration
---------------
:meth:`CountWindow.deltas` / :meth:`TimeWindow.deltas` yield
:class:`WindowDelta` records pairing every window with the items that
*expired* (present in the previous window, gone now) and *arrived* (new in
this window).  The invariant, exploited by the delta-grounding tests, is::

    previous_window[len(expired):] + arrived == window

i.e. expired items form a prefix of the previous window, arrived items a
suffix of the current one, and the two reconstruct each slide exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.streaming.triples import Triple

__all__ = [
    "CountWindow",
    "CountWindowStepper",
    "LateArrivalError",
    "TimeWindow",
    "TimeWindowStepper",
    "WindowDelta",
    "WindowedStream",
]


class LateArrivalError(ValueError):
    """A pushed triple's timestamp falls inside an already-emitted window.

    Raised by :class:`TimeWindowStepper` under its default ``late="raise"``
    policy: once a time window has been emitted (and possibly evaluated),
    an item belonging to it can no longer be windowed exactly.  Streams
    with unbounded disorder should stay on the batch path
    (:meth:`TimeWindow.deltas`), which sorts the whole stream first.
    """


@dataclass(frozen=True)
class WindowDelta:
    """One window of a stream together with its slide-to-slide delta.

    ``expired`` are the items of the *previous* emitted window that are no
    longer in this one (always a prefix of the previous window); ``arrived``
    are the items new in this window (always a suffix of it).  For the first
    window ``expired`` is empty and ``arrived`` equals the whole window.
    ``partial`` marks a trailing partial window emitted at stream end.
    """

    index: int
    window: Tuple[Triple, ...]
    expired: Tuple[Triple, ...]
    arrived: Tuple[Triple, ...]
    partial: bool = False

    def __len__(self) -> int:
        return len(self.window)

    @property
    def carries_over(self) -> bool:
        """Whether part of this window survived from the previous one.

        True exactly for the overlapping (sliding) case -- the one where
        delta-grounding can repair the previous instantiation.  Tumbling and
        hopping windows (and the first window of any stream) share no
        content with their predecessor, so ``arrived`` is the whole window.
        """
        return len(self.arrived) < len(self.window)


@dataclass(frozen=True)
class CountWindow:
    """Tuple-based window: emit a window of ``size`` items every ``slide`` items.

    ``slide`` defaults to ``size`` (tumbling); a smaller slide yields
    overlapping (sliding) windows, a larger one hopping windows that skip
    ``slide - size`` items between emissions.
    """

    size: int
    slide: Optional[int] = None
    emit_partial: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("window size must be positive")
        if self.slide is not None and self.slide <= 0:
            raise ValueError("window slide must be positive")

    def windows(self, triples: Iterable[Triple]) -> Iterator[List[Triple]]:
        for delta in self.deltas(triples):
            yield list(delta.window)

    def deltas(self, triples: Iterable[Triple]) -> Iterator[WindowDelta]:
        """Iterate windows annotated with their expired/arrived deltas.

        The windowing state machine lives in :class:`CountWindowStepper`
        (the push-based form); this batch generator simply drives it, so
        the two iteration styles can never diverge.
        """
        stepper = self.stepper()
        for triple in triples:
            delta = stepper.feed(triple)
            if delta is not None:
                yield delta
        tail = stepper.flush()
        if tail is not None:
            yield tail

    @staticmethod
    def _delta(
        index: int, buffer: List[Triple], previous: List[Triple], pending: int, partial: bool
    ) -> WindowDelta:
        overlap = len(buffer) - pending
        return WindowDelta(
            index=index,
            window=tuple(buffer),
            expired=tuple(previous[: len(previous) - overlap]),
            arrived=tuple(buffer[overlap:]),
            partial=partial,
        )

    def stepper(self) -> "CountWindowStepper":
        """An incremental (push-based) driver equivalent to :meth:`deltas`."""
        return CountWindowStepper(self)


class CountWindowStepper:
    """The count-window state machine, push-based.

    Feed items one at a time; each call returns the completed window's
    :class:`WindowDelta` (or ``None`` while the window is still filling), and
    :meth:`flush` emits the trailing partial window under the
    ``emit_partial`` rule.  :meth:`CountWindow.deltas` is a thin driver over
    this class, so batch iteration and item-wise push yield the identical
    delta sequence by construction -- in O(1) bookkeeping per
    non-completing item, which is what makes unbounded push ingestion cheap
    (re-windowing a growing buffer from the start would be quadratic).
    """

    def __init__(self, policy: CountWindow):
        self._policy = policy
        self._slide = policy.slide or policy.size
        self._buffer: List[Triple] = []
        self._previous: List[Triple] = []
        self._pending = 0  # buffered items not yet emitted in any window
        self._skip = 0  # hopping: items to drop before buffering resumes
        self._index = 0

    @property
    def index(self) -> int:
        """Index of the next window to be emitted."""
        return self._index

    def feed(self, item: Triple) -> Optional[WindowDelta]:
        """Accept one stream item; return the delta of the window it completes."""
        if self._skip:
            self._skip -= 1
            return None
        self._buffer.append(item)
        self._pending += 1
        if len(self._buffer) < self._policy.size:
            return None
        delta = CountWindow._delta(self._index, self._buffer, self._previous, self._pending, partial=False)
        self._index += 1
        self._previous = list(self._buffer)
        self._pending = 0
        if self._slide >= self._policy.size:
            self._buffer = []
            self._skip = self._slide - self._policy.size
        else:
            self._buffer = self._buffer[self._slide :]
        return delta

    def flush(self) -> Optional[WindowDelta]:
        """End of stream: emit the trailing partial window, if the policy does."""
        if self._buffer and self._pending and self._policy.emit_partial:
            delta = CountWindow._delta(self._index, self._buffer, self._previous, self._pending, partial=True)
            self._pending = 0  # the tail is now seen; a second flush is a no-op
            return delta
        return None


@dataclass(frozen=True)
class TimeWindow:
    """Time-based window: group triples into intervals of ``duration`` time units.

    A triple without a timestamp inherits the most recent timestamp seen in
    arrival order (the earliest known timestamp for a leading run, 0.0 for a
    fully timestamp-less stream).  It therefore belongs to exactly the
    windows covering that one instant -- not, as a naive "assign to the
    current window" rule would have it, to *every* overlapping window.
    """

    duration: float
    slide: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("window duration must be positive")
        if self.slide is not None and self.slide <= 0:
            raise ValueError("window slide must be positive")

    def _annotate(self, triples: Iterable[Triple]) -> List[Tuple[float, Triple]]:
        """Pair every triple with its effective timestamp, sorted by time.

        The sort is stable, so triples sharing an effective timestamp keep
        their arrival order.
        """
        items = list(triples)
        carried: List[Optional[float]] = []
        carry: Optional[float] = None
        for triple in items:
            if triple.timestamp is not None:
                carry = triple.timestamp
            carried.append(carry)
        first_known = next((stamp for stamp in carried if stamp is not None), 0.0)
        annotated = [
            (stamp if stamp is not None else first_known, triple)
            for stamp, triple in zip(carried, items)
        ]
        annotated.sort(key=lambda pair: pair[0])
        return annotated

    def windows(self, triples: Iterable[Triple]) -> Iterator[List[Triple]]:
        for delta in self.deltas(triples):
            yield list(delta.window)

    def deltas(self, triples: Iterable[Triple]) -> Iterator[WindowDelta]:
        """Iterate non-empty windows annotated with expired/arrived deltas.

        The windowing state machine lives in :class:`TimeWindowStepper`
        (the push-based form); this batch generator annotates and *sorts*
        the whole stream first -- which is why it handles arbitrary
        disorder -- and then simply drives the stepper, so the two
        iteration styles can never diverge.
        """
        stepper = self.stepper()
        for stamp, triple in self._annotate(triples):
            yield from stepper.feed_at(stamp, triple)
        yield from stepper.flush()

    def stepper(self, late: str = "raise") -> "TimeWindowStepper":
        """An incremental (push-based) driver equivalent to :meth:`deltas`.

        Exact for in-order streams (and for any disorder that never lands
        inside an already-emitted window); see :class:`TimeWindowStepper`
        for the ``late`` policies.
        """
        return TimeWindowStepper(self, late=late)


class TimeWindowStepper:
    """The time-window state machine, push-based.

    Feed triples one at a time; each call returns the (possibly empty) list
    of :class:`WindowDelta` records for every window the new item's
    timestamp proves complete -- a window ``[s, s + duration)`` closes once
    a timestamp ``>= s + duration`` is seen, i.e. at the exact point the
    batch path would stop extending it.  :meth:`flush` emits the windows
    still open at stream end.  :meth:`TimeWindow.deltas` is a thin driver
    over this class (it sorts, then feeds), so batch iteration and
    item-wise push yield the identical delta sequence by construction; a
    :class:`~repro.streamrule.session.StreamSession` uses it for the
    opt-in *eager* time-window push path: results stream before stream
    end, and per-item cost is one insort into the open-window buffer --
    O(open items) worst-case from list shifting, but the buffer holds only
    the un-expired tail rather than the whole stream, and in-order arrival
    appends at the end.

    The exactness caveat is inherent to eager emission: an item whose
    timestamp falls inside an already-emitted window arrives too late to be
    windowed correctly.  The ``late`` policy decides what happens then --
    ``"raise"`` (default) raises :class:`LateArrivalError`; ``"drop"``
    discards the item and counts it in :attr:`late_dropped`.  Timestamps
    that merely arrive out of order among the still-open windows are
    handled exactly.  Timestamp-less triples inherit the most recent
    timestamp, exactly as the batch path's annotation rule does (a leading
    timestamp-less run is held back until the first real timestamp, which
    it inherits).
    """

    def __init__(self, policy: TimeWindow, late: str = "raise"):
        if late not in ("raise", "drop"):
            raise ValueError(f'late policy must be "raise" or "drop", got {late!r}')
        self._policy = policy
        self._slide = policy.slide or policy.duration
        self._late = late
        #: Sorted (stamp, arrival sequence, triple) entries not yet expired.
        self._pending: List[Tuple[float, int, Triple]] = []
        self._leading: List[Triple] = []  # timestamp-less prefix, stamp unknown yet
        self._carry: Optional[float] = None
        self._sequence = 0
        self._window_start: Optional[float] = None
        self._watermark = float("-inf")
        self._closed_end = float("-inf")  # largest end of any closed window
        self._previous: List[Tuple[float, int, Triple]] = []
        self._index = 0
        #: Items discarded under the ``late="drop"`` policy.
        self.late_dropped = 0

    @property
    def index(self) -> int:
        """Index of the next window to be emitted."""
        return self._index

    # ------------------------------------------------------------------ #
    def feed(self, triple: Triple) -> List[WindowDelta]:
        """Accept one stream item; return the deltas of the windows it closes."""
        if triple.timestamp is not None:
            self._carry = triple.timestamp
        elif self._carry is None:
            # A leading timestamp-less run inherits the first known
            # timestamp; hold it back until that timestamp arrives.
            self._leading.append(triple)
            return []
        stamp = self._carry
        assert stamp is not None
        emitted: List[WindowDelta] = []
        if self._leading:
            backfill, self._leading = self._leading, []
            for queued in backfill:
                emitted.extend(self.feed_at(stamp, queued))
        emitted.extend(self.feed_at(stamp, triple))
        return emitted

    def feed_at(self, stamp: float, triple: Triple) -> List[WindowDelta]:
        """Accept one item at an explicit effective timestamp."""
        if stamp < self._closed_end:
            if self._late == "drop":
                self.late_dropped += 1
                return []
            raise LateArrivalError(
                f"timestamp {stamp} falls inside an already-emitted window "
                f"(closed through {self._closed_end}); sort the stream or use the "
                f'batch path / late="drop"'
            )
        if self._window_start is None:
            self._window_start = stamp
        elif self._closed_end == float("-inf"):
            # Nothing emitted yet: the window grid may still shift left to
            # start at the earliest timestamp, as the batch path would.
            self._window_start = min(self._window_start, stamp)
        entry = (stamp, self._sequence, triple)
        self._sequence += 1
        bisect.insort(self._pending, entry)
        if stamp > self._watermark:
            self._watermark = stamp
        emitted: List[WindowDelta] = []
        while self._window_start is not None and self._window_start + self._policy.duration <= self._watermark:
            delta = self._emit_current()
            if delta is not None:
                emitted.append(delta)
            self._advance()
        return emitted

    def flush(self) -> List[WindowDelta]:
        """End of stream: emit every window still open."""
        if self._leading:
            # A fully timestamp-less stream defaults to timestamp 0.0,
            # matching the batch annotation rule.
            backfill, self._leading = self._leading, []
            for queued in backfill:
                self.feed_at(0.0, queued)
        if self._window_start is None:
            return []
        emitted: List[WindowDelta] = []
        end_time = self._watermark + 1e-9
        while self._window_start <= end_time:
            delta = self._emit_current()
            if delta is not None:
                emitted.append(delta)
            self._advance()
        return emitted

    # ------------------------------------------------------------------ #
    def _emit_current(self) -> Optional[WindowDelta]:
        """Build the delta of the window at ``_window_start`` (None if empty)."""
        window_start = self._window_start
        assert window_start is not None
        window_end = window_start + self._policy.duration
        cut = 0
        while cut < len(self._pending) and self._pending[cut][0] < window_start:
            cut += 1
        if cut:
            del self._pending[:cut]
        take = 0
        while take < len(self._pending) and self._pending[take][0] < window_end:
            take += 1
        if not take:
            return None
        entries = self._pending[:take]
        expired_count = 0
        while expired_count < len(self._previous) and self._previous[expired_count][0] < window_start:
            expired_count += 1
        overlap = len(self._previous) - expired_count
        delta = WindowDelta(
            index=self._index,
            window=tuple(triple for _, _, triple in entries),
            expired=tuple(triple for _, _, triple in self._previous[:expired_count]),
            arrived=tuple(triple for _, _, triple in entries[overlap:]),
        )
        self._previous = entries
        self._index += 1
        return delta

    def _advance(self) -> None:
        assert self._window_start is not None
        self._closed_end = max(self._closed_end, self._window_start + self._policy.duration)
        self._window_start += self._slide


class WindowedStream:
    """Convenience wrapper pairing a triple source with a window policy."""

    def __init__(self, triples: Iterable[Triple], window: "CountWindow | TimeWindow"):
        self._triples = triples
        self._window = window

    def __iter__(self) -> Iterator[List[Triple]]:
        return self._window.windows(self._triples)

    def deltas(self) -> Iterator[WindowDelta]:
        return self._window.deltas(self._triples)
