"""Windows over triple streams.

The reasoner processes one *input window* per computation (Section I).  The
paper (and [12]) use tuple-based windows; time-based windows are provided as
well since StreamRule's stream processor supports both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.streaming.triples import Triple

__all__ = ["CountWindow", "TimeWindow", "WindowedStream"]


@dataclass(frozen=True)
class CountWindow:
    """Tuple-based window: emit a window every ``size`` items.

    ``slide`` defaults to ``size`` (tumbling); a smaller slide yields
    overlapping (sliding) windows.
    """

    size: int
    slide: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("window size must be positive")
        if self.slide is not None and self.slide <= 0:
            raise ValueError("window slide must be positive")

    def windows(self, triples: Iterable[Triple]) -> Iterator[List[Triple]]:
        slide = self.slide or self.size
        buffer: List[Triple] = []
        for triple in triples:
            buffer.append(triple)
            if len(buffer) >= self.size:
                yield list(buffer[: self.size])
                buffer = buffer[slide:]
        if buffer:
            yield list(buffer)


@dataclass(frozen=True)
class TimeWindow:
    """Time-based window: group triples into intervals of ``duration`` time units.

    Triples without a timestamp are assigned to the current window.
    """

    duration: float
    slide: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("window duration must be positive")
        if self.slide is not None and self.slide <= 0:
            raise ValueError("window slide must be positive")

    def windows(self, triples: Iterable[Triple]) -> Iterator[List[Triple]]:
        ordered = sorted(
            triples,
            key=lambda triple: triple.timestamp if triple.timestamp is not None else 0.0,
        )
        if not ordered:
            return
        slide = self.slide or self.duration
        start = ordered[0].timestamp or 0.0
        end_time = (ordered[-1].timestamp or 0.0) + 1e-9
        window_start = start
        while window_start <= end_time:
            window_end = window_start + self.duration
            window = [
                triple
                for triple in ordered
                if window_start
                <= (triple.timestamp if triple.timestamp is not None else window_start)
                < window_end
            ]
            if window:
                yield window
            window_start += slide


class WindowedStream:
    """Convenience wrapper pairing a triple source with a window policy."""

    def __init__(self, triples: Iterable[Triple], window: "CountWindow | TimeWindow"):
        self._triples = triples
        self._window = window

    def __iter__(self) -> Iterator[List[Triple]]:
        return self._window.windows(self._triples)
