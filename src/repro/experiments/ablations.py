"""Ablations beyond the paper's figures.

* :func:`duplication_overhead` -- quantify the latency overhead caused by
  duplicated predicates (the paper reports "up to 30%" overhead for ``P'``
  when ~25% of the window's instances belong to the duplicated predicate).
* :func:`resolution_sweep` -- how the Louvain resolution parameter changes
  the number of communities and the resulting accuracy.
* :func:`partition_count_sweep` -- accuracy of random partitioning as the
  number of chunks grows (the trend behind Figures 8 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.accuracy import mean_accuracy
from repro.core.decomposition import decompose
from repro.core.input_dependency import build_input_dependency_graph
from repro.core.partitioner import DependencyPartitioner, RandomPartitioner
from repro.experiments.runner import build_reasoner_suite, program_by_name
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES
from repro.streaming.generator import SyntheticStreamConfig, generate_window
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.reasoner import Reasoner

__all__ = ["DuplicationRecord", "ResolutionRecord", "duplication_overhead", "partition_count_sweep", "resolution_sweep"]


@dataclass(frozen=True)
class DuplicationRecord:
    """Latency with and without duplicated predicates for one window."""

    window_size: int
    duplication_ratio: float
    latency_with_duplication_ms: float
    latency_without_duplication_ms: float

    @property
    def overhead(self) -> float:
        """Relative latency overhead introduced by duplication."""
        if self.latency_without_duplication_ms <= 0:
            return 0.0
        return self.latency_with_duplication_ms / self.latency_without_duplication_ms - 1.0


def duplication_overhead(
    window_sizes: Sequence[int] = (1000, 2000, 3000),
    seed: int = 2017,
) -> List[DuplicationRecord]:
    """Compare PR_Dep latency on ``P'`` (duplication) vs ``P`` (no duplication)."""
    records: List[DuplicationRecord] = []
    suite_p = build_reasoner_suite("P", seed=seed)
    suite_p_prime = build_reasoner_suite("P_prime", seed=seed)
    for window_size in window_sizes:
        config = SyntheticStreamConfig(
            window_size=window_size,
            input_predicates=INPUT_PREDICATES,
            scheme="traffic",
            seed=seed + window_size,
        )
        window = generate_window(config)
        with_duplication = suite_p_prime.dependency.session.evaluate_window(window)
        without_duplication = suite_p.dependency.session.evaluate_window(window)
        records.append(
            DuplicationRecord(
                window_size=window_size,
                duplication_ratio=with_duplication.metrics.duplication_ratio,
                latency_with_duplication_ms=with_duplication.metrics.latency_milliseconds,
                latency_without_duplication_ms=without_duplication.metrics.latency_milliseconds,
            )
        )
    return records


@dataclass(frozen=True)
class ResolutionRecord:
    """Community structure and accuracy for one Louvain resolution."""

    resolution: float
    community_count: int
    duplicated_predicates: Tuple[str, ...]
    accuracy: float


def resolution_sweep(
    program_name: str = "P_prime",
    resolutions: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    window_size: int = 1000,
    seed: int = 2017,
) -> List[ResolutionRecord]:
    """Sweep the Louvain resolution and measure the resulting accuracy."""
    program = program_by_name(program_name)
    reasoner = Reasoner(program, input_predicates=INPUT_PREDICATES, output_predicates=EVENT_PREDICATES)
    graph = build_input_dependency_graph(program, INPUT_PREDICATES)
    config = SyntheticStreamConfig(
        window_size=window_size, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    window = generate_window(config)
    reference = reasoner.reason(window)

    records: List[ResolutionRecord] = []
    for resolution in resolutions:
        decomposition = decompose(graph, resolution=resolution)
        parallel_reasoner = ParallelReasoner(reasoner, DependencyPartitioner(decomposition.plan))
        result = parallel_reasoner.session.evaluate_window(window)
        records.append(
            ResolutionRecord(
                resolution=resolution,
                community_count=decomposition.community_count,
                duplicated_predicates=tuple(sorted(decomposition.duplicated_predicates)),
                accuracy=mean_accuracy(result.answers, reference.answers),
            )
        )
    return records


def partition_count_sweep(
    program_name: str = "P",
    partition_counts: Sequence[int] = (2, 3, 4, 5, 8),
    window_size: int = 1000,
    seed: int = 2017,
) -> Dict[int, float]:
    """Accuracy of random partitioning as the number of chunks grows."""
    program = program_by_name(program_name)
    reasoner = Reasoner(program, input_predicates=INPUT_PREDICATES, output_predicates=EVENT_PREDICATES)
    config = SyntheticStreamConfig(
        window_size=window_size, input_predicates=INPUT_PREDICATES, scheme="traffic", seed=seed
    )
    window = generate_window(config)
    reference = reasoner.reason(window)
    accuracies: Dict[int, float] = {}
    for count in partition_counts:
        parallel_reasoner = ParallelReasoner(reasoner, RandomPartitioner(count, seed=seed + count))
        result = parallel_reasoner.session.evaluate_window(window)
        accuracies[count] = mean_accuracy(result.answers, reference.answers)
    return accuracies
