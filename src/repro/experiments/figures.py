"""Drivers for the paper's figures.

* Figure 7 -- reasoning latency over window size, program ``P``
* Figure 8 -- accuracy over window size, program ``P``
* Figure 9 -- reasoning latency over window size, program ``P'``
* Figure 10 -- accuracy over window size, program ``P'``

Each figure is one *view* (latency or accuracy) of the same window-size
sweep for one program, so :func:`run_window_sweep` produces the sweep once
and :func:`run_figure` extracts the requested series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, effective_window_sizes
from repro.experiments.runner import ReasonerSuite, WindowEvaluation, build_reasoner_suite
from repro.programs.traffic import INPUT_PREDICATES
from repro.streaming.generator import SyntheticStreamConfig, generate_window

__all__ = ["FIGURES", "FigureSeries", "SweepRecord", "run_figure", "run_window_sweep"]


#: figure number -> (program, metric)
FIGURES: Dict[int, Tuple[str, str]] = {
    7: ("P", "latency"),
    8: ("P", "accuracy"),
    9: ("P_prime", "latency"),
    10: ("P_prime", "accuracy"),
}


@dataclass(frozen=True)
class SweepRecord:
    """One row of a window-size sweep: every configuration's metrics."""

    program: str
    window_size: int
    latency_ms: Mapping[str, float]
    accuracy: Mapping[str, float]
    duplication_ratio: float


@dataclass(frozen=True)
class FigureSeries:
    """The data behind one of the paper's figures."""

    figure: int
    program: str
    metric: str  # "latency" or "accuracy"
    window_sizes: Tuple[int, ...]
    series: Mapping[str, Tuple[float, ...]]  # label -> values per window size

    def value(self, label: str, window_size: int) -> float:
        index = self.window_sizes.index(window_size)
        return self.series[label][index]

    def labels(self) -> List[str]:
        return list(self.series)


def run_window_sweep(
    config: ExperimentConfig,
    suite: Optional[ReasonerSuite] = None,
) -> List[SweepRecord]:
    """Sweep window sizes for one program, evaluating every configuration."""
    from repro.experiments.runner import evaluate_window  # local import to avoid cycles

    active_suite = suite or build_reasoner_suite(
        config.program,
        random_partition_counts=config.random_partition_counts,
        resolution=config.resolution,
        seed=config.seed,
    )
    records: List[SweepRecord] = []
    for window_size in config.window_sizes:
        latency_accumulator: Dict[str, float] = {}
        accuracy_accumulator: Dict[str, float] = {}
        duplication = 0.0
        for repetition in range(config.repetitions):
            stream_config = SyntheticStreamConfig(
                window_size=window_size,
                input_predicates=INPUT_PREDICATES,
                scheme=config.scheme,
                seed=config.seed + repetition * 7919 + window_size,
            )
            window = generate_window(stream_config)
            evaluation: WindowEvaluation = evaluate_window(active_suite, window)
            for label, value in evaluation.latency_ms.items():
                latency_accumulator[label] = latency_accumulator.get(label, 0.0) + value
            for label, value in evaluation.accuracy.items():
                accuracy_accumulator[label] = accuracy_accumulator.get(label, 0.0) + value
            duplication += evaluation.duplication_ratio
        repetitions = float(config.repetitions)
        records.append(
            SweepRecord(
                program=config.program,
                window_size=window_size,
                latency_ms={label: value / repetitions for label, value in latency_accumulator.items()},
                accuracy={label: value / repetitions for label, value in accuracy_accumulator.items()},
                duplication_ratio=duplication / repetitions,
            )
        )
    return records


def run_figure(
    figure: int,
    window_sizes: Optional[Sequence[int]] = None,
    seed: int = 2017,
    repetitions: int = 1,
    records: Optional[Sequence[SweepRecord]] = None,
) -> FigureSeries:
    """Regenerate the data of one of the paper's figures (7, 8, 9 or 10).

    ``records`` may carry a pre-computed sweep (so that latency and accuracy
    figures of the same program reuse a single run).
    """
    if figure not in FIGURES:
        raise ValueError(f"unknown figure {figure}; the paper has figures {sorted(FIGURES)}")
    program, metric = FIGURES[figure]
    if records is None:
        config = ExperimentConfig(
            program=program,
            window_sizes=effective_window_sizes(window_sizes),
            seed=seed,
            repetitions=repetitions,
        )
        records = run_window_sweep(config)
    relevant = [record for record in records if record.program == program]
    if not relevant:
        raise ValueError(f"no sweep records for program {program!r}")

    window_axis = tuple(record.window_size for record in relevant)
    labels: List[str] = sorted({label for record in relevant for label in record.latency_ms})
    if metric == "accuracy":
        labels = [label for label in labels if label != "R"]  # the paper omits R from accuracy plots
    series: Dict[str, Tuple[float, ...]] = {}
    for label in labels:
        if metric == "latency":
            series[label] = tuple(record.latency_ms[label] for record in relevant)
        else:
            series[label] = tuple(record.accuracy[label] for record in relevant)
    return FigureSeries(
        figure=figure,
        program=program,
        metric=metric,
        window_sizes=window_axis,
        series=series,
    )
