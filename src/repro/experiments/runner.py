"""Building and evaluating the reasoner configurations compared in the paper.

The evaluation compares, for each window size:

* ``R``        -- the unpartitioned reasoner over the whole window,
* ``PR_Dep``   -- the parallel reasoner with dependency-based partitioning,
* ``PR_Ran_k`` -- the parallel reasoner with random partitioning into
  ``k`` = 2..5 chunks.

:func:`build_reasoner_suite` assembles all of them for a program;
:func:`evaluate_window` runs one window through every configuration and
returns latency and accuracy records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.asp.syntax.program import Program
from repro.core.accuracy import mean_accuracy
from repro.core.decomposition import DecompositionResult, decompose
from repro.core.input_dependency import build_input_dependency_graph
from repro.core.partitioner import DependencyPartitioner, RandomPartitioner
from repro.programs.traffic import EVENT_PREDICATES, INPUT_PREDICATES, traffic_program, traffic_program_prime
from repro.streaming.triples import Triple
from repro.streamrule.backends import ExecutionBackend, ExecutionMode, backend_for_mode
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.reasoner import Reasoner

__all__ = ["ReasonerSuite", "WindowEvaluation", "build_reasoner_suite", "evaluate_window", "program_by_name"]


def program_by_name(name: str) -> Program:
    """Resolve 'P' / 'P_prime' to the corresponding traffic program."""
    if name == "P":
        return traffic_program()
    if name == "P_prime":
        return traffic_program_prime()
    raise ValueError(f"unknown program {name!r} (expected 'P' or 'P_prime')")


@dataclass
class ReasonerSuite:
    """All reasoner configurations compared for one program.

    A suite built on a worker-owning backend (process pool, loopback
    sockets) holds one backend per parallel reasoner; close the suite (or
    use it as a context manager) to release them.
    """

    program: Program
    baseline: Reasoner
    dependency: ParallelReasoner
    random: Dict[int, ParallelReasoner]
    decomposition: DecompositionResult

    @property
    def labels(self) -> List[str]:
        return ["R", "PR_Dep"] + [f"PR_Ran_k{k}" for k in sorted(self.random)]

    def close(self) -> None:
        """Shut down the parallel reasoners' worker pools (if any)."""
        self.dependency.close()
        for parallel_reasoner in self.random.values():
            parallel_reasoner.close()

    def __enter__(self) -> "ReasonerSuite":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_reasoner_suite(
    program: Union[str, Program],
    input_predicates: Sequence[str] = INPUT_PREDICATES,
    output_predicates: Sequence[str] = EVENT_PREDICATES,
    random_partition_counts: Sequence[int] = (2, 3, 4, 5),
    resolution: float = 1.0,
    seed: int = 2017,
    mode: Optional[ExecutionMode] = None,
    backend_factory: Optional[Callable[[], ExecutionBackend]] = None,
) -> ReasonerSuite:
    """Create R, PR_Dep and PR_Ran_k reasoners for ``program``.

    Each parallel reasoner gets its own backend from ``backend_factory``
    (default: the ideally-parallel inline backend); the legacy ``mode``
    argument is still accepted and mapped to the equivalent backend.
    """
    resolved = program_by_name(program) if isinstance(program, str) else program
    reasoner = Reasoner(resolved, input_predicates=input_predicates, output_predicates=output_predicates)

    def make_backend() -> ExecutionBackend:
        if backend_factory is not None:
            return backend_factory()
        return backend_for_mode(mode or ExecutionMode.SIMULATED_PARALLEL)

    dependency_graph = build_input_dependency_graph(resolved, input_predicates)
    decomposition = decompose(dependency_graph, resolution=resolution)
    dependency_reasoner = ParallelReasoner(
        reasoner, DependencyPartitioner(decomposition.plan), backend=make_backend()
    )

    random_reasoners = {
        k: ParallelReasoner(reasoner, RandomPartitioner(k, seed=seed + k), backend=make_backend())
        for k in random_partition_counts
    }
    return ReasonerSuite(
        program=resolved,
        baseline=reasoner,
        dependency=dependency_reasoner,
        random=random_reasoners,
        decomposition=decomposition,
    )


@dataclass(frozen=True)
class WindowEvaluation:
    """Latency (ms) and accuracy of every configuration for one window."""

    window_size: int
    latency_ms: Mapping[str, float]
    accuracy: Mapping[str, float]
    duplication_ratio: float

    def latency_of(self, label: str) -> float:
        return self.latency_ms[label]

    def accuracy_of(self, label: str) -> float:
        return self.accuracy[label]


def evaluate_window(suite: ReasonerSuite, window: Sequence[Union[Triple, object]]) -> WindowEvaluation:
    """Run one window through every configuration of ``suite``.

    The unpartitioned reasoner ``R`` provides the reference answers; the
    accuracy of every partitioned configuration is measured against them
    with the paper's non-monotonic accuracy metric.
    """
    reference = suite.baseline.reason(window)
    latency: Dict[str, float] = {"R": reference.metrics.latency_milliseconds}
    accuracy: Dict[str, float] = {"R": 1.0}

    dependency_result = suite.dependency.session.evaluate_window(window)
    latency["PR_Dep"] = dependency_result.metrics.latency_milliseconds
    accuracy["PR_Dep"] = mean_accuracy(dependency_result.answers, reference.answers)
    duplication_ratio = dependency_result.metrics.duplication_ratio

    for k, parallel_reasoner in sorted(suite.random.items()):
        label = f"PR_Ran_k{k}"
        result = parallel_reasoner.session.evaluate_window(window)
        latency[label] = result.metrics.latency_milliseconds
        accuracy[label] = mean_accuracy(result.answers, reference.answers)

    return WindowEvaluation(
        window_size=len(window),
        latency_ms=latency,
        accuracy=accuracy,
        duplication_ratio=duplication_ratio,
    )
