"""Experiment drivers regenerating the paper's figures plus ablations."""

from repro.experiments.config import DEFAULT_WINDOW_SIZES, PAPER_WINDOW_SIZES, ExperimentConfig
from repro.experiments.figures import (
    FigureSeries,
    SweepRecord,
    run_figure,
    run_window_sweep,
)
from repro.experiments.reporting import records_to_csv, render_accuracy_table, render_latency_table
from repro.experiments.runner import ReasonerSuite, build_reasoner_suite, evaluate_window

__all__ = [
    "DEFAULT_WINDOW_SIZES",
    "ExperimentConfig",
    "FigureSeries",
    "PAPER_WINDOW_SIZES",
    "ReasonerSuite",
    "SweepRecord",
    "build_reasoner_suite",
    "evaluate_window",
    "records_to_csv",
    "render_accuracy_table",
    "render_latency_table",
    "run_figure",
    "run_window_sweep",
]
