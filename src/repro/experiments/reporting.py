"""Rendering sweep results as text tables and CSV.

The paper presents its results as line charts; the benchmark harness prints
the same series as plain-text tables (one row per window size, one column
per reasoner configuration) and can emit CSV for plotting.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

from repro.experiments.figures import FigureSeries, SweepRecord

__all__ = ["records_to_csv", "render_accuracy_table", "render_figure", "render_latency_table"]


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.rjust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def render_latency_table(records: Sequence[SweepRecord], title: Optional[str] = None) -> str:
    """Latency (ms) per window size and configuration."""
    if not records:
        return "(no records)"
    labels = sorted(records[0].latency_ms)
    headers = ["window"] + labels
    rows = [
        [str(record.window_size)] + [f"{record.latency_ms[label]:.1f}" for label in labels]
        for record in records
    ]
    table = _render_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def render_accuracy_table(records: Sequence[SweepRecord], title: Optional[str] = None) -> str:
    """Accuracy per window size and configuration."""
    if not records:
        return "(no records)"
    labels = [label for label in sorted(records[0].accuracy) if label != "R"]
    headers = ["window"] + labels
    rows = [
        [str(record.window_size)] + [f"{record.accuracy[label]:.3f}" for label in labels]
        for record in records
    ]
    table = _render_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def render_figure(series: FigureSeries) -> str:
    """Render one figure's series as a table (window size per row)."""
    labels = series.labels()
    headers = ["window"] + labels
    rows = []
    for index, window_size in enumerate(series.window_sizes):
        cells = [str(window_size)]
        for label in labels:
            value = series.series[label][index]
            cells.append(f"{value:.1f}" if series.metric == "latency" else f"{value:.3f}")
        rows.append(cells)
    title = f"Figure {series.figure}: {series.metric} (program {series.program})"
    return f"{title}\n{_render_table(headers, rows)}"


def records_to_csv(records: Sequence[SweepRecord]) -> str:
    """Serialise sweep records as CSV (one row per window size and metric)."""
    buffer = io.StringIO()
    if not records:
        return ""
    labels = sorted(records[0].latency_ms)
    buffer.write("program,window_size,metric," + ",".join(labels) + "\n")
    for record in records:
        buffer.write(
            f"{record.program},{record.window_size},latency_ms,"
            + ",".join(f"{record.latency_ms[label]:.3f}" for label in labels)
            + "\n"
        )
        buffer.write(
            f"{record.program},{record.window_size},accuracy,"
            + ",".join(f"{record.accuracy.get(label, 1.0):.4f}" for label in labels)
            + "\n"
        )
    return buffer.getvalue()
