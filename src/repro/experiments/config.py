"""Experiment configuration.

The paper sweeps tuple-based windows of 5,000 to 40,000 items on an 8-core
2.13 GHz machine with Clingo's C++ grounder.  This reproduction's substrate
is a pure-Python grounder, so the *default* sweep uses windows scaled down
by a factor of ten (500..4,000) to keep a full benchmark run in the order of
a minute; the latency/accuracy *shapes* are unchanged because both grounders
scale near-linearly in the window size for these programs.  Set the
environment variable ``REPRO_PAPER_SCALE=1`` (or pass
``window_sizes=PAPER_WINDOW_SIZES``) to run the paper's original sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["DEFAULT_WINDOW_SIZES", "PAPER_WINDOW_SIZES", "ExperimentConfig"]

#: The window sizes of the paper's evaluation (items per window).
PAPER_WINDOW_SIZES: Tuple[int, ...] = (5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000)

#: Scaled-down defaults for routine runs of the benchmark harness.
DEFAULT_WINDOW_SIZES: Tuple[int, ...] = (500, 1000, 1500, 2000, 2500, 3000, 3500, 4000)

#: Random-partitioning fan-outs compared in the paper (PR_Ran_k2..k5).
RANDOM_PARTITION_COUNTS: Tuple[int, ...] = (2, 3, 4, 5)


def paper_scale_enabled() -> bool:
    """True when the environment requests the paper's full window sizes."""
    return os.environ.get("REPRO_PAPER_SCALE", "").strip() in ("1", "true", "yes", "on")


def effective_window_sizes(requested: Optional[Sequence[int]] = None) -> Tuple[int, ...]:
    """Resolve the window sizes to sweep."""
    if requested is not None:
        return tuple(int(size) for size in requested)
    if paper_scale_enabled():
        return PAPER_WINDOW_SIZES
    return DEFAULT_WINDOW_SIZES


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one latency/accuracy sweep."""

    program: str = "P"  # "P" or "P_prime"
    window_sizes: Tuple[int, ...] = DEFAULT_WINDOW_SIZES
    random_partition_counts: Tuple[int, ...] = RANDOM_PARTITION_COUNTS
    seed: int = 2017
    scheme: str = "traffic"
    resolution: float = 1.0
    repetitions: int = 1

    def __post_init__(self) -> None:
        if self.program not in ("P", "P_prime"):
            raise ValueError("program must be 'P' or 'P_prime'")
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if not self.window_sizes:
            raise ValueError("at least one window size is required")
