"""Pluggable execution backends: *where* partition work items run.

The paper's partition/combine protocol is transport-agnostic: a partition
evaluation consumes a pickled fact batch and produces a
:class:`~repro.streamrule.reasoner.ReasonerResult`.  An
:class:`ExecutionBackend` encapsulates one transport behind a tiny protocol
-- ``start(reasoner)`` / ``submit(WorkItem) -> Future[ReasonerResult]`` /
``close()`` plus capability flags -- so the session/pipeline layers never
branch on an execution mode again:

* :class:`InlineBackend` -- evaluate in the calling thread.  With
  ``simulated=True`` (default) latency is *modelled* as the slowest
  partition (the paper's ideally-parallel deployment); with
  ``simulated=False`` latencies sum (the pessimistic serial bound).
* :class:`ThreadPoolBackend` -- a persistent thread pool; useful when the
  solver releases the GIL or for I/O-bound format processing.
* :class:`ProcessPoolBackend` -- true multi-core execution on persistent
  pinned worker processes (one single-worker executor per slot); the
  placement strategy chooses the slot, so worker-local grounding caches
  keep seeing the same track.
* :class:`LoopbackSocketBackend` -- pickles every ``WorkItem`` /
  ``ReasonerResult`` over a real local socket pair to a peer holding its own
  unpickled copy of the reasoner.  Functionally it proves the
  partition/combine protocol survives a wire byte-for-byte, and it is the
  backend the fault-injection tests drop connections on.
* :class:`TcpBackend` -- the multi-machine transport: dispatches to remote
  worker daemons (``python -m repro.streamrule.worker``) over the versioned
  wire protocol of :mod:`repro.streamrule.net`, through a
  :class:`~repro.streamrule.fleet.WorkerFleet` that spreads placement slots
  over the worker endpoints, reroutes the slots of a dead worker to the
  survivors, and ships steady-state sliding windows as fact *deltas*
  instead of full fact sets.  See ``docs/deployment.md`` for running a
  fleet.

Lifecycle
---------
``start`` is idempotent per bound reasoner and implicitly invoked by the
session before the first window; ``close`` releases every executor and
socket and is safe to call repeatedly (a later ``start`` rebuilds the
resources).  Every resource-owning backend also registers a
:func:`weakref.finalize` backstop, so a backend (or a ``ParallelReasoner``)
abandoned without ``close()`` no longer leaks executors until interpreter
exit.
"""

from __future__ import annotations

import abc
import enum
import os
import pickle
import socket
import ssl
import threading
import weakref
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.streamrule.errors import BackendConnectionError, BackendError
from repro.streamrule.fleet import EndpointLike, FleetRegistry, WorkerEndpoint, WorkerFleet
from repro.streamrule.net import (
    FrameKind,
    RemoteFailure,
    WireStats,
    encode_reasoner_payload,
    recv_frame,
    send_frame,
)
from repro.streamrule.placement import PinnedPlacement, PlacementStrategy
from repro.streamrule.reasoner import (
    Reasoner,
    ReasonerResult,
    initialize_worker_reasoner,
    ping_worker,
    reason_item_task,
)
from repro.streamrule.shm import DEFAULT_RING_CAPACITY, ShmSlot, ShmSlotStats
from repro.streamrule.work import WorkItem

__all__ = [
    "BackendConnectionError",
    "BackendError",
    "ExecutionBackend",
    "ExecutionMode",
    "InlineBackend",
    "LoopbackSocketBackend",
    "ProcessPoolBackend",
    "SharedMemoryBackend",
    "TcpBackend",
    "ThreadPoolBackend",
    "backend_for_mode",
]


class ExecutionMode(enum.Enum):
    """Deprecated mode switch of the pre-backend API.

    Each member maps to an :class:`ExecutionBackend` via
    :func:`backend_for_mode`; new code should construct the backend
    directly.
    """

    SIMULATED_PARALLEL = "simulated_parallel"
    THREADS = "threads"
    PROCESSES = "processes"
    SERIAL = "serial"


# --------------------------------------------------------------------------- #
# The protocol
# --------------------------------------------------------------------------- #
class ExecutionBackend(abc.ABC):
    """Transport-agnostic executor of :class:`WorkItem` evaluations.

    Capability flags (class attributes, overridable per instance):

    ``supports_delta``
        Whether dispatch preserves per-track continuity, i.e. consecutive
        items of one track reach the same cache state in order -- the
        precondition for delta (incremental) grounding.
    ``is_remote``
        Whether items cross a process/wire boundary (payloads are pickled
        and the session should be ready to fall back inline on connection
        loss).
    ``uses_placement``
        Whether the backend has pinned worker slots and consults its
        :attr:`placement` strategy to route items to them; configuring a
        placement on a backend without slots is rejected by the session.
    ``concurrent``
        Whether partitions run (actually or notionally) at the same time;
        decides if per-window latency aggregates as ``max`` or as ``sum``
        over partitions.
    ``measures_wall_clock``
        Whether reported window latency is the measured wall-clock of the
        evaluation phase (real pools) rather than the modelled aggregate
        (inline evaluation).
    ``pipelined``
        Whether :meth:`submit` is genuinely non-blocking -- the returned
        future makes progress while the caller does something else, so
        dispatching several windows ahead of the gather point buys real
        concurrency.  The session uses this to pick its default
        ``max_inflight``: pipelined backends default to dispatch-ahead
        ingestion, non-pipelined ones (inline evaluation, whose ``submit``
        *is* the evaluation) stay synchronous.
    """

    name: str = "abstract"
    supports_delta: bool = True
    is_remote: bool = False
    uses_placement: bool = False
    concurrent: bool = True
    measures_wall_clock: bool = False
    pipelined: bool = False

    def __init__(self, placement: Optional[PlacementStrategy] = None):
        self.placement: PlacementStrategy = placement or PinnedPlacement()
        self._reasoner: Optional[Reasoner] = None
        self._depth_lock = threading.Lock()
        self._inflight_items = 0
        self._inflight_high_water = 0

    # -- lifecycle ------------------------------------------------------- #
    @property
    def started(self) -> bool:
        return self._reasoner is not None

    @property
    def reasoner(self) -> Optional[Reasoner]:
        """The reasoner this backend is currently bound to."""
        return self._reasoner

    def start(self, reasoner: Reasoner) -> None:
        """Bind to ``reasoner`` and allocate execution resources.

        Idempotent while bound to the same reasoner instance; binding a
        different reasoner closes and rebuilds the resources (workers hold
        pickled copies of the reasoner, so they must match it).
        """
        if self._reasoner is reasoner:
            return
        if self._reasoner is not None:
            self.close()
        self._start(reasoner)
        self._reasoner = reasoner

    def close(self) -> None:
        """Release all execution resources (idempotent; ``start`` reopens)."""
        if self._reasoner is None:
            return
        try:
            self._close()
        finally:
            self._reasoner = None

    def _start(self, reasoner: Reasoner) -> None:
        """Allocate backend resources (hook; default: none)."""

    def _close(self) -> None:
        """Release backend resources (hook; default: none)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch -------------------------------------------------------- #
    def submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        """Schedule ``item`` for evaluation and return its future result.

        The call itself never blocks on the *evaluation* (for pipelined
        backends it only enqueues; for the inline backend the future is
        already resolved) and keeps the submitted-but-unfinished count that
        :meth:`queue_depth` reports -- observability into how far the
        backend has fallen behind (the session's backpressure itself is
        enforced by its own ``max_inflight`` window bound, not by this
        counter).
        """
        future = self._submit(item)
        with self._depth_lock:
            self._inflight_items += 1
            self._inflight_high_water = max(self._inflight_high_water, self._inflight_items)
        future.add_done_callback(self._note_done)
        return future

    def _note_done(self, _future: "Future[ReasonerResult]") -> None:
        with self._depth_lock:
            self._inflight_items -= 1

    def queue_depth(self) -> int:
        """Work items submitted but not yet finished (0 while idle/closed).

        A lock-free read: the counter is a plain int mutated under
        ``_depth_lock`` on the submit/done side, and a bare load of an int
        attribute is atomic in CPython.  The depth is an instantaneous
        observation that is stale the moment it returns anyway -- taking the
        lock here bought no extra consistency, only contention between the
        observers (the adaptive in-flight controller reads this once per
        gathered window, the metrics endpoint on every scrape) and the
        dispatch hot path.
        """
        return self._inflight_items

    @property
    def queue_high_water(self) -> int:
        """Most items ever simultaneously in flight on this backend."""
        with self._depth_lock:
            return self._inflight_high_water

    def transport_statistics(self) -> Dict[str, float]:
        """Transport-level traffic counters, uniformly named.

        In-process backends have no transport and return ``{}``; the TCP
        backend answers with its :meth:`TcpBackend.wire_statistics` and the
        shared-memory backend with its
        :meth:`SharedMemoryBackend.shm_statistics`.  The uniform spelling is
        what the query server's metrics endpoint exports, whatever backend
        it happens to run on.
        """
        return {}

    @abc.abstractmethod
    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        """Transport hook: schedule ``item`` and return its future."""

    def _require_started(self) -> Reasoner:
        if self._reasoner is None:
            raise BackendError(f"backend {self.name!r} is not started; call start(reasoner) first")
        return self._reasoner


# --------------------------------------------------------------------------- #
# In-process backends
# --------------------------------------------------------------------------- #
class InlineBackend(ExecutionBackend):
    """Evaluate every item synchronously in the calling thread.

    ``simulated=True`` models an ideally parallel deployment: answers are
    exact and only the latency aggregation (slowest partition) reflects the
    notional concurrency -- the paper's reporting mode.  ``simulated=False``
    is the plain serial bound (latencies sum), useful for ablations.
    """

    name = "inline"

    def __init__(self, placement: Optional[PlacementStrategy] = None, simulated: bool = True):
        super().__init__(placement)
        self.simulated = simulated
        self.concurrent = simulated

    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        reasoner = self._require_started()
        future: "Future[ReasonerResult]" = Future()
        try:
            future.set_result(reasoner.reason_item(item))
        except BaseException as error:  # noqa: BLE001 - the future carries it
            future.set_exception(error)
        return future


class ThreadPoolBackend(ExecutionBackend):
    """A persistent thread pool sharing the bound reasoner (and its cache)."""

    name = "threads"
    measures_wall_clock = True
    pipelined = True

    def __init__(self, max_workers: Optional[int] = None, placement: Optional[PlacementStrategy] = None):
        super().__init__(placement)
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _start(self, reasoner: Reasoner) -> None:
        workers = self.max_workers or (os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="streamrule-worker")
        self._finalizer = weakref.finalize(self, _shutdown_executors, [self._pool])

    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        reasoner = self._require_started()
        assert self._pool is not None
        return self._pool.submit(reasoner.reason_item, item)

    def _close(self) -> None:
        finalizer, self._finalizer, self._pool = self._finalizer, None, None
        if finalizer is not None:
            finalizer()


# --------------------------------------------------------------------------- #
# Process-pool backend
# --------------------------------------------------------------------------- #
class ProcessPoolBackend(ExecutionBackend):
    """Persistent pinned worker processes (true multi-core execution).

    One single-worker :class:`ProcessPoolExecutor` per slot makes placement
    deterministic: submitting to slot ``s`` always runs in slot ``s``'s
    process, so that worker's grounding cache sees every window of the
    tracks placed there.  Workers are initialized exactly once with the
    pickled reasoner; per-item dispatch ships only the thinned
    :class:`WorkItem`.
    """

    name = "processes"
    is_remote = True
    uses_placement = True
    measures_wall_clock = True
    pipelined = True

    def __init__(self, max_workers: Optional[int] = None, placement: Optional[PlacementStrategy] = None):
        super().__init__(placement)
        self.max_workers = max_workers
        self._pools: Optional[List[ProcessPoolExecutor]] = None
        self._finalizer: Optional[weakref.finalize] = None

    @property
    def pools(self) -> Optional[List[ProcessPoolExecutor]]:
        """The live per-slot executors (``None`` while closed)."""
        return self._pools

    def _start(self, reasoner: Reasoner) -> None:
        workers = self.max_workers or os.cpu_count() or 1
        payload = pickle.dumps(reasoner)
        pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=initialize_worker_reasoner,
                initargs=(payload,),
            )
            for _ in range(workers)
        ]
        # Executors fork their worker lazily on the first submit; ping every
        # slot so all spawns + reasoner unpickling happen here (backend
        # start) rather than inside the first window's measured evaluation.
        for ping in [pool.submit(ping_worker) for pool in pools]:
            ping.result()
        self._pools = pools
        self._finalizer = weakref.finalize(self, _shutdown_executors, list(pools))

    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        self._require_started()
        assert self._pools is not None
        slot = self.placement.slot(item, len(self._pools))
        return self._pools[slot].submit(reason_item_task, item.thinned())

    def _close(self) -> None:
        finalizer, self._finalizer, self._pools = self._finalizer, None, None
        if finalizer is not None:
            finalizer()


def _shutdown_executors(executors) -> None:
    """Finalizer backstop: shut down abandoned executors.

    Module-level (and referencing only the executor list, never the backend)
    so :func:`weakref.finalize` can fire once the backend is garbage
    collected or the interpreter exits.
    """
    for executor in executors:
        executor.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# Loopback-socket backend
# --------------------------------------------------------------------------- #
def _serve_loopback_worker(connection: socket.socket, payload: bytes) -> None:
    """Peer loop: unpickle the reasoner once, then serve framed work items.

    Uses the shared frame grammar of :mod:`repro.streamrule.net` (``WORK``
    in, ``RESULT`` out) but skips the TCP handshake: both ends of the
    socket pair live in this process, so there is no version skew to
    negotiate.
    """
    reasoner: Reasoner = pickle.loads(payload)
    try:
        while True:
            try:
                kind, frame = recv_frame(connection)
            except (EOFError, OSError, BackendError):
                break
            if kind is not FrameKind.WORK:
                break
            item: WorkItem = pickle.loads(frame)
            try:
                response: object = reasoner.reason_item(item)
            except BaseException as error:  # noqa: BLE001 - shipped back to the caller
                response = RemoteFailure(error)
            try:
                payload_out = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as error:  # noqa: BLE001 - pickling raises Type/Attribute errors too
                # Never let an unpicklable response kill the slot: report it
                # as a wrapped failure so the caller sees the real problem
                # instead of a dead connection.
                payload_out = pickle.dumps(
                    RemoteFailure(BackendError(f"unpicklable worker response ({error!r}): {response!r}")),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            try:
                send_frame(connection, FrameKind.RESULT, payload_out)
            except (OSError, BrokenPipeError):
                break
    finally:
        try:
            connection.close()
        except OSError:
            pass


class _LoopbackSlot:
    """One pinned loopback peer: socket pair, server thread, serializing dispatcher."""

    def __init__(self, index: int, payload: bytes):
        self.client, server = socket.socketpair()
        self.thread = threading.Thread(
            target=_serve_loopback_worker,
            args=(server, payload),
            name=f"loopback-worker-{index}",
            daemon=True,
        )
        self.thread.start()
        # A single-thread dispatcher serializes the request/response pairs on
        # this slot's socket, preserving per-track ordering (and with it the
        # delta-grounding continuity of the pinned tracks).
        self.dispatcher = ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"loopback-dispatch-{index}")

    def close(self) -> None:
        try:
            self.client.close()
        except OSError:
            pass
        self.dispatcher.shutdown(wait=True)
        self.thread.join(timeout=5.0)


def _close_loopback_slots(slots) -> None:
    """Finalizer backstop mirroring :func:`_shutdown_executors`."""
    for slot in slots:
        slot.close()


class LoopbackSocketBackend(ExecutionBackend):
    """Evaluate items on peers behind a real local socket pair.

    Every slot holds its *own* reasoner, reconstructed by unpickling the
    bound reasoner's bytes -- exactly what a remote shard would do -- and
    every dispatch round-trips ``pickle(WorkItem)`` / ``pickle(ReasonerResult)``
    through the kernel's socket layer.  The peers run as daemon threads, so
    there is no cross-machine speed-up to be had here; the backend exists to
    prove (and continuously test) that the partition/combine protocol
    survives a wire, and to exercise connection-loss handling
    (:meth:`drop_connection` + the session's inline fallback).
    """

    name = "loopback"
    is_remote = True
    uses_placement = True
    measures_wall_clock = True
    pipelined = True

    def __init__(self, max_workers: Optional[int] = None, placement: Optional[PlacementStrategy] = None):
        super().__init__(placement)
        self.max_workers = max_workers
        self._slots: Optional[List[_LoopbackSlot]] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _start(self, reasoner: Reasoner) -> None:
        workers = self.max_workers or os.cpu_count() or 1
        payload = pickle.dumps(reasoner)
        self._slots = [_LoopbackSlot(index, payload) for index in range(workers)]
        self._finalizer = weakref.finalize(self, _close_loopback_slots, list(self._slots))

    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        self._require_started()
        assert self._slots is not None
        slot = self._slots[self.placement.slot(item, len(self._slots))]
        return slot.dispatcher.submit(self._roundtrip, slot, item.thinned())

    @staticmethod
    def _roundtrip(slot: _LoopbackSlot, item: WorkItem) -> ReasonerResult:
        try:
            send_frame(slot.client, FrameKind.WORK, pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
            _, frame = recv_frame(slot.client)
        except (OSError, EOFError) as error:
            raise BackendConnectionError(f"loopback worker connection lost: {error!r}") from error
        response = pickle.loads(frame)
        if isinstance(response, RemoteFailure):
            raise response.rebuild()
        return response

    def drop_connection(self, slot: int = 0) -> None:
        """Fault injection: sever one slot's socket (tests the inline fallback)."""
        self._require_started()
        assert self._slots is not None
        try:
            self._slots[slot].client.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._slots[slot].client.close()

    def _close(self) -> None:
        finalizer, self._finalizer, self._slots = self._finalizer, None, None
        if finalizer is not None:
            finalizer()


# --------------------------------------------------------------------------- #
# TCP backend: remote worker fleet
# --------------------------------------------------------------------------- #
def _close_tcp_resources(dispatchers, fleet) -> None:
    """Finalizer backstop mirroring :func:`_shutdown_executors`."""
    for dispatcher in dispatchers:
        dispatcher.shutdown(wait=True)
    fleet.close()


class TcpBackend(ExecutionBackend):
    """Dispatch work items to remote worker daemons over TCP.

    The multi-machine transport of the execution layer: every endpoint is a
    ``python -m repro.streamrule.worker`` daemon, reached over the
    length-prefixed, versioned wire protocol of
    :mod:`repro.streamrule.net` (see ``docs/wire-protocol.md``).  ``start``
    pickles the bound reasoner once and ships it to every worker during the
    handshake; per-item dispatch then ships either a thinned
    :class:`WorkItem` or -- when the ``delta_shipping`` capability was
    negotiated and the window overlaps its predecessor -- a
    :class:`~repro.streamrule.net.FactDelta` frame carrying only the slide.

    Slot routing and fault tolerance live in the
    :class:`~repro.streamrule.fleet.WorkerFleet`: the placement strategy
    picks a slot, the fleet maps slots onto endpoints, reroutes the slots of
    a dead worker to the survivors (retrying the in-flight item there), and
    raises :class:`BackendConnectionError` once no worker survives -- at
    which point the session evaluates inline and counts a fallback.  A
    single-thread dispatcher per slot preserves per-track ordering, exactly
    like the process-pool and loopback backends.

    Parameters
    ----------
    endpoints:
        Worker addresses (``"host:port"`` strings or
        :class:`~repro.streamrule.fleet.WorkerEndpoint` instances).
    slots:
        Placement slots to spread over the fleet (default:
        ``len(endpoints)``).
    placement:
        Slot-choosing strategy (default :class:`PinnedPlacement`).
    delta_shipping:
        Offer shard-side fact-delta shipping in the handshake.
    symbol_ids:
        Offer interned-id fact shipping in the handshake: facts travel as
        packed u32 id arrays against per-connection synced symbol tables
        instead of pickled atoms.
    heartbeat_interval:
        Seconds between background heartbeats; ``None`` disables the
        heartbeat thread (liveness is then discovered on submit).
    connect_attempts / reconnect_attempts / base_delay / max_delay:
        Bounded-exponential-backoff budgets for the initial connect and for
        mid-stream reconnects (see
        :func:`~repro.streamrule.net.connect_with_backoff`).
    ssl_context / server_hostname / auth_token / codec:
        Security surface, threaded through to the fleet's
        :class:`~repro.streamrule.net.WorkerClient` connections: TLS
        wrapping, the shared-token ``AUTH`` response, and the
        pickle-vs-restricted wire dialect (see
        ``docs/deployment-security.md``).
    registry:
        Push rediscovery: ``True`` starts a
        :class:`~repro.streamrule.fleet.FleetRegistry` on an ephemeral
        localhost port (``backend.registry.address`` tells workers where
        to ``--announce``); a ``"host:port"`` string or address pair binds
        it there.  Dead endpoints are also re-probed on every heartbeat,
        so the registry is an optimization (instant rejoin), not a
        requirement.
    """

    name = "tcp"
    is_remote = True
    uses_placement = True
    measures_wall_clock = True
    pipelined = True

    def __init__(
        self,
        endpoints: Sequence[EndpointLike],
        *,
        slots: Optional[int] = None,
        placement: Optional[PlacementStrategy] = None,
        delta_shipping: bool = True,
        symbol_ids: bool = True,
        heartbeat_interval: Optional[float] = None,
        connect_attempts: int = 5,
        reconnect_attempts: int = 2,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        connect_timeout: float = 5.0,
        ssl_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
        registry: Union[bool, str, Tuple[str, int]] = False,
    ):
        super().__init__(placement)
        self.endpoints = [WorkerEndpoint.parse(endpoint) for endpoint in endpoints]
        self.slots = slots
        self.delta_shipping = delta_shipping
        self.symbol_ids = symbol_ids
        self.heartbeat_interval = heartbeat_interval
        self.connect_attempts = connect_attempts
        self.reconnect_attempts = reconnect_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.connect_timeout = connect_timeout
        self.ssl_context = ssl_context
        self.server_hostname = server_hostname
        self.auth_token = auth_token
        self.codec = codec
        self._registry_spec = registry
        self._registry: Optional[FleetRegistry] = None
        self._fleet: Optional[WorkerFleet] = None
        self._dispatchers: Optional[List[ThreadPoolExecutor]] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._heartbeat_stop: Optional[threading.Event] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._final_stats: Dict[str, float] = {}

    @property
    def fleet(self) -> Optional[WorkerFleet]:
        """The live fleet coordinator (``None`` while closed)."""
        return self._fleet

    @property
    def registry(self) -> Optional[FleetRegistry]:
        """The live announce listener (``None`` unless started with one)."""
        return self._registry

    def _start(self, reasoner: Reasoner) -> None:
        fleet = WorkerFleet(
            self.endpoints,
            slots=self.slots,
            delta_shipping=self.delta_shipping,
            symbol_ids=self.symbol_ids,
            connect_attempts=self.connect_attempts,
            reconnect_attempts=self.reconnect_attempts,
            base_delay=self.base_delay,
            max_delay=self.max_delay,
            connect_timeout=self.connect_timeout,
            ssl_context=self.ssl_context,
            server_hostname=self.server_hostname,
            auth_token=self.auth_token,
            codec=self.codec,
        )
        fleet.start(encode_reasoner_payload(reasoner, self.codec))
        if self._registry_spec:
            if self._registry_spec is True:
                registry_host, registry_port = "127.0.0.1", 0
            else:
                bind = WorkerEndpoint.parse(self._registry_spec)
                registry_host, registry_port = bind.host, bind.port
            self._registry = FleetRegistry(fleet, registry_host, registry_port)
        dispatchers = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"tcp-dispatch-{slot}")
            for slot in range(fleet.slot_count)
        ]
        self._fleet = fleet
        self._dispatchers = dispatchers
        self._finalizer = weakref.finalize(self, _close_tcp_resources, list(dispatchers), fleet)
        if self.heartbeat_interval is not None:
            self._heartbeat_stop = threading.Event()
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(fleet, self._heartbeat_stop, self.heartbeat_interval),
                name="tcp-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    @staticmethod
    def _heartbeat_loop(fleet: WorkerFleet, stop: threading.Event, interval: float) -> None:
        while not stop.wait(interval):
            try:
                fleet.ping()
                # Pull rediscovery: probe every dead endpoint once per
                # beat, so a worker restarted on the same address rejoins
                # (and gets its canonical slots back) within one interval
                # even without an announce registry.
                fleet.readopt_dead()
            except BackendError:
                # Liveness probing must never die: whatever a probe hit
                # (the fleet handles connection losses itself), keep the
                # remaining endpoints monitored.
                continue

    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        self._require_started()
        assert self._fleet is not None and self._dispatchers is not None
        slot = self.placement.slot(item, self._fleet.slot_count)
        return self._dispatchers[slot].submit(self._fleet.roundtrip, slot, item)

    def pending_items(self) -> Dict[str, int]:
        """Wire-level queue depth per endpoint (see :meth:`WorkerFleet.pending_items`)."""
        if self._fleet is None:
            return {}
        return self._fleet.pending_items()

    def transport_statistics(self) -> Dict[str, float]:
        """The fleet's wire counters (the uniform transport spelling)."""
        return self.wire_statistics()

    def wire_statistics(self) -> Dict[str, float]:
        """Fleet traffic counters: frames, payload bytes, reroutes, liveness.

        After ``close`` this keeps answering with the final snapshot of the
        last fleet, so benchmarks can report traffic once the session is
        torn down.
        """
        if self._fleet is None:
            return dict(self._final_stats)
        stats: WireStats = self._fleet.wire_statistics()
        return {
            "items_full": float(stats.items_full),
            "items_delta": float(stats.items_delta),
            "bytes_full": float(stats.bytes_full),
            "bytes_delta": float(stats.bytes_delta),
            "symbol_frames": float(stats.symbol_frames),
            "bytes_symbols": float(stats.bytes_symbols),
            "bytes_out": float(stats.bytes_out),
            "bytes_in": float(stats.bytes_in),
            "pings": float(stats.pings),
            "reroutes": float(self._fleet.reroutes),
            "readoptions": float(self._fleet.readoptions),
            "adoptions": float(self._fleet.adoptions),
            "retirements": float(self._fleet.retirements),
            "alive_workers": float(len(self._fleet.alive_endpoints)),
        }

    def _close(self) -> None:
        registry, self._registry = self._registry, None
        if registry is not None:
            registry.close()
        stop, self._heartbeat_stop = self._heartbeat_stop, None
        thread, self._heartbeat_thread = self._heartbeat_thread, None
        if stop is not None:
            stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
        self._final_stats = self.wire_statistics()
        finalizer, self._finalizer = self._finalizer, None
        self._dispatchers = None
        self._fleet = None
        if finalizer is not None:
            finalizer()


# --------------------------------------------------------------------------- #
# Shared-memory backend: same-host processes, zero-pickle dispatch
# --------------------------------------------------------------------------- #
class SharedMemoryBackend(ExecutionBackend):
    """Dispatch to pinned same-host worker processes over shared memory.

    The zero-copy sibling of :class:`ProcessPoolBackend`: workers are still
    separate (``spawn``-started) processes evaluating thinned
    :class:`WorkItem`\\ s, but dispatch crosses the process boundary through
    a pair of shared-memory rings per slot instead of a pickled-object pipe
    (see :mod:`repro.streamrule.shm`).  Facts travel as packed u32 symbol
    ids against per-direction synced
    :class:`~repro.asp.syntax.symbols.SymbolTable` replicas -- in steady
    state a window costs ``4 bytes x |window|`` written straight into
    ``/dev/shm``, with no pickling of atoms in either direction.

    Same capability surface as the other remote backends: one single-thread
    dispatcher per slot preserves per-track ordering (so delta grounding
    keeps working), the placement strategy routes items to slots, and a
    dead worker raises :class:`BackendConnectionError` at the caller -- the
    session answers with its inline fallback.  :meth:`drop_worker` is the
    fault-injection hook the crash tests (and the example) use.
    """

    name = "shared-memory"
    is_remote = True
    uses_placement = True
    measures_wall_clock = True
    pipelined = True

    def __init__(
        self,
        max_workers: Optional[int] = None,
        placement: Optional[PlacementStrategy] = None,
        *,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ):
        super().__init__(placement)
        self.max_workers = max_workers
        self.ring_capacity = ring_capacity
        self._slots: Optional[List[ShmSlot]] = None
        self._dispatchers: Optional[List[ThreadPoolExecutor]] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._final_stats: Dict[str, float] = {}

    @property
    def slots(self) -> Optional[List[ShmSlot]]:
        """The live worker slots (``None`` while closed)."""
        return self._slots

    def _start(self, reasoner: Reasoner) -> None:
        workers = self.max_workers or os.cpu_count() or 1
        payload = pickle.dumps(reasoner)
        slots = [ShmSlot(index, payload, capacity=self.ring_capacity) for index in range(workers)]
        self._slots = slots
        self._dispatchers = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"shm-dispatch-{slot.index}")
            for slot in slots
        ]
        self._finalizer = weakref.finalize(
            self, _close_shm_resources, list(self._dispatchers), list(slots)
        )

    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        self._require_started()
        assert self._slots is not None and self._dispatchers is not None
        slot = self.placement.slot(item, len(self._slots))
        return self._dispatchers[slot].submit(self._slots[slot].roundtrip, item.thinned())

    def drop_worker(self, slot: int = 0) -> None:
        """Fault injection: hard-kill one slot's worker process."""
        self._require_started()
        assert self._slots is not None
        self._slots[slot].kill()

    def transport_statistics(self) -> Dict[str, float]:
        """The ring counters (the uniform transport spelling)."""
        return self.shm_statistics()

    def shm_statistics(self) -> Dict[str, float]:
        """Ring traffic counters summed over the slots.

        After ``close`` this keeps answering with the final snapshot, so
        benchmarks can report traffic once the session is torn down.
        """
        if self._slots is None:
            return dict(self._final_stats)
        totals = ShmSlotStats()
        for slot in self._slots:
            totals = totals.merged_with(slot.stats)
        return {
            "items": float(totals.items),
            "symbols_out": float(totals.symbols_out),
            "symbols_in": float(totals.symbols_in),
            "bytes_out": float(totals.bytes_out),
            "bytes_in": float(totals.bytes_in),
            "oversizes": float(totals.oversizes),
            "alive_workers": float(sum(1 for slot in self._slots if slot.process.is_alive())),
        }

    def _close(self) -> None:
        self._final_stats = self.shm_statistics()
        finalizer, self._finalizer = self._finalizer, None
        self._dispatchers = None
        self._slots = None
        if finalizer is not None:
            finalizer()


def _close_shm_resources(dispatchers, slots) -> None:
    """Finalizer backstop mirroring :func:`_close_tcp_resources`."""
    for dispatcher in dispatchers:
        dispatcher.shutdown(wait=True)
    for slot in slots:
        slot.close()


# --------------------------------------------------------------------------- #
# Mode mapping (legacy)
# --------------------------------------------------------------------------- #
def backend_for_mode(mode: ExecutionMode, max_workers: Optional[int] = None) -> ExecutionBackend:
    """Map a deprecated :class:`ExecutionMode` to its backend equivalent."""
    if mode is ExecutionMode.SERIAL:
        return InlineBackend(simulated=False)
    if mode is ExecutionMode.SIMULATED_PARALLEL:
        return InlineBackend(simulated=True)
    if mode is ExecutionMode.THREADS:
        return ThreadPoolBackend(max_workers=max_workers)
    if mode is ExecutionMode.PROCESSES:
        return ProcessPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown execution mode: {mode!r}")
