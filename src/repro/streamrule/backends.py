"""Pluggable execution backends: *where* partition work items run.

The paper's partition/combine protocol is transport-agnostic: a partition
evaluation consumes a pickled fact batch and produces a
:class:`~repro.streamrule.reasoner.ReasonerResult`.  An
:class:`ExecutionBackend` encapsulates one transport behind a tiny protocol
-- ``start(reasoner)`` / ``submit(WorkItem) -> Future[ReasonerResult]`` /
``close()`` plus capability flags -- so the session/pipeline layers never
branch on an execution mode again:

* :class:`InlineBackend` -- evaluate in the calling thread.  With
  ``simulated=True`` (default) latency is *modelled* as the slowest
  partition (the paper's ideally-parallel deployment); with
  ``simulated=False`` latencies sum (the pessimistic serial bound).
* :class:`ThreadPoolBackend` -- a persistent thread pool; useful when the
  solver releases the GIL or for I/O-bound format processing.
* :class:`ProcessPoolBackend` -- true multi-core execution on persistent
  pinned worker processes (one single-worker executor per slot); the
  placement strategy chooses the slot, so worker-local grounding caches
  keep seeing the same track.
* :class:`LoopbackSocketBackend` -- pickles every ``WorkItem`` /
  ``ReasonerResult`` over a real local socket pair to a peer holding its own
  unpickled copy of the reasoner.  Functionally it proves the
  partition/combine protocol survives a wire byte-for-byte -- the first
  brick of multi-machine sharding (ROADMAP) -- and it is the backend the
  fault-injection tests drop connections on.

Lifecycle
---------
``start`` is idempotent per bound reasoner and implicitly invoked by the
session before the first window; ``close`` releases every executor and
socket and is safe to call repeatedly (a later ``start`` rebuilds the
resources).  Every resource-owning backend also registers a
:func:`weakref.finalize` backstop, so a backend (or a ``ParallelReasoner``)
abandoned without ``close()`` no longer leaks executors until interpreter
exit.
"""

from __future__ import annotations

import abc
import enum
import os
import pickle
import socket
import struct
import threading
import weakref
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional

from repro.streamrule.placement import PinnedPlacement, PlacementStrategy
from repro.streamrule.reasoner import (
    Reasoner,
    ReasonerResult,
    initialize_worker_reasoner,
    ping_worker,
    reason_item_task,
)
from repro.streamrule.work import WorkItem

__all__ = [
    "BackendConnectionError",
    "BackendError",
    "ExecutionBackend",
    "ExecutionMode",
    "InlineBackend",
    "LoopbackSocketBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "backend_for_mode",
]


class BackendError(RuntimeError):
    """A backend failed to evaluate a work item."""


class BackendConnectionError(BackendError, ConnectionError):
    """The transport to a worker was lost (triggers inline fallback)."""


class ExecutionMode(enum.Enum):
    """Deprecated mode switch of the pre-backend API.

    Each member maps to an :class:`ExecutionBackend` via
    :func:`backend_for_mode`; new code should construct the backend
    directly.
    """

    SIMULATED_PARALLEL = "simulated_parallel"
    THREADS = "threads"
    PROCESSES = "processes"
    SERIAL = "serial"


# --------------------------------------------------------------------------- #
# The protocol
# --------------------------------------------------------------------------- #
class ExecutionBackend(abc.ABC):
    """Transport-agnostic executor of :class:`WorkItem` evaluations.

    Capability flags (class attributes, overridable per instance):

    ``supports_delta``
        Whether dispatch preserves per-track continuity, i.e. consecutive
        items of one track reach the same cache state in order -- the
        precondition for delta (incremental) grounding.
    ``is_remote``
        Whether items cross a process/wire boundary (payloads are pickled
        and the session should be ready to fall back inline on connection
        loss).
    ``uses_placement``
        Whether the backend has pinned worker slots and consults its
        :attr:`placement` strategy to route items to them; configuring a
        placement on a backend without slots is rejected by the session.
    ``concurrent``
        Whether partitions run (actually or notionally) at the same time;
        decides if per-window latency aggregates as ``max`` or as ``sum``
        over partitions.
    ``measures_wall_clock``
        Whether reported window latency is the measured wall-clock of the
        evaluation phase (real pools) rather than the modelled aggregate
        (inline evaluation).
    """

    name: str = "abstract"
    supports_delta: bool = True
    is_remote: bool = False
    uses_placement: bool = False
    concurrent: bool = True
    measures_wall_clock: bool = False

    def __init__(self, placement: Optional[PlacementStrategy] = None):
        self.placement: PlacementStrategy = placement or PinnedPlacement()
        self._reasoner: Optional[Reasoner] = None

    # -- lifecycle ------------------------------------------------------- #
    @property
    def started(self) -> bool:
        return self._reasoner is not None

    @property
    def reasoner(self) -> Optional[Reasoner]:
        """The reasoner this backend is currently bound to."""
        return self._reasoner

    def start(self, reasoner: Reasoner) -> None:
        """Bind to ``reasoner`` and allocate execution resources.

        Idempotent while bound to the same reasoner instance; binding a
        different reasoner closes and rebuilds the resources (workers hold
        pickled copies of the reasoner, so they must match it).
        """
        if self._reasoner is reasoner:
            return
        if self._reasoner is not None:
            self.close()
        self._start(reasoner)
        self._reasoner = reasoner

    def close(self) -> None:
        """Release all execution resources (idempotent; ``start`` reopens)."""
        if self._reasoner is None:
            return
        try:
            self._close()
        finally:
            self._reasoner = None

    def _start(self, reasoner: Reasoner) -> None:
        """Allocate backend resources (hook; default: none)."""

    def _close(self) -> None:
        """Release backend resources (hook; default: none)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch -------------------------------------------------------- #
    @abc.abstractmethod
    def submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        """Schedule ``item`` for evaluation and return its future result."""

    def _require_started(self) -> Reasoner:
        if self._reasoner is None:
            raise BackendError(f"backend {self.name!r} is not started; call start(reasoner) first")
        return self._reasoner


# --------------------------------------------------------------------------- #
# In-process backends
# --------------------------------------------------------------------------- #
class InlineBackend(ExecutionBackend):
    """Evaluate every item synchronously in the calling thread.

    ``simulated=True`` models an ideally parallel deployment: answers are
    exact and only the latency aggregation (slowest partition) reflects the
    notional concurrency -- the paper's reporting mode.  ``simulated=False``
    is the plain serial bound (latencies sum), useful for ablations.
    """

    name = "inline"

    def __init__(self, placement: Optional[PlacementStrategy] = None, simulated: bool = True):
        super().__init__(placement)
        self.simulated = simulated
        self.concurrent = simulated

    def submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        reasoner = self._require_started()
        future: "Future[ReasonerResult]" = Future()
        try:
            future.set_result(reasoner.reason_item(item))
        except BaseException as error:  # noqa: BLE001 - the future carries it
            future.set_exception(error)
        return future


class ThreadPoolBackend(ExecutionBackend):
    """A persistent thread pool sharing the bound reasoner (and its cache)."""

    name = "threads"
    measures_wall_clock = True

    def __init__(self, max_workers: Optional[int] = None, placement: Optional[PlacementStrategy] = None):
        super().__init__(placement)
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _start(self, reasoner: Reasoner) -> None:
        workers = self.max_workers or (os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="streamrule-worker")
        self._finalizer = weakref.finalize(self, _shutdown_executors, [self._pool])

    def submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        reasoner = self._require_started()
        assert self._pool is not None
        return self._pool.submit(reasoner.reason_item, item)

    def _close(self) -> None:
        finalizer, self._finalizer, self._pool = self._finalizer, None, None
        if finalizer is not None:
            finalizer()


# --------------------------------------------------------------------------- #
# Process-pool backend
# --------------------------------------------------------------------------- #
class ProcessPoolBackend(ExecutionBackend):
    """Persistent pinned worker processes (true multi-core execution).

    One single-worker :class:`ProcessPoolExecutor` per slot makes placement
    deterministic: submitting to slot ``s`` always runs in slot ``s``'s
    process, so that worker's grounding cache sees every window of the
    tracks placed there.  Workers are initialized exactly once with the
    pickled reasoner; per-item dispatch ships only the thinned
    :class:`WorkItem`.
    """

    name = "processes"
    is_remote = True
    uses_placement = True
    measures_wall_clock = True

    def __init__(self, max_workers: Optional[int] = None, placement: Optional[PlacementStrategy] = None):
        super().__init__(placement)
        self.max_workers = max_workers
        self._pools: Optional[List[ProcessPoolExecutor]] = None
        self._finalizer: Optional[weakref.finalize] = None

    @property
    def pools(self) -> Optional[List[ProcessPoolExecutor]]:
        """The live per-slot executors (``None`` while closed)."""
        return self._pools

    def _start(self, reasoner: Reasoner) -> None:
        workers = self.max_workers or os.cpu_count() or 1
        payload = pickle.dumps(reasoner)
        pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=initialize_worker_reasoner,
                initargs=(payload,),
            )
            for _ in range(workers)
        ]
        # Executors fork their worker lazily on the first submit; ping every
        # slot so all spawns + reasoner unpickling happen here (backend
        # start) rather than inside the first window's measured evaluation.
        for ping in [pool.submit(ping_worker) for pool in pools]:
            ping.result()
        self._pools = pools
        self._finalizer = weakref.finalize(self, _shutdown_executors, list(pools))

    def submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        self._require_started()
        assert self._pools is not None
        slot = self.placement.slot(item, len(self._pools))
        return self._pools[slot].submit(reason_item_task, item.thinned())

    def _close(self) -> None:
        finalizer, self._finalizer, self._pools = self._finalizer, None, None
        if finalizer is not None:
            finalizer()


def _shutdown_executors(executors) -> None:
    """Finalizer backstop: shut down abandoned executors.

    Module-level (and referencing only the executor list, never the backend)
    so :func:`weakref.finalize` can fire once the backend is garbage
    collected or the interpreter exits.
    """
    for executor in executors:
        executor.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# Loopback-socket backend
# --------------------------------------------------------------------------- #
_FRAME_HEADER = struct.Struct(">I")


def _send_frame(connection: socket.socket, payload: bytes) -> None:
    connection.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_exactly(connection: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = connection.recv(count)
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_frame(connection: socket.socket) -> bytes:
    (length,) = _FRAME_HEADER.unpack(_recv_exactly(connection, _FRAME_HEADER.size))
    return _recv_exactly(connection, length)


@dataclass
class _RemoteFailure:
    """Wire wrapper distinguishing a worker-side exception from a result."""

    error: BaseException

    def rebuild(self) -> BaseException:
        return self.error


def _serve_loopback_worker(connection: socket.socket, payload: bytes) -> None:
    """Peer loop: unpickle the reasoner once, then serve framed work items."""
    reasoner: Reasoner = pickle.loads(payload)
    try:
        while True:
            try:
                frame = _recv_frame(connection)
            except (EOFError, OSError):
                break
            item: WorkItem = pickle.loads(frame)
            try:
                response: object = reasoner.reason_item(item)
            except BaseException as error:  # noqa: BLE001 - shipped back to the caller
                response = _RemoteFailure(error)
            try:
                payload_out = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as error:  # noqa: BLE001 - pickling raises Type/Attribute errors too
                # Never let an unpicklable response kill the slot: report it
                # as a wrapped failure so the caller sees the real problem
                # instead of a dead connection.
                payload_out = pickle.dumps(
                    _RemoteFailure(BackendError(f"unpicklable worker response ({error!r}): {response!r}")),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            _send_frame(connection, payload_out)
    finally:
        connection.close()


class _LoopbackSlot:
    """One pinned loopback peer: socket pair, server thread, serializing dispatcher."""

    def __init__(self, index: int, payload: bytes):
        self.client, server = socket.socketpair()
        self.thread = threading.Thread(
            target=_serve_loopback_worker,
            args=(server, payload),
            name=f"loopback-worker-{index}",
            daemon=True,
        )
        self.thread.start()
        # A single-thread dispatcher serializes the request/response pairs on
        # this slot's socket, preserving per-track ordering (and with it the
        # delta-grounding continuity of the pinned tracks).
        self.dispatcher = ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"loopback-dispatch-{index}")

    def close(self) -> None:
        try:
            self.client.close()
        except OSError:
            pass
        self.dispatcher.shutdown(wait=True)
        self.thread.join(timeout=5.0)


def _close_loopback_slots(slots) -> None:
    """Finalizer backstop mirroring :func:`_shutdown_executors`."""
    for slot in slots:
        slot.close()


class LoopbackSocketBackend(ExecutionBackend):
    """Evaluate items on peers behind a real local socket pair.

    Every slot holds its *own* reasoner, reconstructed by unpickling the
    bound reasoner's bytes -- exactly what a remote shard would do -- and
    every dispatch round-trips ``pickle(WorkItem)`` / ``pickle(ReasonerResult)``
    through the kernel's socket layer.  The peers run as daemon threads, so
    there is no cross-machine speed-up to be had here; the backend exists to
    prove (and continuously test) that the partition/combine protocol
    survives a wire, and to exercise connection-loss handling
    (:meth:`drop_connection` + the session's inline fallback).
    """

    name = "loopback"
    is_remote = True
    uses_placement = True
    measures_wall_clock = True

    def __init__(self, max_workers: Optional[int] = None, placement: Optional[PlacementStrategy] = None):
        super().__init__(placement)
        self.max_workers = max_workers
        self._slots: Optional[List[_LoopbackSlot]] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _start(self, reasoner: Reasoner) -> None:
        workers = self.max_workers or os.cpu_count() or 1
        payload = pickle.dumps(reasoner)
        self._slots = [_LoopbackSlot(index, payload) for index in range(workers)]
        self._finalizer = weakref.finalize(self, _close_loopback_slots, list(self._slots))

    def submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        self._require_started()
        assert self._slots is not None
        slot = self._slots[self.placement.slot(item, len(self._slots))]
        return slot.dispatcher.submit(self._roundtrip, slot, item.thinned())

    @staticmethod
    def _roundtrip(slot: _LoopbackSlot, item: WorkItem) -> ReasonerResult:
        try:
            _send_frame(slot.client, pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
            frame = _recv_frame(slot.client)
        except (OSError, EOFError) as error:
            raise BackendConnectionError(f"loopback worker connection lost: {error!r}") from error
        response = pickle.loads(frame)
        if isinstance(response, _RemoteFailure):
            raise response.rebuild()
        return response

    def drop_connection(self, slot: int = 0) -> None:
        """Fault injection: sever one slot's socket (tests the inline fallback)."""
        self._require_started()
        assert self._slots is not None
        try:
            self._slots[slot].client.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._slots[slot].client.close()

    def _close(self) -> None:
        finalizer, self._finalizer, self._slots = self._finalizer, None, None
        if finalizer is not None:
            finalizer()


# --------------------------------------------------------------------------- #
# Mode mapping (legacy)
# --------------------------------------------------------------------------- #
def backend_for_mode(mode: ExecutionMode, max_workers: Optional[int] = None) -> ExecutionBackend:
    """Map a deprecated :class:`ExecutionMode` to its backend equivalent."""
    if mode is ExecutionMode.SERIAL:
        return InlineBackend(simulated=False)
    if mode is ExecutionMode.SIMULATED_PARALLEL:
        return InlineBackend(simulated=True)
    if mode is ExecutionMode.THREADS:
        return ThreadPoolBackend(max_workers=max_workers)
    if mode is ExecutionMode.PROCESSES:
        return ProcessPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown execution mode: {mode!r}")
