"""Zero-copy same-host dispatch over shared-memory rings.

The :class:`~repro.streamrule.backends.SharedMemoryBackend` transport: one
pinned worker *process* per slot, reached not through a pickled-object pipe
(the :class:`~concurrent.futures.ProcessPoolExecutor` path) but through a
pair of one-writer/one-reader byte rings in a single
:class:`multiprocessing.shared_memory.SharedMemory` segment -- the request
ring carries coordinator -> worker messages, the response ring the reverse.

What crosses the rings is the interned-id representation of the work, not
pickled atoms.  Each direction has exactly one writer, and that writer owns
the master :class:`~repro.asp.syntax.symbols.SymbolTable` of the direction:

* the coordinator interns the window's facts into the slot's *request*
  table and prepends a ``K_SYMBOLS`` message (a pickled
  :class:`~repro.asp.syntax.symbols.SymbolDelta` of the unsynced tail)
  whenever new symbols appeared; the ``K_WORK`` message itself is a fixed
  12-byte header plus a packed u32 id array -- no pickling of facts;
* the worker resolves the ids against its replica, evaluates, and answers
  symmetrically: answer atoms are interned into the *response* table, the
  unsynced tail travels as ``K_SYMBOLS`` ahead of the ``K_RESULT`` message,
  and the answer sets themselves are packed id arrays.

In steady state (a sliding window whose facts were all seen before) a
window therefore crosses the process boundary as ``4 bytes x |window|``
written straight into shared memory: no pickling, no kernel socket copy.

Layout and flow control
-----------------------
Each ring is ``[tail u64][head u64][data...]`` -- absolute monotonic byte
counters (reduced mod capacity only for addressing), so ``tail - head`` is
the bytes in flight and the full/empty cases never alias.  Writes and reads
are guarded by a per-ring cross-process lock; blocking waits use a
data/space :class:`multiprocessing.Event` pair per ring with a short poll
timeout, so each wait also notices a dead peer (:meth:`Process.is_alive`)
and raises :class:`~repro.streamrule.errors.BackendConnectionError` -- the
signal the session answers with its inline fallback.

A message larger than the ring cannot ever fit; it takes the *oversize*
side door: a two-byte ``K_OVERSIZE`` marker goes through the ring (keeping
message order defined by ring order) and the body through a duplex
:func:`multiprocessing.Pipe` -- the pickling fallback that keeps rare huge
windows correct without sizing every ring for the worst case.

Workers are started with the ``spawn`` context deliberately: a spawned
child has a *different* ``PYTHONHASHSEED``, which is exactly the condition
under which shipping cached hashes (see :meth:`Atom.__reduce__
<repro.asp.syntax.atoms.Atom>`) or relying on hash-ordered iteration would
break -- the backend doubles as a continuous regression test for both.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Optional, Tuple

from repro.asp.syntax.symbols import SymbolTable, pack_ids, unpack_ids
from repro.streamrule.errors import BackendConnectionError, ProtocolError
from repro.streamrule.net import RemoteFailure
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.work import WorkItem

__all__ = [
    "DEFAULT_RING_CAPACITY",
    "ShmRing",
    "ShmSlot",
    "ShmSlotStats",
]

#: Default per-ring data capacity in bytes.  A steady-state window costs
#: ``4 x |window|`` bytes, so 256 KiB rings absorb ~64k-fact windows
#: without touching the oversize path.
DEFAULT_RING_CAPACITY = 256 * 1024

# Message kinds (first payload byte).  Both directions share the numbering.
K_SYMBOLS = 1  #: pickled SymbolDelta extending the direction's table
K_WORK = 2  #: coordinator -> worker: work header + packed fact ids
K_RESULT = 3  #: worker -> coordinator: pickled (answer id blobs, metrics)
K_FAILURE = 4  #: worker -> coordinator: pickled RemoteFailure
K_SHUTDOWN = 5  #: coordinator -> worker: clean exit request
K_OVERSIZE = 6  #: marker: real kind in byte 2, body follows on the pipe

_CURSORS = struct.Struct("<QQ")  # (tail, head) absolute monotonic counters
_LENGTH = struct.Struct("<I")  # per-frame length prefix
#: ``K_WORK`` body header: track (i64), epoch (i64), incremental flag
#: (-1 unset / 0 false / 1 true); the packed id array follows.
_WORK_HEADER = struct.Struct("<qqb")

#: How long each blocking ring wait sleeps before re-checking the ring and
#: the peer's liveness.
_POLL_INTERVAL = 0.05


class ShmRing:
    """A one-writer, one-reader byte ring inside a shared-memory segment.

    The ring occupies ``CURSOR_BYTES + capacity`` bytes at ``offset``:
    a ``(tail, head)`` cursor pair followed by the data region.  Cursors
    are absolute byte counts; the writer advances ``tail``, the reader
    ``head``, and both reductions mod ``capacity`` happen only when
    addressing the data region -- frames wrap around the region edge as two
    slices, so no padding rule is needed.  ``lock`` serializes cursor
    updates across the two processes.
    """

    CURSOR_BYTES = _CURSORS.size

    def __init__(self, shm: SharedMemory, offset: int, capacity: int, lock: Any):
        if capacity <= _LENGTH.size:
            raise ValueError("ring capacity must exceed the frame length prefix")
        self._buffer = shm.buf
        self._offset = offset
        self._data = offset + self.CURSOR_BYTES
        self.capacity = capacity
        self._lock = lock

    def fits(self, payload_length: int) -> bool:
        """Whether a payload of this size can *ever* fit in the ring."""
        return _LENGTH.size + payload_length <= self.capacity

    def try_write(self, payload: bytes) -> bool:
        """Append one frame; ``False`` when the ring lacks space right now."""
        needed = _LENGTH.size + len(payload)
        if needed > self.capacity:
            raise ValueError(f"frame of {len(payload)} bytes can never fit a {self.capacity}-byte ring")
        with self._lock:
            tail, head = _CURSORS.unpack_from(self._buffer, self._offset)
            if self.capacity - (tail - head) < needed:
                return False
            self._put(tail, _LENGTH.pack(len(payload)))
            self._put(tail + _LENGTH.size, payload)
            _CURSORS.pack_into(self._buffer, self._offset, tail + needed, head)
        return True

    def try_read(self) -> Optional[bytes]:
        """Pop the oldest frame; ``None`` when the ring is empty."""
        with self._lock:
            tail, head = _CURSORS.unpack_from(self._buffer, self._offset)
            if tail == head:
                return None
            (length,) = _LENGTH.unpack(self._get(head, _LENGTH.size))
            payload = self._get(head + _LENGTH.size, length)
            _CURSORS.pack_into(self._buffer, self._offset, tail, head + _LENGTH.size + length)
        return payload

    # -- raw data-region access (cursor already validated by the caller) -- #
    def _put(self, cursor: int, data: bytes) -> None:
        start = cursor % self.capacity
        end = start + len(data)
        if end <= self.capacity:
            self._buffer[self._data + start : self._data + end] = data
        else:
            split = self.capacity - start
            self._buffer[self._data + start : self._data + self.capacity] = data[:split]
            self._buffer[self._data : self._data + end - self.capacity] = data[split:]

    def _get(self, cursor: int, length: int) -> bytes:
        start = cursor % self.capacity
        end = start + length
        if end <= self.capacity:
            return bytes(self._buffer[self._data + start : self._data + end])
        split = self.capacity - start
        return bytes(self._buffer[self._data + start : self._data + self.capacity]) + bytes(
            self._buffer[self._data : self._data + end - self.capacity]
        )


class _RingChannel:
    """Blocking message send/receive over one ring direction.

    Wraps a :class:`ShmRing` with its data/space event pair, the oversize
    pipe, and a peer-liveness probe.  Messages are ``(kind, body)``; the
    kind travels as the first payload byte.  A body the ring can never hold
    is routed through the pipe behind a ``K_OVERSIZE`` ring marker -- the
    marker goes first so the ring alone defines message order.
    """

    def __init__(
        self,
        ring: ShmRing,
        data_event: Any,
        space_event: Any,
        pipe: Any,
        alive: Callable[[], bool],
        peer: str,
    ):
        self._ring = ring
        self._data_event = data_event
        self._space_event = space_event
        self._pipe = pipe
        self._alive = alive
        self._peer = peer

    def send(self, kind: int, body: bytes = b"") -> None:
        if not self._ring.fits(1 + len(body)):
            self._ring_send(bytes((K_OVERSIZE, kind)))
            self._pipe.send_bytes(body)
            return
        self._ring_send(bytes((kind,)) + body)

    def receive(self) -> Tuple[int, bytes]:
        while True:
            payload = self._ring.try_read()
            if payload is not None:
                self._space_event.set()
                if payload[0] == K_OVERSIZE:
                    return payload[1], self._pipe.recv_bytes()
                return payload[0], payload[1:]
            if not self._alive():
                raise BackendConnectionError(f"shared-memory {self._peer} died mid-conversation")
            self._data_event.wait(_POLL_INTERVAL)
            self._data_event.clear()

    def _ring_send(self, frame: bytes) -> None:
        while not self._ring.try_write(frame):
            if not self._alive():
                raise BackendConnectionError(f"shared-memory {self._peer} died mid-conversation")
            self._space_event.wait(_POLL_INTERVAL)
            self._space_event.clear()
        self._data_event.set()


@dataclass(frozen=True)
class _SlotWiring:
    """Everything a spawned worker needs to attach to its slot.

    Picklable through :class:`multiprocessing.Process` args: the segment
    *name* (the child re-attaches by name), the ring capacity, and the
    context-created locks/events/pipe end, which multiprocessing ships by
    inheritance.
    """

    segment: str
    capacity: int
    request_lock: Any
    response_lock: Any
    request_data: Any
    request_space: Any
    response_data: Any
    response_space: Any
    pipe: Any


def _encode_work(item: WorkItem, ids: Tuple[int, ...]) -> bytes:
    flag = -1 if item.incremental is None else int(bool(item.incremental))
    return _WORK_HEADER.pack(item.track, item.epoch, flag) + pack_ids(ids)


def _decode_work(body: bytes, table: SymbolTable) -> WorkItem:
    track, epoch, flag = _WORK_HEADER.unpack_from(body)
    facts = table.resolve_many(unpack_ids(body[_WORK_HEADER.size :]))
    return WorkItem(facts=facts, track=track, epoch=epoch, incremental=None if flag < 0 else bool(flag))


def _serve_shm_worker(wiring: _SlotWiring, payload: bytes) -> None:
    """Worker-process loop: resolve ids, evaluate, answer in ids.

    Module-level so the ``spawn`` context can pickle the target.  Holds the
    replica of the coordinator's request table and the *master* response
    table (this process is the response ring's only writer).
    """
    # Attaching registers the segment with the resource tracker a second
    # time; the tracker's cache is a set, so the duplicate collapses into
    # the coordinator's own registration and the coordinator's unlink
    # clears it exactly once.  (Until 3.13's ``track=False`` there is no
    # way to attach untracked; unregistering here would instead steal the
    # coordinator's registration.)
    shm = SharedMemory(name=wiring.segment)
    ring_span = ShmRing.CURSOR_BYTES + wiring.capacity
    request = _RingChannel(
        ShmRing(shm, 0, wiring.capacity, wiring.request_lock),
        wiring.request_data,
        wiring.request_space,
        wiring.pipe,
        alive=lambda: True,  # a dying coordinator takes this daemon with it
        peer="coordinator",
    )
    response = _RingChannel(
        ShmRing(shm, ring_span, wiring.capacity, wiring.response_lock),
        wiring.response_data,
        wiring.response_space,
        wiring.pipe,
        alive=lambda: True,
        peer="coordinator",
    )
    reasoner: Reasoner = pickle.loads(payload)
    request_table = SymbolTable()  # replica of the coordinator's master
    response_table = SymbolTable()  # master; the coordinator replicates
    synced = 0
    try:
        while True:
            kind, body = request.receive()
            if kind == K_SHUTDOWN:
                return
            if kind == K_SYMBOLS:
                request_table.apply(pickle.loads(body))
                continue
            if kind != K_WORK:
                return  # protocol violation: die; the coordinator reroutes
            try:
                item = _decode_work(body, request_table)
                result = reasoner.reason_item(item)
                answer_blobs = tuple(
                    pack_ids(tuple(response_table.intern_many(answer))) for answer in result.answers
                )
                sync = response_table.diff_since(synced)
                if sync:
                    response.send(K_SYMBOLS, pickle.dumps(sync, protocol=pickle.HIGHEST_PROTOCOL))
                    synced = sync.stop
                response.send(
                    K_RESULT,
                    pickle.dumps((answer_blobs, result.metrics), protocol=pickle.HIGHEST_PROTOCOL),
                )
            except BaseException as error:  # noqa: BLE001 - shipped back to the caller
                try:
                    failure = pickle.dumps(RemoteFailure(error), protocol=pickle.HIGHEST_PROTOCOL)
                except Exception as pickling_error:  # noqa: BLE001 - unpicklable exceptions too
                    failure = pickle.dumps(
                        RemoteFailure(
                            BackendConnectionError(
                                f"unpicklable worker failure ({pickling_error!r}): {error!r}"
                            )
                        ),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                response.send(K_FAILURE, failure)
    finally:
        shm.close()


@dataclass
class ShmSlotStats:
    """Per-slot traffic counters (ring payload bytes, excluding framing)."""

    items: int = 0  #: work round trips completed
    symbols_out: int = 0  #: request-table sync messages sent
    symbols_in: int = 0  #: response-table sync messages received
    bytes_out: int = 0  #: request-direction message bytes
    bytes_in: int = 0  #: response-direction message bytes
    oversizes: int = 0  #: messages that took the pipe side door

    def merged_with(self, other: "ShmSlotStats") -> "ShmSlotStats":
        return ShmSlotStats(
            items=self.items + other.items,
            symbols_out=self.symbols_out + other.symbols_out,
            symbols_in=self.symbols_in + other.symbols_in,
            bytes_out=self.bytes_out + other.bytes_out,
            bytes_in=self.bytes_in + other.bytes_in,
            oversizes=self.oversizes + other.oversizes,
        )


class ShmSlot:
    """One pinned shared-memory worker: segment, rings, process, tables.

    The coordinator side of a slot.  :meth:`roundtrip` is *not* thread-safe
    -- the backend serializes calls through a single-thread dispatcher per
    slot, which is also what preserves per-track ordering (and with it
    delta-grounding continuity).
    """

    def __init__(
        self,
        index: int,
        payload: bytes,
        *,
        capacity: int = DEFAULT_RING_CAPACITY,
        context: Optional[multiprocessing.context.BaseContext] = None,
    ):
        ctx = context if context is not None else multiprocessing.get_context("spawn")
        ring_span = ShmRing.CURSOR_BYTES + capacity
        self.index = index
        self.stats = ShmSlotStats()
        self._shm = SharedMemory(create=True, size=2 * ring_span)
        self._shm.buf[:2 * ShmRing.CURSOR_BYTES] = bytes(2 * ShmRing.CURSOR_BYTES)  # defensive zeroing
        self._shm.buf[ring_span : ring_span + ShmRing.CURSOR_BYTES] = bytes(ShmRing.CURSOR_BYTES)
        coordinator_pipe, worker_pipe = ctx.Pipe(duplex=True)
        self._pipe = coordinator_pipe
        wiring = _SlotWiring(
            segment=self._shm.name,
            capacity=capacity,
            request_lock=ctx.Lock(),
            response_lock=ctx.Lock(),
            request_data=ctx.Event(),
            request_space=ctx.Event(),
            response_data=ctx.Event(),
            response_space=ctx.Event(),
            pipe=worker_pipe,
        )
        self.process = ctx.Process(
            target=_serve_shm_worker,
            args=(wiring, payload),
            name=f"shm-worker-{index}",
            daemon=True,
        )
        self.process.start()
        worker_pipe.close()  # the child holds its own handle now
        alive = self.process.is_alive
        self._request = _RingChannel(
            ShmRing(self._shm, 0, capacity, wiring.request_lock),
            wiring.request_data,
            wiring.request_space,
            coordinator_pipe,
            alive=alive,
            peer=f"worker {index}",
        )
        self._response = _RingChannel(
            ShmRing(self._shm, ring_span, capacity, wiring.response_lock),
            wiring.response_data,
            wiring.response_space,
            coordinator_pipe,
            alive=alive,
            peer=f"worker {index}",
        )
        self._table = SymbolTable()  # master; the worker replicates
        self._synced = 0
        self._answer_table = SymbolTable()  # replica of the worker's master
        self._closed = False

    # -- dispatch (single dispatcher thread per slot) -------------------- #
    def roundtrip(self, item: WorkItem) -> ReasonerResult:
        """Ship one (already thinned) work item and await its result."""
        if self._closed or not self.process.is_alive():
            raise BackendConnectionError(f"shared-memory worker {self.index} is gone")
        ids = tuple(self._table.intern_many(item.facts))
        sync = self._table.diff_since(self._synced)
        if sync:
            sync_body = pickle.dumps(sync, protocol=pickle.HIGHEST_PROTOCOL)
            self._send(K_SYMBOLS, sync_body)
            self._synced = sync.stop
            self.stats.symbols_out += 1
        self._send(K_WORK, _encode_work(item, ids))
        while True:
            kind, body = self._response.receive()
            self.stats.bytes_in += 1 + len(body)
            if kind == K_SYMBOLS:
                self._answer_table.apply(pickle.loads(body))
                self.stats.symbols_in += 1
                continue
            if kind == K_FAILURE:
                self.stats.items += 1
                raise pickle.loads(body).rebuild()
            if kind != K_RESULT:
                raise ProtocolError(f"unexpected shared-memory message kind {kind}")
            self.stats.items += 1
            answer_blobs, metrics = pickle.loads(body)
            answers = tuple(
                frozenset(self._answer_table.resolve_many(unpack_ids(blob))) for blob in answer_blobs
            )
            return ReasonerResult(answers=answers, metrics=metrics)

    def _send(self, kind: int, body: bytes) -> None:
        if not self._request._ring.fits(1 + len(body)):
            self.stats.oversizes += 1
        self._request.send(kind, body)
        self.stats.bytes_out += 1 + len(body)

    # -- fault injection / lifecycle ------------------------------------- #
    def kill(self) -> None:
        """Fault injection: hard-kill the worker process (tests the fallback)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.process.is_alive():
            try:
                self._request.send(K_SHUTDOWN)
            except (BackendConnectionError, OSError):
                pass
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=5.0)
        try:
            self._pipe.close()
        except OSError:
            pass
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):
            pass


def close_slots(slots) -> None:
    """Finalizer backstop mirroring the other backends' close helpers."""
    for slot in slots:
        slot.close()
