"""Placement strategies: which worker slot evaluates a work item.

Backends with pinned slots (one grounding cache per worker process,
loopback peer, or remote worker) ask a :class:`PlacementStrategy` to map
every :class:`~repro.streamrule.work.WorkItem` to a slot.  Placement
decides cache locality, not correctness: all strategies yield identical
answer sets.  Slots are deliberately *abstract*: on the TCP backend the
:class:`~repro.streamrule.fleet.WorkerFleet` owns the second map from slots
to machines, which is how dead-worker rerouting happens without the
placement layer noticing (see ``docs/architecture.md``).

* :class:`PinnedPlacement` -- ``track % slots``, the PR-2 behaviour: stable
  partition indexes keep landing on the same worker, so its cache sees
  consecutive windows of the same track.
* :class:`ConsistentHashPlacement` -- a consistent-hash ring over the item's
  *fact signature* (the ROADMAP "content-based placement" item): items are
  routed by what they contain rather than by their partition index, so
  workloads whose partition indexes are unstable across windows still reuse
  warmed caches, and changing the slot count only remaps ``~1/slots`` of the
  keys.

Both strategies are deterministic *across interpreters and hash seeds*: they
never touch Python's randomized ``hash`` builtin, so a parent process and a
spawned worker (or a remote peer) always agree on the placement of an item.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
from typing import Dict, List, Tuple

from repro.streamrule.work import WorkItem

__all__ = ["ConsistentHashPlacement", "PinnedPlacement", "PlacementStrategy"]


def _stable_hash(key: str) -> int:
    """A 64-bit hash of ``key`` that is identical in every interpreter."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class PlacementStrategy(abc.ABC):
    """Maps work items to worker slots."""

    @abc.abstractmethod
    def slot(self, item: WorkItem, slots: int) -> int:
        """Return the slot in ``range(slots)`` that should evaluate ``item``."""


class PinnedPlacement(PlacementStrategy):
    """Track-pinned placement: partition track ``i`` runs on slot ``i % slots``."""

    def slot(self, item: WorkItem, slots: int) -> int:
        if slots < 1:
            raise ValueError("placement requires at least one slot")
        return item.track % slots


class ConsistentHashPlacement(PlacementStrategy):
    """Consistent hashing over the item's fact signature.

    Every slot owns ``replicas`` virtual points on a 64-bit ring; an item is
    placed on the slot owning the first ring point at or after the hash of
    its :attr:`~repro.streamrule.work.WorkItem.signature`.  Items with the
    same predicate mix therefore share a slot regardless of their partition
    index, and resizing the pool moves only the keys between the removed and
    surviving points.
    """

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("the number of virtual points per slot must be positive")
        self._replicas = replicas
        self._rings: Dict[int, Tuple[List[int], List[int]]] = {}

    def _ring(self, slots: int) -> Tuple[List[int], List[int]]:
        """The (sorted points, owning slot per point) ring for ``slots`` slots."""
        cached = self._rings.get(slots)
        if cached is None:
            pairs = sorted(
                (_stable_hash(f"slot:{index}:replica:{replica}"), index)
                for index in range(slots)
                for replica in range(self._replicas)
            )
            cached = ([point for point, _ in pairs], [owner for _, owner in pairs])
            self._rings[slots] = cached
        return cached

    def slot(self, item: WorkItem, slots: int) -> int:
        if slots < 1:
            raise ValueError("placement requires at least one slot")
        if slots == 1:
            return 0
        points, owners = self._ring(slots)
        position = bisect.bisect_left(points, _stable_hash(item.signature))
        return owners[position % len(points)]
