"""Latency and accuracy bookkeeping for the reasoners.

The paper measures the *reasoning latency* -- "the time required for the
reasoner PR to process an input window" -- and stresses that it must include
the data transformation overhead, not only the solver time.  The metrics
classes below therefore keep a full breakdown.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = ["IngestionStats", "LatencyBreakdown", "ReasonerMetrics", "TenantStats", "Timer"]

#: How many recent per-window latencies a :class:`TenantStats` retains for
#: its percentile estimates.  Bounded so a long-lived tenant costs O(1)
#: memory; 512 windows is plenty for a stable p95.
TENANT_LATENCY_WINDOW = 512


class Timer:
    """Context manager measuring wall-clock seconds."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.seconds = time.perf_counter() - self._started
            self._started = None


@dataclass
class LatencyBreakdown:
    """Per-stage wall-clock seconds for one window evaluation."""

    transformation_seconds: float = 0.0
    grounding_seconds: float = 0.0
    solving_seconds: float = 0.0
    partitioning_seconds: float = 0.0
    combining_seconds: float = 0.0

    @property
    def reasoning_seconds(self) -> float:
        """Solver-side time (grounding plus solving)."""
        return self.grounding_seconds + self.solving_seconds

    @property
    def total_seconds(self) -> float:
        return (
            self.transformation_seconds
            + self.grounding_seconds
            + self.solving_seconds
            + self.partitioning_seconds
            + self.combining_seconds
        )

    def merged_with(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        """Sum of two breakdowns (used when aggregating sequential stages)."""
        return LatencyBreakdown(
            transformation_seconds=self.transformation_seconds + other.transformation_seconds,
            grounding_seconds=self.grounding_seconds + other.grounding_seconds,
            solving_seconds=self.solving_seconds + other.solving_seconds,
            partitioning_seconds=self.partitioning_seconds + other.partitioning_seconds,
            combining_seconds=self.combining_seconds + other.combining_seconds,
        )


@dataclass
class IngestionStats:
    """Producer-side record of pipelined ingestion (one per session).

    Under pipelined ingestion (``StreamSession(max_inflight > 1)``) a window
    is *dispatched* when its partitions are submitted to the backend and
    *gathered* when its futures are collected and combined.  The counters
    here describe how far the two phases actually drifted apart:

    ``inflight_high_water``
        Most windows ever simultaneously dispatched-but-not-gathered.  Equals
        1 for a synchronous session.
    ``dispatched_ahead``
        Dispatches that happened while at least one earlier window was still
        in flight -- the windows that actually ran ahead of the gather point.
    ``backpressure_stalls``
        Times the producer had to wait for the oldest in-flight window
        because the ``max_inflight`` bound was reached *and* that window was
        not yet finished -- i.e. the backend genuinely fell behind the
        producer (a full queue whose head is already done gathers without
        waiting and is not a stall).
    ``backpressure_wait_seconds``
        Wall-clock the producer spent inside those stalls.

    With adaptive in-flight control (``max_inflight="adaptive"``, see
    :class:`~repro.streamrule.adaptive.AdaptiveInflightController`) three
    more fields mirror the controller after every gather: the current
    ``inflight_target`` and the cumulative ``aimd_increases`` /
    ``aimd_backoffs`` counters.  They stay 0 on fixed-bound sessions.

    With a :class:`~repro.streamrule.autoscale.FleetAutoscaler` attached
    (``StreamSession(autoscaler=...)``) three more fields mirror the
    scaler after every gather: cumulative ``autoscale_ups`` /
    ``autoscale_downs`` and the current ``fleet_size``.  They stay 0 on
    fixed fleets -- and, through :meth:`as_dict`, flow into the Prometheus
    endpoint like every other ingestion counter.
    """

    windows_dispatched: int = 0
    windows_gathered: int = 0
    inflight_high_water: int = 0
    dispatched_ahead: int = 0
    backpressure_stalls: int = 0
    backpressure_wait_seconds: float = 0.0
    inflight_target: int = 0
    aimd_increases: int = 0
    aimd_backoffs: int = 0
    autoscale_ups: int = 0
    autoscale_downs: int = 0
    fleet_size: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "windows_dispatched": float(self.windows_dispatched),
            "windows_gathered": float(self.windows_gathered),
            "inflight_high_water": float(self.inflight_high_water),
            "dispatched_ahead": float(self.dispatched_ahead),
            "backpressure_stalls": float(self.backpressure_stalls),
            "backpressure_wait_seconds": self.backpressure_wait_seconds,
            "inflight_target": float(self.inflight_target),
            "aimd_increases": float(self.aimd_increases),
            "aimd_backoffs": float(self.aimd_backoffs),
            "autoscale_ups": float(self.autoscale_ups),
            "autoscale_downs": float(self.autoscale_downs),
            "fleet_size": float(self.fleet_size),
        }


@dataclass
class TenantStats:
    """Per-tenant serving record of the multi-tenant query server.

    One instance per registered tenant: how many of its lane windows were
    dispatched and completed, how many of those evaluations also served
    other tenants (``windows_shared`` -- the amortization the shared
    grounding tracks buy), the answer sets delivered to its subscription,
    and a bounded reservoir of recent per-window latencies for the p50/p95
    estimates the ops endpoint exports.
    """

    tenant: str = ""
    windows_dispatched: int = 0
    windows_completed: int = 0
    windows_shared: int = 0
    answer_sets: int = 0
    scheduler_boosts: int = 0
    _latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=TENANT_LATENCY_WINDOW), repr=False
    )

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank percentile over the retained latencies (seconds)."""
        if not self._latencies:
            return 0.0
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, max(0, int(round(quantile * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def p50_latency_seconds(self) -> float:
        return self.latency_percentile(0.5)

    @property
    def p95_latency_seconds(self) -> float:
        return self.latency_percentile(0.95)

    def as_dict(self) -> Dict[str, float]:
        return {
            "windows_dispatched": float(self.windows_dispatched),
            "windows_completed": float(self.windows_completed),
            "windows_shared": float(self.windows_shared),
            "answer_sets": float(self.answer_sets),
            "scheduler_boosts": float(self.scheduler_boosts),
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
        }


@dataclass
class ReasonerMetrics:
    """One window's evaluation record.

    ``cache_hits`` / ``cache_misses`` count grounding-cache outcomes: for a
    plain :class:`~repro.streamrule.reasoner.Reasoner` they are 0/1 per
    window; the parallel reasoner sums them over its partitions (including
    worker-process-side caches, whose counts travel back inside the partition
    results).  With delta-grounding enabled a window resolves to exactly one
    of three outcomes: an exact-signature *hit* (``cache_hits``), a *delta
    repair* of the track's cached instantiation (``delta_repairs``, with the
    fact churn in ``repair_size`` and the ground-instance churn in
    ``repair_rules_changed``), or a full (re)grounding (``cache_misses``).  ``evaluation_wall_seconds`` is the measured wall-clock of the
    partition-evaluation phase and ``worker_wall_seconds`` the in-worker
    wall-clock of each *evaluated* partition, populated by the parallel
    reasoner.  Under pipelined ingestion (``StreamSession(max_inflight>1)``,
    the default on pipelined backends) ``evaluation_wall_seconds`` -- and
    with it ``latency_seconds`` on wall-clock-measuring backends -- is the
    window's *dispatch-to-gather* span, which includes the time it sat in
    flight behind its predecessors; compare per-window latencies across
    configurations only at equal ``max_inflight`` (use ``max_inflight=1``
    or ``evaluate_window`` for queue-free numbers; ``worker_wall_seconds``
    is always pure in-worker time).  Note the alignment: ``worker_wall_seconds`` parallels
    ``ParallelResult.partition_results`` (empty partitions are filtered out
    before evaluation), whereas ``partition_sizes`` records the
    partitioner's full layout including empty partitions -- do not zip the
    two lists together.
    """

    window_size: int
    latency_seconds: float
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    partition_sizes: List[int] = field(default_factory=list)
    answer_count: int = 0
    duplication_ratio: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    delta_repairs: int = 0
    repair_size: int = 0
    repair_rules_changed: int = 0
    #: Incremental-solving counters (zero without a ``solver_cache``):
    #: ``assumption_resolves`` counts partitions answered by repairing the
    #: track's persistent solver state and re-solving under assumptions,
    #: ``solver_full_solves`` those solved from scratch (first window of a
    #: track, or a disjunctive fallback).  ``encoding_repairs`` counts
    #: persistent-completion repairs, ``solver_clauses_retained`` /
    #: ``solver_clauses_dropped`` learned and encoding clauses kept across or
    #: removed by the repair, and ``solver_strata_reused`` well-founded
    #: strata served from cache instead of recomputed.
    assumption_resolves: int = 0
    solver_full_solves: int = 0
    encoding_repairs: int = 0
    solver_clauses_retained: int = 0
    solver_clauses_dropped: int = 0
    solver_strata_reused: int = 0
    evaluation_wall_seconds: Optional[float] = None
    worker_wall_seconds: List[float] = field(default_factory=list)

    @property
    def latency_milliseconds(self) -> float:
        """Latency in milliseconds, the unit of the paper's figures."""
        return self.latency_seconds * 1000.0

    @property
    def cache_hit_rate(self) -> float:
        """Grounding-cache hit rate over this window (0.0 when uncached)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "window_size": float(self.window_size),
            "latency_ms": self.latency_milliseconds,
            "transformation_ms": self.breakdown.transformation_seconds * 1000.0,
            "grounding_ms": self.breakdown.grounding_seconds * 1000.0,
            "solving_ms": self.breakdown.solving_seconds * 1000.0,
            "partitioning_ms": self.breakdown.partitioning_seconds * 1000.0,
            "combining_ms": self.breakdown.combining_seconds * 1000.0,
            "answer_count": float(self.answer_count),
            "duplication_ratio": self.duplication_ratio,
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.cache_hit_rate,
            "delta_repairs": float(self.delta_repairs),
            "repair_size": float(self.repair_size),
            "repair_rules_changed": float(self.repair_rules_changed),
            "assumption_resolves": float(self.assumption_resolves),
            "solver_full_solves": float(self.solver_full_solves),
            "encoding_repairs": float(self.encoding_repairs),
            "solver_clauses_retained": float(self.solver_clauses_retained),
            "solver_clauses_dropped": float(self.solver_clauses_dropped),
            "solver_strata_reused": float(self.solver_strata_reused),
            "evaluation_wall_ms": (
                self.evaluation_wall_seconds * 1000.0 if self.evaluation_wall_seconds is not None else 0.0
            ),
        }
