"""The restricted (non-pickle) wire codec for untrusted peers.

The default SRW1 payloads are pickles, and unpickling executes arbitrary
code by design -- fine inside one trust domain, unacceptable across one.
This module is the other dialect: under the ``restricted_codec``
capability every payload after the handshake is JSON plus packed u32 id
arrays, built from the same schema the typed-frame layer already proved
out (``diff_facts`` copy-run deltas, ``symbol_ids`` interning):

* the **reasoner** ships as *text* -- the ASP program rendered by
  :meth:`~repro.asp.syntax.program.Program.to_text` and re-parsed by
  :func:`~repro.asp.syntax.parser.parse_program` on the worker, plus the
  predicate sets and cache flags (:func:`encode_reasoner_spec` /
  :func:`reasoner_from_spec`);
* **facts** travel as structural encodings interned into a
  request-direction :class:`~repro.asp.syntax.symbols.SymbolTable`
  (client masters, worker replicates via ``SYMBOLS`` frames), so work
  frames are base64 id arrays and steady-state deltas are
  ``["copy", start, len]`` / ``["lit", <b64 ids>]`` runs;
* **results** travel as packed ids against a *response-direction* table
  the worker masters and the client replicates -- each ``RESULT`` frame
  carries the table's new tail plus one id blob per answer set -- and a
  whitelisted numeric metrics record;
* **errors** travel as ``{"error": {kind, message}}`` envelopes raised as
  plain :class:`~repro.streamrule.errors.BackendError` at the caller --
  no exception reconstruction, because rebuilding arbitrary exception
  types is pickle by another name.

A restricted peer never calls ``pickle.loads`` on network bytes; anything
it cannot express in this schema is a protocol error, and the handshake
``REJECT``\\ s peers that would need pickle (see
:func:`~repro.streamrule.net.serve_worker_connection`).
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.asp.grounding.grounder import GroundingCache
from repro.asp.solving.incremental import SolverCache
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.symbols import SymbolDelta, SymbolTable, pack_ids, unpack_ids
from repro.asp.syntax.terms import Constant, FunctionTerm, Term, Variable
from repro.streaming.triples import Triple
from repro.streamrule.errors import BackendError, ProtocolError
from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.work import WorkFact, WorkItem

__all__ = [
    "RestrictedResultDecoder",
    "RestrictedServerCodec",
    "RestrictedShipper",
    "decode_fact",
    "encode_fact",
    "encode_reasoner_spec",
    "reasoner_from_spec",
]


def _dumps(value: Any) -> bytes:
    return json.dumps(value, separators=(",", ":")).encode("utf-8")


def _loads(payload: bytes) -> Dict[str, Any]:
    try:
        value = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable restricted-codec payload: {error!r}") from error
    if not isinstance(value, dict):
        raise ProtocolError(f"restricted-codec payload must be a mapping, got {type(value).__name__}")
    return value


def _b64(blob: bytes) -> str:
    return base64.b64encode(blob).decode("ascii")


def _unb64(text: Any) -> bytes:
    if not isinstance(text, str):
        raise ProtocolError(f"expected a base64 string, got {type(text).__name__}")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise ProtocolError(f"invalid base64 id blob: {error!r}") from error


# --------------------------------------------------------------------------- #
# Structural fact / term encodings
# --------------------------------------------------------------------------- #
def _encode_term(term: Term) -> List[Any]:
    if isinstance(term, Constant):
        return ["c", term.value, term.quoted]
    if isinstance(term, FunctionTerm):
        return ["f", term.name, [_encode_term(argument) for argument in term.arguments]]
    if isinstance(term, Variable):
        return ["v", term.name]
    raise ProtocolError(f"term {term!r} has no restricted-codec encoding")


def _decode_term(value: Any) -> Term:
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"malformed term encoding: {value!r}")
    tag = value[0]
    if tag == "c" and len(value) == 3 and isinstance(value[1], (int, str)) and isinstance(value[2], bool):
        return Constant(value[1], value[2])
    if tag == "f" and len(value) == 3 and isinstance(value[1], str) and isinstance(value[2], list):
        return FunctionTerm(value[1], tuple(_decode_term(argument) for argument in value[2]))
    if tag == "v" and len(value) == 2 and isinstance(value[1], str):
        return Variable(value[1])
    raise ProtocolError(f"malformed term encoding: {value!r}")


def encode_fact(fact: WorkFact) -> List[Any]:
    """Structural JSON encoding of one wire fact (:class:`Triple` or :class:`Atom`)."""
    if isinstance(fact, Triple):
        return ["t", fact.subject, fact.predicate, fact.object, fact.timestamp]
    if isinstance(fact, Atom):
        return ["a", fact.predicate, [_encode_term(argument) for argument in fact.arguments]]
    raise ProtocolError(f"fact {fact!r} has no restricted-codec encoding")


def decode_fact(value: Any) -> WorkFact:
    """Rebuild a wire fact from :func:`encode_fact`'s encoding (validating)."""
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"malformed fact encoding: {value!r}")
    tag = value[0]
    if tag == "t" and len(value) == 5:
        _, subject, predicate, obj, timestamp = value
        if (
            isinstance(subject, (int, str))
            and isinstance(predicate, str)
            and isinstance(obj, (int, str))
            and (timestamp is None or isinstance(timestamp, (int, float)))
        ):
            return Triple(subject, predicate, obj, None if timestamp is None else float(timestamp))
    if tag == "a" and len(value) == 3 and isinstance(value[1], str) and isinstance(value[2], list):
        return Atom(value[1], tuple(_decode_term(argument) for argument in value[2]))
    raise ProtocolError(f"malformed fact encoding: {value!r}")


def _encode_symbol_delta(delta: SymbolDelta) -> Dict[str, Any]:
    return {"start": delta.start, "symbols": [encode_fact(symbol) for symbol in delta.symbols]}


def _decode_symbol_delta(fields: Any) -> SymbolDelta:
    if not isinstance(fields, dict) or not isinstance(fields.get("start"), int):
        raise ProtocolError(f"malformed symbol delta: {fields!r}")
    symbols = fields.get("symbols")
    if not isinstance(symbols, list):
        raise ProtocolError(f"malformed symbol delta: {fields!r}")
    return SymbolDelta(start=fields["start"], symbols=tuple(decode_fact(symbol) for symbol in symbols))


# --------------------------------------------------------------------------- #
# Reasoner spec: program as text, never as a pickle
# --------------------------------------------------------------------------- #
def encode_reasoner_spec(reasoner: Reasoner) -> bytes:
    """Serialize a reasoner as a JSON spec the worker rebuilds from text.

    Cache *contents* never travel (exactly like the pickle path, where
    ``__reduce__`` ships empty caches); only the presence flags do, so the
    worker warms its own.  A custom ``format_processor`` cannot be
    expressed -- the worker always builds the default one, matching what
    every production configuration uses.
    """
    return _dumps(
        {
            "program": reasoner.program.to_text(),
            "name": reasoner.program.name,
            "input_predicates": sorted(reasoner.input_predicates),
            "output_predicates": sorted(reasoner.output_predicates),
            "max_models": reasoner.max_models,
            "grounding_cache": reasoner.grounding_cache is not None,
            "solver_cache": reasoner.solver_cache is not None,
        }
    )


def reasoner_from_spec(payload: bytes) -> Reasoner:
    """Rebuild a :class:`Reasoner` from :func:`encode_reasoner_spec` output.

    The program text goes through the real parser, so a malformed or
    hostile "program" fails with a parse error -- it is data, not code.
    """
    spec = _loads(payload)
    text = spec.get("program")
    if not isinstance(text, str):
        raise ProtocolError("reasoner spec is missing its program text")
    for key in ("input_predicates", "output_predicates"):
        names = spec.get(key)
        if not isinstance(names, list) or not all(isinstance(name, str) for name in names):
            raise ProtocolError(f"reasoner spec field {key!r} must be a list of predicate names")
    max_models = spec.get("max_models")
    if max_models is not None and not isinstance(max_models, int):
        raise ProtocolError("reasoner spec field 'max_models' must be an int or null")
    name = spec.get("name")
    program = parse_program(text, name=name if isinstance(name, str) else "program")
    return Reasoner(
        program,
        input_predicates=spec["input_predicates"],
        output_predicates=spec["output_predicates"],
        max_models=max_models,
        grounding_cache=GroundingCache() if spec.get("grounding_cache") else None,
        solver_cache=SolverCache() if spec.get("solver_cache") else None,
    )


# --------------------------------------------------------------------------- #
# Metrics: a whitelisted numeric record, never an object graph
# --------------------------------------------------------------------------- #
_COUNTER_FIELDS = (
    "window_size",
    "answer_count",
    "cache_hits",
    "cache_misses",
    "delta_repairs",
    "repair_size",
    "repair_rules_changed",
    "assumption_resolves",
    "solver_full_solves",
    "encoding_repairs",
    "solver_clauses_retained",
    "solver_clauses_dropped",
    "solver_strata_reused",
)
_BREAKDOWN_FIELDS = (
    "transformation_seconds",
    "grounding_seconds",
    "solving_seconds",
    "partitioning_seconds",
    "combining_seconds",
)


def _encode_metrics(metrics: ReasonerMetrics) -> Dict[str, Any]:
    record: Dict[str, Any] = {name: getattr(metrics, name) for name in _COUNTER_FIELDS}
    record["latency_seconds"] = metrics.latency_seconds
    record["duplication_ratio"] = metrics.duplication_ratio
    record["breakdown"] = {name: getattr(metrics.breakdown, name) for name in _BREAKDOWN_FIELDS}
    record["partition_sizes"] = list(metrics.partition_sizes)
    record["evaluation_wall_seconds"] = metrics.evaluation_wall_seconds
    record["worker_wall_seconds"] = list(metrics.worker_wall_seconds)
    return record


def _number(value: Any, context: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"metrics field {context} must be a number, got {value!r}")
    return float(value)


def _decode_metrics(record: Any) -> ReasonerMetrics:
    if not isinstance(record, dict):
        raise ProtocolError(f"malformed metrics record: {record!r}")
    counters = {name: int(_number(record.get(name, 0), name)) for name in _COUNTER_FIELDS}
    breakdown_record = record.get("breakdown") or {}
    if not isinstance(breakdown_record, dict):
        raise ProtocolError(f"malformed metrics breakdown: {breakdown_record!r}")
    breakdown = LatencyBreakdown(
        **{name: _number(breakdown_record.get(name, 0.0), name) for name in _BREAKDOWN_FIELDS}
    )
    sizes = record.get("partition_sizes", [])
    walls = record.get("worker_wall_seconds", [])
    if not isinstance(sizes, list) or not isinstance(walls, list):
        raise ProtocolError("metrics partition_sizes/worker_wall_seconds must be lists")
    evaluation_wall = record.get("evaluation_wall_seconds")
    return ReasonerMetrics(
        latency_seconds=_number(record.get("latency_seconds", 0.0), "latency_seconds"),
        duplication_ratio=_number(record.get("duplication_ratio", 0.0), "duplication_ratio"),
        breakdown=breakdown,
        partition_sizes=[int(_number(size, "partition_sizes")) for size in sizes],
        evaluation_wall_seconds=(
            None if evaluation_wall is None else _number(evaluation_wall, "evaluation_wall_seconds")
        ),
        worker_wall_seconds=[_number(wall, "worker_wall_seconds") for wall in walls],
        **counters,
    )


# --------------------------------------------------------------------------- #
# Client side: work-frame encoder + result decoder
# --------------------------------------------------------------------------- #
class RestrictedShipper:
    """Restricted-codec sibling of :class:`~repro.streamrule.net.DeltaShipper`.

    Same contract (``encode_frames`` returns the frames to send, the last
    one being the work frame) and the same per-track delta heuristics, but
    every payload is JSON: symbol syncs carry structural fact encodings,
    work frames base64 packed-id arrays, deltas tagged copy/literal runs.
    """

    def __init__(self, *, delta_shipping: bool = True) -> None:
        self._delta_shipping = delta_shipping
        self._table = SymbolTable()
        self._synced = 0
        self._prev_ids: Dict[int, Tuple[int, ...]] = {}

    def encode_frames(self, item: WorkItem) -> List[Tuple[Any, bytes]]:
        from repro.streamrule.net import FrameKind, diff_id_runs

        thin = item.thinned()
        frames: List[Tuple[Any, bytes]] = []
        ids = tuple(self._table.intern_many(item.facts))
        sync = self._table.diff_since(self._synced)
        if sync:
            frames.append((FrameKind.SYMBOLS, _dumps(_encode_symbol_delta(sync))))
            self._synced = sync.stop
        previous = self._prev_ids.get(item.track)
        self._prev_ids[item.track] = ids
        envelope = {"track": item.track, "epoch": item.epoch, "incremental": thin.incremental}
        full_payload = _dumps(dict(envelope, ids=_b64(pack_ids(ids))))
        if self._delta_shipping and previous is not None:
            runs = diff_id_runs(previous, ids)
            if any(not isinstance(run, bytes) for run in runs):
                ops = [
                    ["lit", _b64(run)] if isinstance(run, bytes) else ["copy", run[0], run[1]]
                    for run in runs
                ]
                delta_payload = _dumps(
                    dict(envelope, incremental=item.wants_incremental, ops=ops)
                )
                if len(delta_payload) < len(full_payload):
                    frames.append((FrameKind.DELTA, delta_payload))
                    return frames
        frames.append((FrameKind.WORK, full_payload))
        return frames

    def forget(self, track: Optional[int] = None) -> None:
        if track is None:
            self._prev_ids.clear()
        else:
            self._prev_ids.pop(track, None)


class RestrictedResultDecoder:
    """Client-side replica of the worker's response-direction symbol table."""

    def __init__(self) -> None:
        self._table = SymbolTable()

    def decode(self, payload: bytes, address: Tuple[str, int]) -> ReasonerResult:
        """Decode one restricted ``RESULT`` payload.

        Raises :class:`BackendError` for worker-side evaluation failures
        (the error envelope carries only the kind and message -- nothing is
        executed or reconstructed) and :class:`ProtocolError` on a
        malformed payload, which the caller answers by aborting the
        connection like any other desync.
        """
        record = _loads(payload)
        failure = record.get("error")
        if failure is not None:
            if not isinstance(failure, dict):
                raise ProtocolError(f"malformed error envelope from {address}: {failure!r}")
            raise BackendError(
                f"worker {address[0]}:{address[1]} failed: "
                f"{failure.get('kind', 'Error')}: {failure.get('message', '')}"
            )
        symbols = record.get("symbols")
        if symbols is not None:
            self._table.apply(_decode_symbol_delta(symbols))
        answers = record.get("answers")
        if not isinstance(answers, list):
            raise ProtocolError(f"malformed restricted RESULT from {address}: {record!r}")
        decoded: List[FrozenSet[Atom]] = []
        for blob in answers:
            atoms = self._table.resolve_many(unpack_ids(_unb64(blob)))
            if not all(isinstance(atom, Atom) for atom in atoms):
                raise ProtocolError(f"restricted answer from {address} resolved to non-atoms")
            decoded.append(frozenset(atoms))
        return ReasonerResult(answers=tuple(decoded), metrics=_decode_metrics(record.get("metrics")))


# --------------------------------------------------------------------------- #
# Server side: work-frame decoder + result encoder
# --------------------------------------------------------------------------- #
class RestrictedServerCodec:
    """Worker-side half: replicates the request table, masters the response one.

    Drop-in for :class:`~repro.streamrule.net.DeltaDecoder` in the serve
    loop (``apply_symbols`` / ``decode``), plus the result direction:
    ``encode_result`` interns every answer atom in the response-direction
    table and ships the new tail with the packed answers, so a recurring
    derived atom costs 4 result bytes after its first appearance --
    mirroring what ``symbol_ids`` did for the request direction.
    """

    def __init__(self) -> None:
        self._request_table = SymbolTable()
        self._prev_ids: Dict[int, Tuple[int, ...]] = {}
        self._response_table = SymbolTable()
        self._response_synced = 0

    # -- request direction ------------------------------------------------ #
    def apply_symbols(self, payload: bytes) -> int:
        delta = _decode_symbol_delta(_loads(payload))
        return self._request_table.apply(delta)

    def decode(self, kind: Any, payload: bytes) -> WorkItem:
        from repro.streamrule.net import FrameKind, apply_id_runs

        record = _loads(payload)
        track, epoch = record.get("track"), record.get("epoch")
        incremental = record.get("incremental")
        if not isinstance(track, int) or not isinstance(epoch, int):
            raise ProtocolError(f"malformed restricted work frame: {record!r}")
        if incremental is not None and not isinstance(incremental, bool):
            raise ProtocolError(f"malformed restricted work frame: {record!r}")
        if kind is FrameKind.WORK:
            ids = unpack_ids(_unb64(record.get("ids")))
            self._prev_ids[track] = ids
            facts = self._request_table.resolve_many(ids)
            return WorkItem(facts=facts, track=track, epoch=epoch, incremental=incremental)
        previous = self._prev_ids.get(track)
        if previous is None:
            raise ProtocolError(f"DELTA frame for track {track} without a previous full window")
        ops = record.get("ops")
        if not isinstance(ops, list):
            raise ProtocolError(f"malformed restricted delta frame: {record!r}")
        runs: List[Any] = []
        for op in ops:
            if not isinstance(op, list) or not op:
                raise ProtocolError(f"malformed restricted delta op: {op!r}")
            if op[0] == "copy" and len(op) == 3 and isinstance(op[1], int) and isinstance(op[2], int):
                runs.append((op[1], op[2]))
            elif op[0] == "lit" and len(op) == 2:
                runs.append(_unb64(op[1]))
            else:
                raise ProtocolError(f"malformed restricted delta op: {op!r}")
        ids = apply_id_runs(previous, tuple(runs))
        self._prev_ids[track] = ids
        facts = self._request_table.resolve_many(ids)
        return WorkItem(facts=facts, track=track, epoch=epoch, incremental=incremental)

    # -- response direction ------------------------------------------------ #
    def encode_result(self, result: ReasonerResult) -> bytes:
        packed: List[str] = []
        for answer in result.answers:
            # Sorted for a deterministic wire image; sets have no order.
            ids = self._response_table.intern_many(sorted(answer, key=str))
            packed.append(_b64(pack_ids(ids)))
        record: Dict[str, Any] = {"answers": packed, "metrics": _encode_metrics(result.metrics)}
        sync = self._response_table.diff_since(self._response_synced)
        if sync:
            record["symbols"] = _encode_symbol_delta(sync)
            self._response_synced = sync.stop
        return _dumps(record)

    @staticmethod
    def encode_error(error: BaseException) -> bytes:
        return _dumps({"error": {"kind": type(error).__name__, "message": str(error)}})
