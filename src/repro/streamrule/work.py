"""The typed unit of work dispatched to an :class:`ExecutionBackend`.

A :class:`WorkItem` bundles everything one partition (or whole-window)
evaluation needs -- the facts, the slide delta, the partition *track*, and
the window *epoch* -- into a single picklable value.  It replaces the
``reason(window, delta=..., incremental=..., track=...)`` keyword cluster of
the pre-session API and is the unit that crosses execution boundaries: the
inline backend hands it to the local reasoner, the process backend ships it
to a pinned worker, the loopback-socket backend pickles it over a local
socket pair, and the TCP backend frames it to remote worker daemons --
either whole (:meth:`WorkItem.thinned`) or, on delta-capable connections,
as a :class:`~repro.streamrule.net.FactDelta` that re-ships only what
changed since the track's previous window (see ``docs/wire-protocol.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.asp.syntax.atoms import Atom
from repro.streaming.triples import Triple
from repro.streaming.window import WindowDelta

__all__ = ["WorkItem"]

#: A window item: an RDF triple (translated by the reasoner's data format
#: processor) or a ready-made ASP ground atom.
WorkFact = Union[Triple, Atom]


@dataclass(frozen=True)
class WorkItem:
    """One unit of reasoning work: a fact batch plus its stream coordinates.

    Parameters
    ----------
    facts:
        The window (or sub-window) content to evaluate: triples and/or atoms.
    delta:
        The window's expired/arrived record when the stream is iterated
        delta-aware.  Only carried on *session-level* items; partition items
        dispatched over a wire are thinned to the boolean ``incremental``
        flag (see :meth:`thinned`) so the delta payload is never shipped
        twice.
    track:
        Stable identity of the sub-stream this item belongs to (the
        partition index under a deterministic partitioner).  Grounding
        caches key their per-partition delta states on it, and pinned
        placement uses it to choose a worker slot.
    epoch:
        Monotonic window counter of the originating stream.  Lets a worker
        (local or remote) order items of the same track and lets downstream
        tooling correlate results with windows.
    incremental:
        Three-valued delta-grounding request: ``None`` derives the intent
        from ``delta`` (repair when the delta carries content over), ``True``
        forces the incremental path, ``False`` disables it.
    """

    facts: Tuple[WorkFact, ...]
    delta: Optional[WindowDelta] = None
    track: int = 0
    epoch: int = 0
    incremental: Optional[bool] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "facts", tuple(self.facts))

    def __len__(self) -> int:
        return len(self.facts)

    @property
    def wants_incremental(self) -> bool:
        """Whether this item asks for delta (incremental) grounding."""
        if self.incremental is not None:
            return self.incremental
        return self.delta is not None and self.delta.carries_over

    @property
    def signature(self) -> str:
        """Content signature: the sorted distinct predicates of the facts.

        This is the key of content-based placement: two windows carrying the
        same predicate mix map to the same signature even when their
        partition indexes differ, so a consistent-hash placement keeps
        routing them to the same worker (and its warmed grounding cache).
        """
        return "|".join(sorted({fact.predicate for fact in self.facts}))

    def thinned(self) -> "WorkItem":
        """The full-facts wire form: the delta payload collapsed to a flag.

        The delta-grounding caches diff fact sets content-wise, so a worker
        only needs to know *that* the window overlaps its predecessor, not
        the expired/arrived triples themselves -- shipping them would roughly
        double the wire payload of every overlapping window.

        On delta-capable transports (a negotiated
        :class:`~repro.streamrule.backends.TcpBackend` connection) this is
        only the *fallback* form: steady-state overlapping windows do not
        re-ship the facts at all, travelling as
        :class:`~repro.streamrule.net.FactDelta` frames instead.
        """
        if self.delta is None:
            return self
        return replace(self, delta=None, incremental=self.wants_incremental)
