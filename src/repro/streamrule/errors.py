"""Exception hierarchy of the execution layer.

These classes live in their own leaf module so every execution-layer module
(:mod:`~repro.streamrule.net`, :mod:`~repro.streamrule.fleet`,
:mod:`~repro.streamrule.backends`, :mod:`~repro.streamrule.session`) can
raise and catch them without import cycles.  :mod:`repro.streamrule.backends`
re-exports :class:`BackendError` and :class:`BackendConnectionError` under
their historical import path.

Hierarchy
---------
``BackendError``
    Any failure of a backend to evaluate a work item.  Not retried.
``BackendConnectionError``
    The transport to a worker was lost.  This is the *retriable* class: the
    fleet coordinator responds by reconnecting/rerouting, and
    :class:`~repro.streamrule.session.StreamSession` responds by evaluating
    the affected partitions inline (counted in ``session.fallbacks``).
``ProtocolError``
    The peer violated the wire protocol (bad magic, unexpected frame kind,
    malformed payload).  A protocol violation closes the connection, so it
    is also a connection error for retry purposes.
``HandshakeError``
    The peer rejected the connection during the handshake -- most commonly a
    protocol-version mismatch between coordinator and worker.  *Not* a
    connection error: reconnecting to the same worker would fail the same
    way, so it is raised to the caller instead of triggering a retry.
"""

from __future__ import annotations

__all__ = ["BackendConnectionError", "BackendError", "HandshakeError", "ProtocolError"]


class BackendError(RuntimeError):
    """A backend failed to evaluate a work item."""


class BackendConnectionError(BackendError, ConnectionError):
    """The transport to a worker was lost (triggers reroute/inline fallback)."""


class ProtocolError(BackendConnectionError):
    """The peer violated the wire protocol; the connection is unusable."""


class HandshakeError(BackendError):
    """The peer rejected the handshake (e.g. protocol-version mismatch)."""
