"""Backpressure-driven fleet elasticity: the :class:`FleetAutoscaler`.

The distributed tier already *survives* load (adaptive in-flight control
throttles the producer, backpressure stalls it) -- this module makes it
*chase* load instead.  A :class:`FleetAutoscaler` sits on the session's
gather seam (``StreamSession(autoscaler=...)`` feeds it one observation
per gathered window, sync and async facades alike) and turns two sustained
distress signals into capacity:

* a **stall streak** -- consecutive gathers on which the producer had to
  wait out the ``max_inflight`` bound because the backend genuinely fell
  behind (the same events ``IngestionStats.backpressure_stalls`` counts);
* an **AIMD backoff streak** -- consecutive gathers on which the adaptive
  controller (:mod:`repro.streamrule.adaptive`) cut its in-flight target,
  i.e. the feedback loop is actively shedding load.

Either streak reaching its threshold spawns one local worker daemon
(:func:`~repro.streamrule.worker.spawn_local_workers`) and adopts it into
the running fleet (:meth:`~repro.streamrule.fleet.WorkerFleet.adopt_endpoint`)
-- no backend restart, the new worker picks up the slots of the widened
canonical layout on the next dispatch.  A sustained **calm streak**
(consecutive gathers with neither signal) retires the youngest
autoscaler-spawned worker again (:meth:`~repro.streamrule.fleet.WorkerFleet.retire_endpoint`,
then ``SIGTERM``).  The scaler only ever retires workers it spawned
itself: the operator's fleet is a floor, not a suggestion.

Every decision is cooldown-gated (a scale step must be given time to show
up in the stall signal before the next one) and bounded by
``max_workers``.  The scaler mirrors itself into
:class:`~repro.streamrule.metrics.IngestionStats` (``autoscale_ups`` /
``autoscale_downs`` / ``fleet_size``) after every observation, so the
Prometheus endpoint exports the elasticity story alongside the
backpressure story at no extra wiring cost.

Scale-ups run *synchronously* on the gather path by design: the producer
is stalled when one triggers (that is the trigger), so the subprocess
start it pays for is hidden inside a wait that was already happening --
and tests get deterministic scaling without sleeping.  See
``docs/deployment-security.md`` for the knobs and the operational
guidance.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, List, Sequence

from repro.streamrule.fleet import WorkerEndpoint
from repro.streamrule.worker import LocalWorkerProcess, spawn_local_workers

__all__ = ["FleetAutoscaler"]

logger = logging.getLogger("repro.streamrule.autoscale")


class FleetAutoscaler:
    """Spawn/retire local workers from sustained backpressure signals.

    Parameters
    ----------
    backend:
        The fleet-owning backend (a
        :class:`~repro.streamrule.backends.TcpBackend`; anything with a
        ``fleet`` attribute answering ``adopt_endpoint`` /
        ``retire_endpoint`` works).  The scaler observes but never starts
        or closes it.
    max_workers:
        Hard ceiling on *extra* workers this scaler may have alive at
        once (default 2).
    scale_up_stall_streak / scale_up_backoff_streak:
        Consecutive stalled (resp. AIMD-backoff) gathers that trigger a
        scale-up (defaults 3 and 2 -- backoffs are the rarer, stronger
        signal).
    scale_down_calm_streak:
        Consecutive calm gathers (no stall, no backoff) after which the
        youngest spawned worker is retired (default 50).
    cooldown:
        Gathers to ignore after any scale step, so one decision's effect
        is observed before the next is taken (default 10).
    spawner:
        Injection point for tests: a callable with
        :func:`spawn_local_workers`'s signature.
    """

    def __init__(
        self,
        backend,
        *,
        max_workers: int = 2,
        scale_up_stall_streak: int = 3,
        scale_up_backoff_streak: int = 2,
        scale_down_calm_streak: int = 50,
        cooldown: int = 10,
        spawner: Callable[..., Sequence[LocalWorkerProcess]] = spawn_local_workers,
    ):
        if max_workers < 0:
            raise ValueError("max_workers must be non-negative")
        if min(scale_up_stall_streak, scale_up_backoff_streak, scale_down_calm_streak) < 1:
            raise ValueError("streak thresholds must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.backend = backend
        self.max_workers = max_workers
        self.scale_up_stall_streak = scale_up_stall_streak
        self.scale_up_backoff_streak = scale_up_backoff_streak
        self.scale_down_calm_streak = scale_down_calm_streak
        self.cooldown = cooldown
        self._spawner = spawner
        self._spawned: List[LocalWorkerProcess] = []
        self._lock = threading.Lock()
        self._stall_streak = 0
        self._backoff_streak = 0
        self._calm_streak = 0
        self._cooldown_left = 0
        self._last_backoffs = 0
        #: Cumulative scale decisions (mirrored into IngestionStats).
        self.scale_ups = 0
        self.scale_downs = 0

    # ------------------------------------------------------------------ #
    @property
    def spawned_workers(self) -> List[LocalWorkerProcess]:
        """The extra workers currently alive (youngest last)."""
        with self._lock:
            return list(self._spawned)

    @property
    def fleet_size(self) -> int:
        """Endpoints the backend's fleet currently routes over (0 unstarted)."""
        fleet = getattr(self.backend, "fleet", None)
        if fleet is None:
            return 0
        return len(fleet.endpoints) - len(fleet.dead_endpoints)

    # ------------------------------------------------------------------ #
    def observe(self, *, stalled: bool, aimd_backoffs: int = 0) -> None:
        """Feed one gathered window's distress signals; maybe scale.

        ``stalled`` is the gather's backpressure verdict; ``aimd_backoffs``
        is the session's *cumulative* backoff counter (the scaler
        differences it itself, so callers just mirror their
        ``IngestionStats`` field).  Called from the gather path --
        synchronous, at most one scale step per call.
        """
        with self._lock:
            backed_off = aimd_backoffs > self._last_backoffs
            self._last_backoffs = max(self._last_backoffs, aimd_backoffs)
            self._stall_streak = self._stall_streak + 1 if stalled else 0
            self._backoff_streak = self._backoff_streak + 1 if backed_off else 0
            self._calm_streak = 0 if (stalled or backed_off) else self._calm_streak + 1
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                return
            if (
                self._stall_streak >= self.scale_up_stall_streak
                or self._backoff_streak >= self.scale_up_backoff_streak
            ) and len(self._spawned) < self.max_workers:
                self._scale_up()
            elif self._calm_streak >= self.scale_down_calm_streak and self._spawned:
                self._scale_down()

    def close(self) -> None:
        """Terminate every worker this scaler spawned (idempotent)."""
        with self._lock:
            spawned, self._spawned = self._spawned, []
        for worker in spawned:
            worker.terminate()

    def __enter__(self) -> "FleetAutoscaler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _scale_up(self) -> None:
        fleet = getattr(self.backend, "fleet", None)
        if fleet is None:
            return  # backend not started (or already closed): nothing to grow
        try:
            worker = self._spawner(1)[0]
        except Exception as error:  # noqa: BLE001 - a failed spawn must not kill the gather path
            logger.warning("autoscale: could not spawn a worker: %s", error)
            self._cooldown_left = self.cooldown
            return
        try:
            fleet.adopt_endpoint(worker.endpoint)
        except Exception as error:  # noqa: BLE001 - ditto: degrade, don't crash
            logger.warning("autoscale: could not adopt %s: %s", worker.endpoint, error)
            worker.terminate()
            self._cooldown_left = self.cooldown
            return
        self._spawned.append(worker)
        self.scale_ups += 1
        self._stall_streak = 0
        self._backoff_streak = 0
        self._cooldown_left = self.cooldown
        logger.info("autoscale: spawned and adopted worker %s", worker.endpoint)

    def _scale_down(self) -> None:
        fleet = getattr(self.backend, "fleet", None)
        worker = self._spawned.pop()
        if fleet is not None:
            try:
                index = fleet.endpoints.index(WorkerEndpoint.parse(worker.endpoint))
                fleet.retire_endpoint(index)
            except Exception as error:  # noqa: BLE001 - retire is best-effort; the kill below settles it
                logger.warning("autoscale: could not retire %s cleanly: %s", worker.endpoint, error)
        worker.terminate()
        self.scale_downs += 1
        self._calm_streak = 0
        self._cooldown_left = self.cooldown
        logger.info("autoscale: retired worker %s", worker.endpoint)

    # ------------------------------------------------------------------ #
    def mirror_into(self, ingestion) -> None:
        """Copy the scaler's counters into an ``IngestionStats`` record."""
        ingestion.autoscale_ups = self.scale_ups
        ingestion.autoscale_downs = self.scale_downs
        ingestion.fleet_size = self.fleet_size
