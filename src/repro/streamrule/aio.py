"""The asyncio-native serving surface: many cheap sessions on one event loop.

The synchronous :class:`~repro.streamrule.session.StreamSession` scales one
hot stream: its backpressure *blocks* the producer thread, so a process
serving thousands of concurrent standing queries would need a thread per
stream.  This module is the many-cheap-sessions shape of the same facade:

:class:`AsyncStreamSession`
    ``async def push/push_window/results/finish`` over the *same* session
    internals -- every dispatch still runs through
    ``StreamSession._dispatch_evaluation``, every gather through
    ``StreamSession._gather_solution``, and the in-flight queue still holds
    :class:`~repro.streamrule.session.PendingWindow` records.  The only
    asynchronous part is the *waiting*: where the sync facade blocks on a
    future, the async facade ``await``\\ s its completion, yielding the loop
    to the other sessions.  Because both facades share the dispatch/gather
    seam (and the stall accounting around it), they cannot diverge
    semantically -- the async equivalence suite in
    ``tests/streamrule/test_aio.py`` pins exactly that.

:class:`AsyncWorkerClient` / :class:`AsyncWorkerFleet` / :class:`AioTcpBackend`
    A non-blocking TCP client speaking the existing ``SRW1`` wire protocol
    (:mod:`repro.streamrule.net`): ``asyncio.open_connection`` instead of a
    blocking socket, one reader *task* per connection instead of the
    elevator pattern, and the same FIFO ticket queue -- the worker answers
    strictly in request order, so responses match to awaiting callers by
    position.  The handshake bytes come from the same
    :func:`~repro.streamrule.net.build_hello` /
    :func:`~repro.streamrule.net.parse_welcome` helpers the sync client
    uses, and slot routing reuses
    :func:`~repro.streamrule.fleet.initial_slot_owners` /
    :func:`~repro.streamrule.fleet.rerouted_owner`, so a track lands on the
    same worker whichever client drives the fleet.  One event loop can
    multiplex thousands of sessions over one shared fleet without a thread
    per session: per-slot ordering is kept by *chaining* each slot's
    dispatch tasks instead of dedicating a dispatcher thread per slot.

Failure semantics of the async fleet now match the sync fleet's
resubmission discipline: a roundtrip that hits a dead connection marks
the endpoint dead, reroutes the slot, and *resubmits the item on the
survivors* -- each endpoint is tried at most once, so a cascading outage
still terminates in :class:`~repro.streamrule.errors.BackendConnectionError`.
Only when no worker survives does the error reach the session's inline
fallback (which evaluates on the loop -- the one degraded-mode blocking
path, see below).  Previously the async fleet propagated the *first*
connection loss straight to that fallback, so every in-flight item of a
dead worker blocked the event loop on a local evaluation even though
healthy survivors were sitting idle; the equivalence suite now pins the
resubmission behaviour instead.

Adaptive backpressure composes with both transports: construct the session
with ``max_inflight="adaptive"`` and the shared gather seam feeds the AIMD
controller (:mod:`repro.streamrule.adaptive`) the same stall/queue-depth/
latency observations the sync facade would.

Degraded-mode caveat: the inline fallback (and a submit-time refusal)
evaluates partitions *on the event loop*, blocking it for the duration of
those evaluations.  That is the deliberate trade -- on a degraded transport
correctness and flow beat latency -- but it is the one place the async
facade stops being non-blocking; see ``docs/async-serving.md``.
"""

from __future__ import annotations

import asyncio
import ssl
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.streamrule.backends import ExecutionBackend
from repro.streamrule.errors import (
    BackendConnectionError,
    BackendError,
    HandshakeError,
    ProtocolError,
)
from repro.streamrule.fleet import (
    EndpointLike,
    WorkerEndpoint,
    initial_slot_owners,
    rerouted_owner,
)
from repro.streamrule.metrics import Timer
from repro.streamrule.net import (
    MAGIC,
    MAX_FRAME_BYTES,
    DeltaShipper,
    FrameKind,
    WireStats,
    _FRAME_HEADER,
    _dumps,
    auth_mac,
    build_hello,
    decode_result,
    dumps_json,
    encode_reasoner_payload,
    loads_control,
    parse_welcome_fields,
)
from repro.streamrule.placement import PlacementStrategy
from repro.streamrule.reasoner import ReasonerResult
from repro.streamrule.session import PendingWindow, StreamSession, WindowSolution
from repro.streamrule.work import WorkItem
from repro.streaming.window import TimeWindow, WindowDelta

__all__ = [
    "AioTcpBackend",
    "AsyncStreamSession",
    "AsyncWorkerClient",
    "AsyncWorkerFleet",
]


# --------------------------------------------------------------------------- #
# The asyncio wire client: SRW1 over asyncio streams
# --------------------------------------------------------------------------- #
class AsyncWorkerClient:
    """One handshaken asyncio connection to a worker daemon.

    The asyncio sibling of :class:`~repro.streamrule.net.WorkerClient`:
    same magic, same handshake (via the shared payload helpers), same
    pipelined FIFO discipline -- several work frames may be outstanding at
    once and the worker answers strictly in request order, so responses
    resolve the ticket queue's head.  Instead of the sync client's elevator
    pattern (whichever waiter holds the receive lock reads for everyone), a
    single long-lived reader task pumps response frames to the tickets; a
    transport error fails every in-flight ticket with
    :class:`BackendConnectionError` and closes the connection for good.

    Construct with :meth:`connect` (the constructor itself is transport
    plumbing).  All methods must run on the loop that connected.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
    ):
        if codec not in ("pickle", "restricted"):
            raise ValueError(f"codec must be 'pickle' or 'restricted', got {codec!r}")
        self.address = address
        self.codec = codec
        self.stats = WireStats()
        self.capabilities: Dict[str, bool] = {}
        self._auth_token = auth_token
        self._reader = reader
        self._writer = writer
        self._closed = False
        #: Serializes sends (and the delta shipper, which must advance in
        #: wire order); asyncio.Lock wakes waiters FIFO, so submission order
        #: is send order.
        self._send_lock = asyncio.Lock()
        self._pending: Deque["asyncio.Future[Tuple[FrameKind, bytes]]"] = deque()
        self._shipper: Optional[Any] = None
        self._decode_result: Callable[[bytes, Tuple[str, int]], ReasonerResult] = decode_result
        self._reader_task: Optional["asyncio.Task[None]"] = None

    @classmethod
    async def connect(
        cls,
        address: Tuple[str, int],
        reasoner_payload: bytes,
        *,
        delta_shipping: bool = True,
        symbol_ids: bool = True,
        attempts: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        connect_timeout: float = 5.0,
        ssl_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
    ) -> "AsyncWorkerClient":
        """Connect with bounded exponential backoff and run the handshake.

        Mirrors the sync client's security surface: ``ssl_context`` wraps
        the connection in TLS (``server_hostname`` overrides the
        SNI/verification name), ``auth_token`` answers the worker's
        ``AUTH`` challenge, and ``codec="restricted"`` requires the
        restricted (non-pickle) dialect.  An :class:`ssl.SSLError` during
        the TLS handshake is a :class:`HandshakeError` immediately -- a
        certificate or protocol mismatch is a deployment bug that retrying
        cannot fix.
        """
        if attempts < 1:
            raise ValueError("at least one connection attempt is required")
        delay = base_delay
        failure: Optional[Exception] = None
        reader = writer = None
        tls_kwargs: Dict[str, object] = {}
        if ssl_context is not None:
            tls_kwargs["ssl"] = ssl_context
            if server_hostname is not None:
                tls_kwargs["server_hostname"] = server_hostname
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(delay)
                delay = min(max_delay, delay * 2)
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(address[0], address[1], **tls_kwargs),
                    timeout=connect_timeout,
                )
                break
            except ssl.SSLError as error:
                raise HandshakeError(
                    f"TLS handshake with worker {address[0]}:{address[1]} failed: {error!r}"
                ) from error
            except (ConnectionResetError, BrokenPipeError) as error:
                if ssl_context is not None:
                    # The TCP connect succeeded and the peer then hung up on
                    # our ClientHello: it is not speaking TLS (e.g. a
                    # plaintext SRW1 daemon) -- permanent, don't retry.
                    raise HandshakeError(
                        f"TLS handshake with worker {address[0]}:{address[1]} failed: {error!r}"
                    ) from error
                failure = error
            except (OSError, asyncio.TimeoutError) as error:
                failure = error
        if reader is None or writer is None:
            raise BackendConnectionError(
                f"could not connect to worker {address[0]}:{address[1]} "
                f"after {attempts} attempts: {failure!r}"
            ) from failure
        client = cls(address, reader, writer, auth_token=auth_token, codec=codec)
        try:
            await client._handshake(reasoner_payload, delta_shipping, symbol_ids)
        except BaseException:
            client._close_transport()
            raise
        use_delta = bool(client.capabilities.get("delta_shipping"))
        use_ids = bool(client.capabilities.get("symbol_ids"))
        if client.capabilities.get("restricted_codec"):
            from repro.streamrule.codec import RestrictedResultDecoder, RestrictedShipper

            client._shipper = RestrictedShipper(delta_shipping=use_delta)
            client._decode_result = RestrictedResultDecoder().decode
        else:
            client._shipper = (
                DeltaShipper(delta_shipping=use_delta, symbol_ids=use_ids)
                if (use_delta or use_ids)
                else None
            )
        client._reader_task = asyncio.get_running_loop().create_task(client._read_loop())
        return client

    # -- lifecycle ------------------------------------------------------- #
    @property
    def alive(self) -> bool:
        return not self._closed

    @property
    def pending_count(self) -> int:
        """Frames sent whose responses have not yet arrived."""
        return len(self._pending)

    def abort(self, cause: BaseException) -> None:
        """Close the connection and fail every in-flight ticket (sync).

        The async spelling of :meth:`WorkerClient._abort`: pending results
        can never arrive once the stream is broken, so their awaiters get
        :class:`BackendConnectionError`.  Safe to call from the reader task
        or from fleet bookkeeping; idempotent.
        """
        self._close_transport()
        pending, self._pending = list(self._pending), deque()
        if pending:
            failure = (
                cause
                if isinstance(cause, BackendConnectionError)
                else BackendConnectionError(f"connection to worker {self.address} aborted: {cause!r}")
            )
            for ticket in pending:
                if not ticket.done():
                    ticket.set_exception(failure)

    async def close(self) -> None:
        """Abort the connection and await the reader task's exit."""
        self.abort(BackendConnectionError(f"connection to worker {self.address} is closed"))
        task, self._reader_task = self._reader_task, None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown is best-effort
                pass

    def _close_transport(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
        except Exception:  # noqa: BLE001 - transports may already be broken
            pass

    # -- framing --------------------------------------------------------- #
    def _write_frame(self, kind: FrameKind, payload: bytes = b"") -> None:
        self._writer.write(_FRAME_HEADER.pack(len(payload), kind) + payload)

    async def _recv_frame(self) -> Tuple[FrameKind, bytes]:
        header = await self._reader.readexactly(_FRAME_HEADER.size)
        length, kind_byte = _FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte bound")
        try:
            kind = FrameKind(kind_byte)
        except ValueError as error:
            raise ProtocolError(f"unknown frame kind {kind_byte!r}") from error
        payload = await self._reader.readexactly(length) if length else b""
        return kind, payload

    # -- handshake ------------------------------------------------------- #
    async def _handshake(self, reasoner_payload: bytes, delta_shipping: bool, symbol_ids: bool) -> None:
        """Run the client half of the handshake (MAGIC .. READY).

        Mirrors the sync client exactly, including the error taxonomy: a
        transport failure mid-handshake is a :class:`HandshakeError` (a
        plaintext client against a TLS daemon fails loudly here instead of
        being endlessly re-dialed), a worker demanding auth we cannot
        answer is a :class:`HandshakeError`, and a ``REJECT`` after the
        ``REASONER`` (bad token, refused codec) is one too.
        """
        restricted = self.codec == "restricted"
        hello, offered = build_hello(delta_shipping, symbol_ids, restricted=restricted)
        try:
            self._writer.write(MAGIC)
            self._write_frame(FrameKind.HELLO, hello)
            await self._writer.drain()
            kind, payload = await self._recv_frame()
        except (OSError, EOFError, asyncio.IncompleteReadError, ConnectionError) as error:
            raise HandshakeError(f"handshake with {self.address} failed: {error!r}") from error
        accepted, welcome = parse_welcome_fields(
            kind, payload, offered, self.address, allow_pickle=not restricted
        )
        self.capabilities = accepted
        if restricted and not accepted.get("restricted_codec"):
            raise HandshakeError(
                f"worker {self.address[0]}:{self.address[1]} did not accept the restricted codec; "
                "refusing to fall back to pickle"
            )
        nonce = welcome.get("nonce")
        try:
            if nonce is not None:
                if not self._auth_token:
                    raise HandshakeError(
                        f"worker {self.address[0]}:{self.address[1]} requires token auth "
                        "and this client has no token"
                    )
                self._write_frame(FrameKind.AUTH, dumps_json({"mac": auth_mac(self._auth_token, str(nonce))}))
            self._write_frame(FrameKind.REASONER, reasoner_payload)
            await self._writer.drain()
            kind, payload = await self._recv_frame()
        except (OSError, EOFError, asyncio.IncompleteReadError, ConnectionError) as error:
            raise HandshakeError(f"handshake with {self.address} failed: {error!r}") from error
        if kind is FrameKind.REJECT:
            reject = loads_control(payload, allow_pickle=not restricted)
            raise HandshakeError(
                f"worker {self.address[0]}:{self.address[1]} rejected the handshake: "
                f"{reject.get('reason', 'unspecified')}"
            )
        if kind is not FrameKind.READY:
            raise ProtocolError(f"expected READY, got {kind.name}")

    # -- the response pump ----------------------------------------------- #
    async def _read_loop(self) -> None:
        try:
            while True:
                kind, payload = await self._recv_frame()
                self.stats.bytes_in += len(payload)
                if not self._pending:
                    raise ProtocolError(f"unsolicited {kind.name} frame from {self.address}")
                ticket = self._pending.popleft()
                if not ticket.done():
                    ticket.set_result((kind, payload))
        except asyncio.CancelledError:
            self.abort(BackendConnectionError(f"connection to worker {self.address} is closed"))
            raise
        except (asyncio.IncompleteReadError, ConnectionError, OSError, EOFError) as error:
            self.abort(BackendConnectionError(f"connection to worker {self.address} lost: {error!r}"))
        except ProtocolError as error:
            self.abort(error)

    # -- request/response ------------------------------------------------ #
    async def submit_item(self, item: WorkItem) -> ReasonerResult:
        """Ship one work item (full or delta form) and await its result.

        The send completes as soon as the frames are written; the coroutine
        then awaits the FIFO ticket, so concurrent callers keep multiple
        work frames outstanding on this one connection.
        """
        loop = asyncio.get_running_loop()
        ticket: "asyncio.Future[Tuple[FrameKind, bytes]]" = loop.create_future()
        async with self._send_lock:
            if self._closed:
                raise BackendConnectionError(f"connection to worker {self.address} is closed")
            if self._shipper is not None:
                frames = self._shipper.encode_frames(item)
            else:
                frames = [(FrameKind.WORK, _dumps(item.thinned()))]
            try:
                # Leading SYMBOLS frames are one-way (no response, no
                # ticket); only the trailing work frame enters the queue.
                for sync_kind, sync_payload in frames[:-1]:
                    self._write_frame(sync_kind, sync_payload)
                    self.stats.symbol_frames += 1
                    self.stats.bytes_symbols += len(sync_payload)
                kind, payload = frames[-1]
                self._write_frame(kind, payload)
                self._pending.append(ticket)
                if kind is FrameKind.DELTA:
                    self.stats.items_delta += 1
                    self.stats.bytes_delta += len(payload)
                else:
                    self.stats.items_full += 1
                    self.stats.bytes_full += len(payload)
                await self._writer.drain()
            except (OSError, ConnectionError) as error:
                if self._pending and self._pending[-1] is ticket:
                    self._pending.pop()
                failure = BackendConnectionError(f"connection to worker {self.address} lost: {error!r}")
                self.abort(failure)
                raise failure from error
        response_kind, response = await ticket
        if response_kind is not FrameKind.RESULT:
            failure = ProtocolError(f"expected RESULT, got {response_kind.name}")
            self.abort(failure)
            raise failure
        try:
            return self._decode_result(response, self.address)
        except ProtocolError as failure:
            self.abort(failure)
            raise


# --------------------------------------------------------------------------- #
# The asyncio fleet: slot routing without threads
# --------------------------------------------------------------------------- #
class AsyncWorkerFleet:
    """Slot -> endpoint router over :class:`AsyncWorkerClient` connections.

    The asyncio sibling of :class:`~repro.streamrule.fleet.WorkerFleet`,
    sharing its layout helpers (slot ``i`` starts on endpoint ``i % n``;
    dead owners reroute round-robin over the survivors) but none of its
    locks -- everything runs on one event loop, so plain attribute state is
    already serialized.  Failure semantics match the sync fleet's
    resubmission discipline: a failed roundtrip retires the endpoint and
    resubmits the item on the survivors (each endpoint tried at most
    once); only a fleet-wide outage propagates
    :class:`BackendConnectionError` to the session's inline fallback.
    There is still no mid-stream *reconnect* here -- dead endpoints stay
    dead for the backend's lifetime.
    """

    def __init__(
        self,
        endpoints: Sequence[EndpointLike],
        *,
        slots: Optional[int] = None,
        delta_shipping: bool = True,
        symbol_ids: bool = True,
        connect_attempts: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        connect_timeout: float = 5.0,
        ssl_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
    ):
        self.endpoints: List[WorkerEndpoint] = [WorkerEndpoint.parse(endpoint) for endpoint in endpoints]
        if not self.endpoints:
            raise ValueError("a worker fleet needs at least one endpoint")
        if slots is not None and slots < 1:
            raise ValueError("a worker fleet needs at least one slot")
        self.slot_count: int = slots if slots is not None else len(self.endpoints)
        self.delta_shipping = delta_shipping
        self.symbol_ids = symbol_ids
        self.connect_attempts = connect_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.connect_timeout = connect_timeout
        self.ssl_context = ssl_context
        self.server_hostname = server_hostname
        self.auth_token = auth_token
        self.codec = codec
        self._clients: List[Optional[AsyncWorkerClient]] = [None] * len(self.endpoints)
        self._dead: List[bool] = [False] * len(self.endpoints)
        self._slot_owner: List[int] = initial_slot_owners(self.slot_count, len(self.endpoints))
        self._retired_stats = WireStats()
        #: How many slot reassignments dead workers have caused.
        self.reroutes = 0

    # -- lifecycle ------------------------------------------------------- #
    async def start(self, reasoner_payload: bytes) -> None:
        """Connect and handshake every endpoint concurrently.

        Unreachable endpoints are marked dead (their slots reroute); a
        :class:`HandshakeError` (a deployment bug, not a transient fault)
        closes everything and propagates; no reachable endpoint at all is
        a :class:`BackendConnectionError`.
        """
        self._payload = reasoner_payload
        indexes = [
            index
            for index in range(len(self.endpoints))
            if self._clients[index] is None and not self._dead[index]
        ]
        outcomes = await asyncio.gather(
            *(self._connect(index) for index in indexes), return_exceptions=True
        )
        handshake_failure: Optional[HandshakeError] = None
        for index, outcome in zip(indexes, outcomes):
            if isinstance(outcome, HandshakeError):
                handshake_failure = outcome
            elif isinstance(outcome, BackendConnectionError):
                self._mark_dead(index)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                self._clients[index] = outcome
        if handshake_failure is not None:
            await self.close()
            raise handshake_failure
        if not self._alive_indexes():
            raise BackendConnectionError(
                f"no worker of the fleet {[str(e) for e in self.endpoints]} is reachable"
            )

    async def _connect(self, index: int) -> AsyncWorkerClient:
        endpoint = self.endpoints[index]
        assert self._payload is not None
        return await AsyncWorkerClient.connect(
            (endpoint.host, endpoint.port),
            self._payload,
            delta_shipping=self.delta_shipping,
            symbol_ids=self.symbol_ids,
            attempts=self.connect_attempts,
            base_delay=self.base_delay,
            max_delay=self.max_delay,
            connect_timeout=self.connect_timeout,
            ssl_context=self.ssl_context,
            server_hostname=self.server_hostname,
            auth_token=self.auth_token,
            codec=self.codec,
        )

    def abort(self) -> None:
        """Synchronous teardown: abort every connection, fail their tickets."""
        clients, self._clients = self._clients, [None] * len(self.endpoints)
        for client in clients:
            if client is not None:
                self._retired_stats = self._retired_stats.merged_with(client.stats)
                client.abort(BackendConnectionError("fleet closed"))

    async def close(self) -> None:
        """Graceful teardown: abort connections and await their reader tasks."""
        clients, self._clients = self._clients, [None] * len(self.endpoints)
        self._dead = [False] * len(self.endpoints)
        self._slot_owner = initial_slot_owners(self.slot_count, len(self.endpoints))
        for client in clients:
            if client is not None:
                self._retired_stats = self._retired_stats.merged_with(client.stats)
                await client.close()

    # -- dispatch -------------------------------------------------------- #
    async def roundtrip(self, slot: int, item: WorkItem) -> ReasonerResult:
        """Evaluate ``item`` on ``slot``'s worker, resubmitting on survivors.

        The async spelling of the sync fleet's resubmission loop: a
        :class:`BackendConnectionError` retires the endpoint, reroutes the
        slot, and retries the item there -- each endpoint at most once, so
        a cascading outage terminates instead of spinning.  This covers
        *pending* dispatches too: when a worker dies with several frames
        outstanding, every awaiting roundtrip gets the failure from the
        client's ticket queue and re-enters this loop, so a mid-burst
        crash loses no window and duplicates none (the dead connection
        never delivered their results).  Only a fleet-wide outage
        propagates -- under a session that means the inline fallback (the
        one path that blocks the loop; previously *every* in-flight item
        of a dead worker took it, idling healthy survivors).
        """
        if not 0 <= slot < self.slot_count:
            raise ValueError(f"slot {slot} out of range for a {self.slot_count}-slot fleet")
        failure: Optional[BackendConnectionError] = None
        for _ in range(len(self.endpoints) + 1):
            client, owner = self._client_for_slot(slot)
            if client is None:
                break
            try:
                return await client.submit_item(item)
            except BackendConnectionError as error:
                failure = error
                self._mark_dead(owner)
        raise BackendConnectionError(
            f"no live worker left for slot {slot} (fleet {[str(e) for e in self.endpoints]})"
        ) from failure

    # -- introspection ---------------------------------------------------- #
    @property
    def alive_endpoints(self) -> List[WorkerEndpoint]:
        return [self.endpoints[index] for index in self._alive_indexes()]

    def slot_table(self) -> Dict[int, str]:
        """Current slot -> endpoint routing (diagnostic snapshot)."""
        return {slot: str(self.endpoints[owner]) for slot, owner in enumerate(self._slot_owner)}

    def pending_items(self) -> Dict[str, int]:
        """Frames in flight per endpoint (sent, response not yet received)."""
        return {
            str(endpoint): (client.pending_count if client is not None else 0)
            for endpoint, client in zip(self.endpoints, self._clients)
        }

    def wire_statistics(self) -> WireStats:
        """Aggregate :class:`WireStats` over all connections, live and retired."""
        merged = self._retired_stats
        for client in self._clients:
            if client is not None:
                merged = merged.merged_with(client.stats)
        return merged

    # -- internals -------------------------------------------------------- #
    _payload: Optional[bytes] = None

    def _alive_indexes(self) -> List[int]:
        return [
            index
            for index, client in enumerate(self._clients)
            if client is not None and client.alive
        ]

    def _client_for_slot(self, slot: int) -> Tuple[Optional[AsyncWorkerClient], int]:
        owner = self._slot_owner[slot]
        client = self._clients[owner]
        if client is not None and not client.alive:
            self._mark_dead(owner)
            client = None
        if client is not None:
            return client, owner
        alive = self._alive_indexes()
        if not alive:
            return None, owner
        new_owner = rerouted_owner(slot, alive)
        if new_owner != owner:
            self._slot_owner[slot] = new_owner
            self.reroutes += 1
        return self._clients[new_owner], new_owner

    def _mark_dead(self, index: int) -> None:
        client = self._clients[index]
        if client is not None:
            self._retired_stats = self._retired_stats.merged_with(client.stats)
            client.abort(BackendConnectionError(f"endpoint {self.endpoints[index]} retired"))
        self._clients[index] = None
        self._dead[index] = True
        alive = self._alive_indexes()
        if not alive:
            return
        for slot, owner in enumerate(self._slot_owner):
            if owner == index:
                self._slot_owner[slot] = rerouted_owner(slot, alive)
                self.reroutes += 1


# --------------------------------------------------------------------------- #
# The asyncio TCP backend: loop-bound, thread-free dispatch
# --------------------------------------------------------------------------- #
class AioTcpBackend(ExecutionBackend):
    """Dispatch work items to remote workers from inside an event loop.

    Implements the standard :class:`ExecutionBackend` protocol -- futures
    are plain :class:`concurrent.futures.Future`, so the session's
    dispatch/gather seam (and ``PendingWindow.done()``) works unchanged --
    but all I/O runs as asyncio tasks on the loop that started the backend,
    with no dispatcher threads.  Per-track ordering (the precondition for
    delta shipping and delta grounding) is preserved by *chaining*: each
    slot remembers its newest dispatch task, and the next item's task
    awaits it before submitting, so one slot's items hit the wire strictly
    in submission order while different slots proceed concurrently.

    Lifecycle is asynchronous: ``await backend.astart(reasoner)`` connects
    the fleet (the session's automatic ``backend.start`` then no-ops);
    ``await backend.aclose()`` tears it down gracefully.  The synchronous
    ``close()`` performs an abrupt teardown (transports closed, in-flight
    tickets failed) for non-async callers and finalizers.
    """

    name = "aio-tcp"
    is_remote = True
    uses_placement = True
    measures_wall_clock = True
    pipelined = True

    def __init__(
        self,
        endpoints: Sequence[EndpointLike],
        *,
        slots: Optional[int] = None,
        placement: Optional[PlacementStrategy] = None,
        delta_shipping: bool = True,
        symbol_ids: bool = True,
        connect_attempts: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        connect_timeout: float = 5.0,
        ssl_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
    ):
        super().__init__(placement)
        self.endpoints = [WorkerEndpoint.parse(endpoint) for endpoint in endpoints]
        self.slots = slots
        self.delta_shipping = delta_shipping
        self.symbol_ids = symbol_ids
        self.connect_attempts = connect_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.connect_timeout = connect_timeout
        self.ssl_context = ssl_context
        self.server_hostname = server_hostname
        self.auth_token = auth_token
        self.codec = codec
        self._fleet: Optional[AsyncWorkerFleet] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slot_tails: Optional[List[Optional["asyncio.Task[ReasonerResult]"]]] = None
        self._final_stats: Dict[str, float] = {}

    @property
    def fleet(self) -> Optional[AsyncWorkerFleet]:
        """The live fleet coordinator (``None`` while closed)."""
        return self._fleet

    # -- lifecycle ------------------------------------------------------- #
    async def astart(self, reasoner) -> None:
        """Connect the fleet and bind ``reasoner`` (async ``start``)."""
        if self._reasoner is reasoner:
            return
        if self._reasoner is not None:
            await self.aclose()
        fleet = AsyncWorkerFleet(
            self.endpoints,
            slots=self.slots,
            delta_shipping=self.delta_shipping,
            symbol_ids=self.symbol_ids,
            connect_attempts=self.connect_attempts,
            base_delay=self.base_delay,
            max_delay=self.max_delay,
            connect_timeout=self.connect_timeout,
            ssl_context=self.ssl_context,
            server_hostname=self.server_hostname,
            auth_token=self.auth_token,
            codec=self.codec,
        )
        await fleet.start(encode_reasoner_payload(reasoner, self.codec))
        self._fleet = fleet
        self._loop = asyncio.get_running_loop()
        self._slot_tails = [None] * fleet.slot_count
        self._reasoner = reasoner

    async def aclose(self) -> None:
        """Gracefully close the fleet (async ``close``)."""
        fleet, self._fleet = self._fleet, None
        self._slot_tails = None
        self._loop = None
        self._reasoner = None
        if fleet is not None:
            self._final_stats = self._snapshot_stats(fleet)
            await fleet.close()

    def _start(self, reasoner) -> None:
        raise BackendError(
            "AioTcpBackend must be started from its event loop: "
            "'await backend.astart(reasoner)' before dispatching "
            "(AsyncStreamSession does this automatically)"
        )

    def _close(self) -> None:
        fleet, self._fleet = self._fleet, None
        self._slot_tails = None
        self._loop = None
        if fleet is not None:
            self._final_stats = self._snapshot_stats(fleet)
            fleet.abort()

    # -- dispatch -------------------------------------------------------- #
    def _submit(self, item: WorkItem) -> "Future[ReasonerResult]":
        self._require_started()
        fleet, loop, tails = self._fleet, self._loop, self._slot_tails
        assert fleet is not None and loop is not None and tails is not None
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is not loop:
            raise BackendError(
                "AioTcpBackend dispatches must run on the event loop that started it"
            )
        slot = self.placement.slot(item, fleet.slot_count)
        previous = tails[slot]
        bridged: "Future[ReasonerResult]" = Future()

        async def _run() -> ReasonerResult:
            if previous is not None and not previous.done():
                # Order barrier only: the predecessor's outcome belongs to
                # its own caller (asyncio.wait never re-raises it here).
                await asyncio.wait([previous])
            return await fleet.roundtrip(slot, item)

        task = loop.create_task(_run())
        tails[slot] = task

        def _bridge(finished: "asyncio.Task[ReasonerResult]") -> None:
            if bridged.cancelled():
                return
            if finished.cancelled():
                bridged.set_exception(BackendConnectionError("dispatch task cancelled"))
                return
            error = finished.exception()
            if error is not None:
                bridged.set_exception(error)
            else:
                bridged.set_result(finished.result())

        task.add_done_callback(_bridge)
        return bridged

    # -- introspection ---------------------------------------------------- #
    def pending_items(self) -> Dict[str, int]:
        """Wire-level queue depth per endpoint."""
        if self._fleet is None:
            return {}
        return self._fleet.pending_items()

    def transport_statistics(self) -> Dict[str, float]:
        return self.wire_statistics()

    def wire_statistics(self) -> Dict[str, float]:
        """Fleet traffic counters (final snapshot survives ``close``)."""
        if self._fleet is None:
            return dict(self._final_stats)
        return self._snapshot_stats(self._fleet)

    @staticmethod
    def _snapshot_stats(fleet: AsyncWorkerFleet) -> Dict[str, float]:
        stats = fleet.wire_statistics()
        return {
            "items_full": float(stats.items_full),
            "items_delta": float(stats.items_delta),
            "bytes_full": float(stats.bytes_full),
            "bytes_delta": float(stats.bytes_delta),
            "symbol_frames": float(stats.symbol_frames),
            "bytes_symbols": float(stats.bytes_symbols),
            "bytes_out": float(stats.bytes_out),
            "bytes_in": float(stats.bytes_in),
            "pings": float(stats.pings),
            "reroutes": float(fleet.reroutes),
            "alive_workers": float(len(fleet.alive_endpoints)),
        }


# --------------------------------------------------------------------------- #
# The async session facade
# --------------------------------------------------------------------------- #
class AsyncStreamSession:
    """``async`` push/results/finish over the synchronous session's seam.

    Wraps a :class:`~repro.streamrule.session.StreamSession` and reuses its
    windowing steppers, its ``_dispatch_evaluation`` / ``_gather_solution``
    halves, its :class:`PendingWindow` bookkeeping, and its stall/adaptive
    accounting -- the async facade adds *awaiting* where the sync facade
    blocks, nothing else, which is what the async/sync equivalence suite
    relies on.  Accepts every :class:`StreamSession` constructor argument
    (``max_inflight="adaptive"`` included)::

        async with AsyncStreamSession(program, window=..., backend=...) as session:
            await session.push(triples)
            await session.finish()
            async for solution in session.results():
                ...

    Multiplexing many sessions over one shared backend/reasoner: construct
    each with ``owns_backend=False`` and a distinct ``track_base`` (disjoint
    cache-track namespaces; with a pinned placement the bases also spread
    sessions across worker slots).  One session must be driven by one task
    at a time -- the cheap-concurrency unit is many sessions on one loop,
    not many tasks on one session.

    With an :class:`AioTcpBackend` the first ``push`` awaits the backend's
    ``astart`` automatically; other (thread-based) backends start exactly
    as they do under the sync facade, and their futures are awaited via a
    loop-safe done-callback, so the producer coroutine never blocks the
    loop while a window evaluates.  (Exception: the inline-fallback path
    evaluates on the loop -- see the module docstring.)
    """

    def __init__(self, program, **kwargs):
        self._session = StreamSession(program, **kwargs)

    # -- delegation ------------------------------------------------------ #
    @property
    def session(self) -> StreamSession:
        """The wrapped synchronous session (shared internals)."""
        return self._session

    @property
    def ingestion(self):
        return self._session.ingestion

    @property
    def fallbacks(self) -> int:
        return self._session.fallbacks

    @property
    def inflight_controller(self):
        return self._session.inflight_controller

    @property
    def inflight_count(self) -> int:
        return self._session.inflight_count

    @property
    def backend(self) -> ExecutionBackend:
        return self._session.backend

    @property
    def reasoner(self):
        return self._session.reasoner

    def effective_max_inflight(self) -> int:
        return self._session.effective_max_inflight()

    # -- lifecycle ------------------------------------------------------- #
    async def close(self, drain: bool = True) -> None:
        """Async :meth:`StreamSession.close`: drain (awaiting), then close.

        A session created with ``owns_backend=False`` leaves the backend
        running; an owned :class:`AioTcpBackend` is closed via ``aclose``.
        """
        session = self._session
        try:
            if drain:
                while session._inflight:
                    await self._gather_oldest()
        finally:
            if session.owns_backend:
                aclose = getattr(session.backend, "aclose", None)
                if aclose is not None:
                    await aclose()
                else:
                    session.backend.close()

    async def __aenter__(self) -> "AsyncStreamSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        # Mirror the sync facade: flush on a clean exit, abandon the
        # in-flight windows when an exception is already propagating.
        await self.close(drain=exc_info[0] is None)

    # -- the facade ------------------------------------------------------ #
    async def push(self, items) -> int:
        """Async :meth:`StreamSession.push`: awaits instead of blocking.

        Windows dispatch exactly as the sync facade would (same steppers,
        same ``max_inflight`` bound, same stall accounting); when the bound
        is reached the coroutine *awaits* the oldest window's futures,
        yielding the loop to the other sessions, instead of blocking the
        thread.
        """
        session = self._session
        await self._ensure_backend()
        batch = session._as_items(items)
        if session.window is None:
            index = session._push_index
            session._push_index += 1
            await self._enqueue(index, batch, None)
            return 1
        if isinstance(session.window, TimeWindow):
            if not session.eager_time_windows:
                session._buffer.extend(batch)
                return 0
            stepper = session._eager_time_stepper()
            count = 0
            for item in batch:
                for delta in stepper.feed(item):
                    await self._enqueue(delta.index, list(delta.window), delta)
                    count += 1
            return count
        stepper = session._count_stepper()
        count = 0
        for item in batch:
            delta = stepper.feed(item)
            if delta is not None:
                await self._enqueue(delta.index, list(delta.window), delta)
                count += 1
        return count

    async def push_window(
        self,
        items: Iterable,
        *,
        delta: Optional[WindowDelta] = None,
        index: Optional[int] = None,
        tag: Optional[object] = None,
        track_base: Optional[int] = None,
    ) -> None:
        """Async :meth:`StreamSession.push_window` (externally-windowed)."""
        session = self._session
        await self._ensure_backend()
        if index is None:
            index = session._push_index
            session._push_index += 1
        session._dispatch_into(
            session._inflight, index, list(items), delta, tag=tag, track_base=track_base
        )
        while len(session._inflight) >= session.effective_max_inflight():
            await self._gather_oldest(backpressure=True)

    async def finish(self) -> int:
        """Async :meth:`StreamSession.finish`: dispatch tails, drain all."""
        session = self._session
        await self._ensure_backend()
        count = session._finish_dispatch()
        while session._inflight:
            await self._gather_oldest()
        return count

    async def results(self, wait: bool = True):
        """Async generator of :class:`WindowSolution`, in window order.

        The async spelling of :meth:`StreamSession.results`: finished
        windows yield immediately; with ``wait=True`` the generator awaits
        in-flight windows as it reaches them, with ``wait=False`` it stops
        at the first unfinished one (and an idle drain touches no locks --
        the same fast path the sync facade guarantees).
        """
        session = self._session
        while session._ready:
            yield session._ready.popleft()
        while session._inflight:
            if not wait and not session._inflight[0].done():
                return
            await self._gather_oldest()
            while session._ready:
                yield session._ready.popleft()

    async def results_list(self, wait: bool = True) -> List[WindowSolution]:
        """Drain :meth:`results` into a list (convenience)."""
        return [solution async for solution in self.results(wait)]

    # -- internals ------------------------------------------------------- #
    async def _ensure_backend(self) -> None:
        """Run an async-lifecycle backend's ``astart`` for the session."""
        session = self._session
        astart = getattr(session.backend, "astart", None)
        if astart is not None and session.backend.reasoner is not session.reasoner:
            await astart(session.reasoner)

    async def _enqueue(self, index: int, items: List, delta) -> None:
        session = self._session
        session._dispatch_into(session._inflight, index, items, delta)
        # Re-resolved every iteration, exactly like the sync facade: an
        # adaptive controller may cut its target mid-drain.
        while len(session._inflight) >= session.effective_max_inflight():
            await self._gather_oldest(backpressure=True)

    async def _gather_oldest(self, backpressure: bool = False) -> None:
        """Await the oldest in-flight window, then gather it synchronously.

        The gather half (combining, metrics, fallback bookkeeping) is the
        sync session's own ``_gather_solution`` -- by the time it runs,
        every future is done, so it never blocks the loop (except the
        documented inline-fallback path).  Stall accounting matches the
        sync facade: the bound was hit while the head was unfinished.
        """
        session = self._session
        pending = session._inflight.popleft()
        try:
            stalled = backpressure and not pending.done()
            if stalled:
                session.ingestion.backpressure_stalls += 1
                with Timer() as stall:
                    await self._await_pending(pending)
                session.ingestion.backpressure_wait_seconds += stall.seconds
            else:
                await self._await_pending(pending)
        except asyncio.CancelledError:
            # The window was not gathered; put it back so a later drain
            # (or close) still emits it -- cancellation must not lose or
            # reorder windows.
            session._inflight.appendleft(pending)
            raise
        fallbacks_before = session.fallbacks
        solution = session._gather_solution(pending)
        session._observe_gather(
            pending, stalled=stalled, failed=session.fallbacks > fallbacks_before
        )
        session._ready.append(solution)

    @staticmethod
    async def _await_pending(pending: PendingWindow) -> None:
        """Await every future of ``pending`` without consuming outcomes.

        Failures (including :class:`BackendConnectionError`) are left in
        the futures for ``_gather_solution`` to handle -- identical error
        timing to the sync facade.  Waiting is done with a loop-safe done
        callback rather than ``asyncio.wrap_future`` so that cancelling
        this coroutine never cancels (or consumes) the underlying work.
        """
        loop = asyncio.get_running_loop()
        for _item, future in pending.submissions:
            if future is None or future.done():
                continue
            event = asyncio.Event()
            future.add_done_callback(lambda _f, _set=event.set: loop.call_soon_threadsafe(_set))
            await event.wait()
