"""AIMD adaptive in-flight control for pipelined ingestion.

``StreamSession(max_inflight=N)`` fixes the dispatch-ahead bound at a
constant, which is the wrong constant most of the time: too low and a
fast fleet idles between windows, too high and every window queues behind
``N-1`` predecessors on an overloaded fleet -- dispatch-to-gather latency
grows linearly with the bound while throughput stays flat.  This module
derives the bound from observation instead, with the classic TCP
congestion-control shape (additive increase, multiplicative decrease):

* every *clean* gather -- no backpressure stall, no fallback, queue depth
  and latency healthy -- earns ``increase`` more in-flight budget, up to
  ``ceiling``;
* any congestion signal -- a backpressure stall (the bound was reached
  while the head window was still evaluating), an inline fallback (the
  transport degraded), the backend's ``queue_depth()`` rising well above
  its smoothed history (work piling up behind the dispatchers), or the
  gather latency jumping above *its* smoothed history -- cuts the target
  multiplicatively (``decrease``), never below ``floor``.

The multiplicative cut reacts within one gather to an overload; the
additive ramp then probes capacity back one window at a time, so the
target oscillates just under the true capacity instead of camping on a
constant.  The controller is deliberately clock-free and deterministic:
it sees only the numbers the caller feeds it (:meth:`observe_gather`),
which is what lets the unit tests drive it with scripted traces and a
hypothesis property over arbitrary observation sequences.

Both session surfaces feed it from the same seam: the synchronous
:class:`~repro.streamrule.session.StreamSession` (pass
``max_inflight="adaptive"`` or a controller instance) and the asyncio
:class:`~repro.streamrule.aio.AsyncStreamSession` call it once per
gathered window with the window's dispatch-to-gather latency, the
backend's queue depth, and the stall/fallback flags.  The resulting
state is exported through :class:`~repro.streamrule.metrics.IngestionStats`
(``inflight_target``, ``aimd_increases``, ``aimd_backoffs``) and from
there the query server's Prometheus endpoint.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AdaptiveInflightController", "DEFAULT_CEILING"]

#: Default ceiling of the adaptive target.  High enough to keep a large
#: fleet's slots busy, low enough that a runaway ramp cannot buffer an
#: unbounded number of windows before the first congestion signal.
DEFAULT_CEILING = 32


class AdaptiveInflightController:
    """AIMD controller for the session's in-flight window bound.

    The protocol is one call per gathered window::

        controller.observe_gather(
            latency_seconds=...,   # the window's dispatch-to-gather span
            queue_depth=...,       # backend.queue_depth() at gather time
            stalled=...,           # did backpressure block the producer?
            failed=...,            # did any partition fall back inline?
        )
        limit = controller.target  # the bound for the next dispatch

    ``target`` is always an int within ``[floor, ceiling]``.  Congestion
    is judged from four independent signals (any one suffices):

    * ``stalled`` -- the producer blocked on the head window;
    * ``failed`` -- the transport degraded to an inline fallback;
    * ``queue_depth > depth_factor * EWMA(queue_depth)`` once the smoothed
      depth has warmed up -- the backend's queue *rising* well above its
      recent history (the absolute depth is meaningless to one session
      when the backend is shared by hundreds: whatever the steady level,
      only a jump signals congestion);
    * ``latency_seconds > latency_factor * EWMA`` once the smoothed
      latency has warmed up (``warmup`` observations) -- the gather
      latency jumped above its recent history.

    ``backoffs`` counts congestion observations (including those clamped
    at the floor -- the signal fired either way); ``increases`` counts
    ramps that actually raised the integer target, so a controller parked
    at the ceiling stops counting.
    """

    def __init__(
        self,
        *,
        initial: Optional[int] = None,
        floor: int = 1,
        ceiling: int = DEFAULT_CEILING,
        increase: float = 1.0,
        decrease: float = 0.5,
        depth_factor: float = 2.0,
        latency_factor: float = 2.0,
        ewma_alpha: float = 0.2,
        warmup: int = 3,
    ):
        if floor < 1:
            raise ValueError("floor must be at least 1")
        if ceiling < floor:
            raise ValueError("ceiling must be at least the floor")
        if increase <= 0.0:
            raise ValueError("increase must be positive")
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if depth_factor <= 1.0:
            raise ValueError("depth_factor must exceed 1")
        if latency_factor <= 1.0:
            raise ValueError("latency_factor must exceed 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if warmup < 1:
            raise ValueError("warmup must be at least 1")
        self.floor = floor
        self.ceiling = ceiling
        self.increase = increase
        self.decrease = decrease
        self.depth_factor = depth_factor
        self.latency_factor = latency_factor
        self.ewma_alpha = ewma_alpha
        self.warmup = warmup
        if initial is None:
            initial = min(ceiling, max(floor, 4))
        if not floor <= initial <= ceiling:
            raise ValueError("initial must be within [floor, ceiling]")
        self._target = float(initial)
        self._latency_ewma: Optional[float] = None
        self._depth_ewma: Optional[float] = None
        self._observations = 0
        #: Ramps that raised the integer target (additive increases).
        self.increases = 0
        #: Congestion observations that cut the target (multiplicative
        #: decreases), floor-clamped cuts included.
        self.backoffs = 0

    @property
    def target(self) -> int:
        """The current in-flight bound, an int in ``[floor, ceiling]``."""
        return max(self.floor, min(self.ceiling, int(self._target)))

    def observe_gather(
        self,
        *,
        latency_seconds: float = 0.0,
        queue_depth: Optional[int] = None,
        stalled: bool = False,
        failed: bool = False,
    ) -> int:
        """Feed one gathered window's record; returns the new target."""
        congested = stalled or failed
        if (
            not congested
            and queue_depth is not None
            and self._depth_ewma is not None
            and self._observations >= self.warmup
            and queue_depth > self.depth_factor * max(self._depth_ewma, 1.0)
        ):
            congested = True
        if (
            not congested
            and self._latency_ewma is not None
            and self._observations >= self.warmup
            and latency_seconds > self.latency_factor * self._latency_ewma
        ):
            congested = True

        if congested:
            self.backoffs += 1
            self._target = max(float(self.floor), self._target * self.decrease)
            # A congested window's latency and depth are queueing, not
            # capacity; keep them out of the smoothed histories so one
            # stall does not poison the baseline the next windows are
            # judged against.
        else:
            before = self.target
            self._target = min(float(self.ceiling), self._target + self.increase)
            if self.target > before:
                self.increases += 1
            if queue_depth is not None:
                if self._depth_ewma is None:
                    self._depth_ewma = float(queue_depth)
                else:
                    self._depth_ewma += self.ewma_alpha * (queue_depth - self._depth_ewma)
            if latency_seconds > 0.0:
                if self._latency_ewma is None:
                    self._latency_ewma = latency_seconds
                else:
                    self._latency_ewma += self.ewma_alpha * (latency_seconds - self._latency_ewma)
            if latency_seconds > 0.0 or queue_depth is not None:
                self._observations += 1
        return self.target

    @property
    def latency_ewma_seconds(self) -> float:
        """The smoothed clean-gather latency (0.0 until the first sample)."""
        return self._latency_ewma or 0.0

    @property
    def depth_ewma(self) -> float:
        """The smoothed clean-gather queue depth (0.0 until the first sample)."""
        return self._depth_ewma or 0.0

    def reset_latency(self) -> None:
        """Forget the smoothed histories (e.g. after a program/window change)."""
        self._latency_ewma = None
        self._depth_ewma = None
        self._observations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveInflightController(target={self.target}, "
            f"increases={self.increases}, backoffs={self.backoffs})"
        )
