"""The wire layer shared by the TCP backend and the worker daemon.

This module is the single source of truth for how StreamRule work travels
between machines.  Everything here is transport mechanics; *what* gets
evaluated is still a :class:`~repro.streamrule.work.WorkItem` and *what*
comes back is still a :class:`~repro.streamrule.reasoner.ReasonerResult` --
the same partition/combine protocol the loopback backend proved survives a
wire, now behind a versioned handshake on a real TCP socket.

Frame format
------------
Every message after the 4-byte connection magic is one *frame*::

    +--------------------+-----------+----------------------+
    | length  (uint32 BE)| kind (u8) | payload (length bytes)|
    +--------------------+-----------+----------------------+

``kind`` is a :class:`FrameKind`; payloads are pickled Python values
(pickle protocol :data:`pickle.HIGHEST_PROTOCOL`).  The full frame grammar,
the handshake sequence, and the failure semantics are specified in
``docs/wire-protocol.md``.

Handshake
---------
1. client sends :data:`MAGIC` + ``HELLO {protocol, capabilities}``;
2. server answers ``WELCOME {protocol, capabilities}`` (the accepted subset)
   or ``REJECT {protocol, reason}`` on a version mismatch;
3. client ships the pickled reasoner in a ``REASONER`` frame;
4. server instantiates it and answers ``READY``; work frames may now flow.

Capability negotiation keeps the protocol forward-compatible: a capability
is active only when *both* peers named it in the handshake, so a new
coordinator talking to an old worker silently degrades (e.g. to full-fact
shipping) instead of breaking.

Pipelined frames
----------------
The connection is *not* strict request/response: a coordinator may have
several ``WORK``/``DELTA`` (and ``PING``) frames outstanding at once.  The
server always answers strictly in request order, which is what lets the
client match responses to callers with a plain FIFO ticket queue
(:class:`WorkerClient`) and lets the worker read and decode ahead of its
evaluation loop (``read_ahead`` in :func:`serve_worker_connection`).  Any
transport error still kills the whole connection -- in-flight frames are
failed at the client and resubmitted elsewhere by the fleet.

Delta shipping
--------------
On a sliding window, consecutive work items of one track share most of
their facts: the window drops its ``slide`` oldest items and appends the
new arrivals.  When the ``delta_shipping`` capability is negotiated, the
client-side :class:`DeltaShipper` and the server-side :class:`DeltaDecoder`
each remember the previous fact tuple per track, and steady-state items
travel as :class:`FactDelta` frames -- copy-runs over the previous window
plus the literal arrivals (see :func:`diff_facts`) -- instead of full fact
sets.  This is the wire-level
sibling of delta *grounding*: the same overlap that lets a worker repair
its previous instantiation lets the coordinator skip re-sending the
overlapping facts, so a ``WindowDelta``-sized frame replaces a window-sized
one (and :meth:`WorkItem.thinned`'s "never ship the delta twice" concern
disappears entirely on this transport).

Both peers update their per-track state in lockstep -- the client when it
encodes, the server when it decodes -- and a transport error closes the
connection, so the states can never silently diverge: a reconnected client
starts from an empty shipper and re-sends full facts.

Interned symbol ids
-------------------
Under the ``symbol_ids`` capability the peers additionally maintain a
per-connection replica pair of append-only
:class:`~repro.asp.syntax.symbols.SymbolTable`\\ s.  The shipper interns
every fact and sends the table's new tail ahead of the work frame as a
one-way ``SYMBOLS`` frame (a pickled
:class:`~repro.asp.syntax.symbols.SymbolDelta`; no response, so the FIFO
response order is undisturbed); work frames then carry flat u32 id arrays
(:class:`IdWorkItem`, or :class:`IdFactDelta` copy-runs on a sliding
window) instead of pickled atoms.  In steady state every fact in a window
has already been interned by an earlier window, so the wire cost of a
window collapses to ``4 bytes x |window|`` -- and, like delta shipping,
any desync kills the connection and both sides restart from empty tables.

Security
--------
In the default (``pickle``) codec the payloads are **pickles**: unpickling
executes arbitrary code by design, so run pickle-codec workers only on
trusted networks.  Three hardening layers are available for everything
else (see ``docs/deployment-security.md``):

* **TLS** -- pass an :class:`ssl.SSLContext` to the client
  (``ssl_context=``) and the daemon (``--tls-cert/--tls-key``); the TCP
  stream is wrapped before the first protocol byte.
* **Token auth** -- when the daemon holds a shared token, its ``WELCOME``
  carries a ``nonce`` and the client must answer with an ``AUTH`` frame
  containing ``HMAC-SHA256(token, nonce)`` before the reasoner is
  accepted; a bad or missing MAC is ``REJECT``\\ ed (a loud
  :class:`HandshakeError` at the client, never a hang).
* **Restricted codec** -- the ``restricted_codec`` capability switches
  every payload after the handshake to a JSON/packed-id schema
  (:mod:`repro.streamrule.codec`): the program ships as *text*, facts as
  structural encodings + u32 id arrays, results as packed ids against a
  worker-mastered response table.  A restricted peer never calls
  ``pickle.loads`` on network bytes; anything that would require pickle is
  ``REJECT``\\ ed instead.

Control frames (``HELLO``/``WELCOME``/``REJECT``) are self-describing:
new peers send compact JSON (first byte ``{``), old peers pickled dicts
(first byte ``\\x80``), and each side answers in the encoding it was
addressed in -- so the two generations interoperate without a protocol
version bump.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import json
import pickle
import queue
import secrets
import socket
import ssl
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.asp.syntax.symbols import SymbolDelta, SymbolTable, pack_ids, unpack_ids
from repro.streamrule.errors import (
    BackendConnectionError,
    BackendError,
    HandshakeError,
    ProtocolError,
)
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.work import WorkFact, WorkItem

__all__ = [
    "DEFAULT_CAPABILITIES",
    "DeltaDecoder",
    "DeltaShipper",
    "FactDelta",
    "FrameKind",
    "IdFactDelta",
    "IdWorkItem",
    "MAGIC",
    "PROTOCOL_VERSION",
    "RemoteFailure",
    "WireStats",
    "WorkerClient",
    "announce_endpoint",
    "apply_facts_diff",
    "apply_id_runs",
    "auth_mac",
    "build_announce",
    "build_hello",
    "connect_with_backoff",
    "decode_result",
    "diff_facts",
    "diff_id_runs",
    "encode_reasoner_payload",
    "parse_announce",
    "parse_welcome",
    "parse_welcome_fields",
    "recv_frame",
    "send_frame",
    "serve_worker_connection",
]

#: First bytes of every connection; lets a worker reject stray connections
#: (port scanners, misdirected HTTP) before touching pickle.
MAGIC = b"SRW1"

#: Version of the frame grammar + handshake.  Bumped on incompatible
#: changes; peers with different versions refuse each other in the
#: handshake (``REJECT``) rather than misparsing frames.  Backwards-
#: compatible extensions (new optional capabilities) do NOT bump this.
PROTOCOL_VERSION = 1

#: Capabilities this build can negotiate (name -> default offer).
#: ``delta_shipping``: steady-state windows travel as copy-run deltas.
#: ``symbol_ids``: facts are interned per connection (``SYMBOLS`` frames
#: sync the table) and work items carry flat id arrays instead of
#: pickled atom graphs.
DEFAULT_CAPABILITIES: Dict[str, bool] = {"delta_shipping": True, "symbol_ids": True}

_FRAME_HEADER = struct.Struct(">IB")

#: Upper bound on a single frame payload; a length beyond this is treated
#: as a protocol violation (corrupt header) rather than an allocation.
MAX_FRAME_BYTES = 1 << 30


class FrameKind(enum.IntEnum):
    """Discriminator byte of every frame on the wire."""

    HELLO = 1  #: client -> server: ``{protocol, capabilities}``
    WELCOME = 2  #: server -> client: ``{protocol, capabilities}`` (accepted)
    REJECT = 3  #: server -> client: ``{protocol, reason}``; connection closes
    REASONER = 4  #: client -> server: pickled :class:`Reasoner`
    READY = 5  #: server -> client: reasoner installed, work may flow
    WORK = 6  #: client -> server: pickled thinned :class:`WorkItem` (or :class:`IdWorkItem`)
    DELTA = 7  #: client -> server: pickled :class:`FactDelta` (or :class:`IdFactDelta`)
    RESULT = 8  #: server -> client: pickled :class:`ReasonerResult` or :class:`RemoteFailure`
    PING = 9  #: either direction: heartbeat probe (empty payload)
    PONG = 10  #: heartbeat reply (empty payload)
    SYMBOLS = 11  #: client -> server: pickled :class:`SymbolDelta`; one-way, no response
    ANNOUNCE = 12  #: worker -> registry: JSON ``{host, port, protocol}``; answered with ``PONG``
    AUTH = 13  #: client -> server: JSON ``{mac}`` proving knowledge of the shared token


# --------------------------------------------------------------------------- #
# Framing primitives
# --------------------------------------------------------------------------- #
def send_frame(connection: socket.socket, kind: FrameKind, payload: bytes = b"") -> None:
    """Write one ``length | kind | payload`` frame."""
    connection.sendall(_FRAME_HEADER.pack(len(payload), kind) + payload)


def recv_exactly(connection: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`EOFError` on a closed peer."""
    chunks = []
    while count:
        chunk = connection.recv(count)
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(connection: socket.socket) -> Tuple[FrameKind, bytes]:
    """Read one frame; returns ``(kind, payload)``."""
    length, kind = _FRAME_HEADER.unpack(recv_exactly(connection, _FRAME_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte bound")
    try:
        frame_kind = FrameKind(kind)
    except ValueError as error:
        raise ProtocolError(f"unknown frame kind {kind!r}") from error
    return frame_kind, recv_exactly(connection, length)


def _dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


# --------------------------------------------------------------------------- #
# Control-frame encoding (HELLO / WELCOME / REJECT / AUTH / ANNOUNCE)
# --------------------------------------------------------------------------- #
def dumps_json(value: Any) -> bytes:
    """Compact JSON control payload (first byte is always ``{``)."""
    return json.dumps(value, separators=(",", ":")).encode("utf-8")


def loads_control(payload: bytes, *, allow_pickle: bool = True) -> Dict[str, Any]:
    """Decode a control payload, sniffing JSON (``{``) vs pickle (``\\x80``).

    JSON is what current peers send; pickled dicts are the pre-auth
    spelling and stay accepted in the default trust model.  A restricted
    peer passes ``allow_pickle=False`` and never touches ``pickle.loads``
    for network bytes: a pickled control frame raises
    :class:`ProtocolError` instead of being decoded.
    """
    if payload[:1] == b"{":
        try:
            value = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"undecodable JSON control payload: {error!r}") from error
    elif allow_pickle:
        value = pickle.loads(payload)
    else:
        raise ProtocolError("pickled control frame refused (restricted codec)")
    if not isinstance(value, dict):
        raise ProtocolError(f"control payload must be a mapping, got {type(value).__name__}")
    return value


def auth_mac(token: str, nonce: str) -> str:
    """The ``AUTH`` proof: hex ``HMAC-SHA256(token, nonce)``.

    The token itself never crosses the wire; the server challenges with a
    fresh nonce per connection, so a captured MAC cannot be replayed
    against a later handshake.
    """
    return hmac.new(token.encode("utf-8"), nonce.encode("utf-8"), hashlib.sha256).hexdigest()


@dataclass
class RemoteFailure:
    """Wire wrapper distinguishing a worker-side exception from a result.

    Shared by the loopback and TCP transports: an evaluation error on the
    worker is pickled inside this wrapper, shipped back as a ``RESULT``
    frame, and re-raised at the caller -- the connection itself survives.
    """

    error: BaseException

    def rebuild(self) -> BaseException:
        return self.error


# --------------------------------------------------------------------------- #
# Shard-side fact-delta shipping
# --------------------------------------------------------------------------- #
#: An encoded delta operation: either ``(start, length)`` -- copy that run
#: from the previous fact tuple -- or a tuple of literal facts to insert.
FactDeltaOp = Union[Tuple[int, int], Tuple[WorkFact, ...]]

#: Minimum matched run worth encoding as a copy op; shorter matches travel
#: as literals (a copy op costs ~20 pickled bytes).
MIN_COPY_RUN = 4

#: Duplicate-fact bound: at most this many candidate positions are probed
#: per fact when matching, so degenerate streams (one fact repeated
#: thousands of times) stay linear.
MAX_MATCH_CANDIDATES = 8


@dataclass(frozen=True)
class FactDelta:
    """The wire form of a steady-state sliding-window work item.

    ``ops`` reconstructs the fact tuple against the track's previous facts
    -- copy runs for the content both windows share, literals for the
    arrivals -- so the frame size scales with the *change*, not the window;
    all other :class:`WorkItem` coordinates travel verbatim.
    """

    track: int
    epoch: int
    incremental: Optional[bool]
    ops: Tuple[FactDeltaOp, ...]


def _is_copy_op(op: FactDeltaOp) -> bool:
    return len(op) == 2 and isinstance(op[0], int) and isinstance(op[1], int)


def overlap_length(previous: Tuple[WorkFact, ...], current: Tuple[WorkFact, ...]) -> int:
    """Largest ``k`` with ``previous[-k:] == current[:k]`` (0 when disjoint).

    This is exactly the sliding-window overlap structure
    (:class:`~repro.streaming.window.WindowDelta`): expired facts are a
    prefix of the previous window, arrived facts a suffix of the current
    one.  Kept as the reference model (and test oracle) of the overlap the
    shipper exploits; the production encoder is :func:`diff_facts`, which
    generalizes this to partitioners that regroup facts, so this helper is
    deliberately not part of the module's ``__all__`` surface.
    """
    if not previous or not current:
        return 0
    first = current[0]
    for index, fact in enumerate(previous):
        if fact == first:
            length = len(previous) - index
            if length <= len(current) and previous[index:] == current[:length]:
                return length
    return 0


def _diff_runs(previous: Tuple, current: Tuple) -> List[Tuple[bool, Tuple]]:
    """Greedy longest-run matcher shared by the fact and id delta forms.

    Returns tagged runs ``(is_copy, payload)``: copies carry ``(start,
    length)`` into ``previous``, literal runs carry the items themselves.
    Tagging matters for the id form, where a two-int literal run would be
    indistinguishable from a copy op.
    """
    index: Dict[Any, List[int]] = {}
    for position, fact in enumerate(previous):
        index.setdefault(fact, []).append(position)
    runs: List[Tuple[bool, Tuple]] = []
    literals: List[Any] = []
    cursor = 0
    total = len(current)
    while cursor < total:
        best_position = -1
        best_length = 0
        for position in index.get(current[cursor], ())[:MAX_MATCH_CANDIDATES]:
            length = 0
            while (
                position + length < len(previous)
                and cursor + length < total
                and previous[position + length] == current[cursor + length]
            ):
                length += 1
            if length > best_length:
                best_length, best_position = length, position
        if best_length >= MIN_COPY_RUN:
            if literals:
                runs.append((False, tuple(literals)))
                literals = []
            runs.append((True, (best_position, best_length)))
            cursor += best_length
        else:
            literals.append(current[cursor])
            cursor += 1
    if literals:
        runs.append((False, tuple(literals)))
    return runs


def diff_facts(previous: Tuple[WorkFact, ...], current: Tuple[WorkFact, ...]) -> Tuple[FactDeltaOp, ...]:
    """Encode ``current`` as copy-runs over ``previous`` plus literal facts.

    A greedy longest-run matcher (the delta-compression classic): for every
    position of ``current`` it probes where that fact occurs in
    ``previous`` and extends the longest contiguous match; runs of at least
    :data:`MIN_COPY_RUN` become ``(start, length)`` copy ops, everything
    else stays literal.  Cost is linear in practice (each probe either
    consumes a run or one literal).  This handles both overlap shapes the
    execution layer produces: order-preserving partitions (one long copy
    run -- the pure sliding window) and predicate-regrouping partitions
    (one copy run per predicate group straddling the slide).
    """
    return tuple(payload for _is_copy, payload in _diff_runs(previous, current))


def apply_facts_diff(previous: Tuple[WorkFact, ...], ops: Tuple[FactDeltaOp, ...]) -> Tuple[WorkFact, ...]:
    """Reconstruct the fact tuple :func:`diff_facts` encoded (exact order)."""
    parts: List[WorkFact] = []
    for op in ops:
        if _is_copy_op(op):
            start, length = op  # type: ignore[misc]
            if not (0 <= start and length >= 0 and start + length <= len(previous)):
                raise ProtocolError(
                    f"copy op ({start}, {length}) out of range for a {len(previous)}-fact window"
                )
            parts.extend(previous[start : start + length])
        else:
            parts.extend(op)  # type: ignore[arg-type]
    return tuple(parts)


# --------------------------------------------------------------------------- #
# Interned-id wire forms (the ``symbol_ids`` capability)
# --------------------------------------------------------------------------- #
#: An id delta operation: ``(start, length)`` copies that run from the
#: previous id tuple; a ``bytes`` value is a packed literal id run
#: (:func:`repro.asp.syntax.symbols.pack_ids`).  The two are structurally
#: distinct, unlike int facts in :data:`FactDeltaOp` tuples.
IdRunOp = Union[Tuple[int, int], bytes]


@dataclass(frozen=True)
class IdWorkItem:
    """Full wire form of a work item under the ``symbol_ids`` capability.

    ``id_data`` is the window's fact tuple as a packed u32 id array against
    the connection's synced symbol table -- any symbol it references was
    shipped in an earlier (or the immediately preceding) ``SYMBOLS`` frame.
    """

    track: int
    epoch: int
    incremental: Optional[bool]
    id_data: bytes


@dataclass(frozen=True)
class IdFactDelta:
    """Delta wire form of a steady-state work item under ``symbol_ids``."""

    track: int
    epoch: int
    incremental: Optional[bool]
    ops: Tuple[IdRunOp, ...]


def diff_id_runs(previous: Tuple[int, ...], current: Tuple[int, ...]) -> Tuple[IdRunOp, ...]:
    """Encode an id tuple as copy runs over the previous one (id form of
    :func:`diff_facts`); literal runs are packed to bytes."""
    return tuple(
        payload if is_copy else pack_ids(payload) for is_copy, payload in _diff_runs(previous, current)
    )


def apply_id_runs(previous: Tuple[int, ...], ops: Tuple[IdRunOp, ...]) -> Tuple[int, ...]:
    """Reconstruct the id tuple :func:`diff_id_runs` encoded."""
    parts: List[int] = []
    for op in ops:
        if isinstance(op, bytes):
            parts.extend(unpack_ids(op))
        else:
            start, length = op
            if not (0 <= start and length >= 0 and start + length <= len(previous)):
                raise ProtocolError(
                    f"id copy op ({start}, {length}) out of range for a {len(previous)}-id window"
                )
            parts.extend(previous[start : start + length])
    return tuple(parts)


class DeltaShipper:
    """Client-side per-track encoder choosing full vs. delta wire forms.

    A delta frame is sent only when its encoded payload is actually smaller
    than the full fact set's -- so disjoint (tumbling/hopping) windows, and
    any window the matcher cannot compress, automatically travel full.

    With ``symbol_ids`` on, the shipper additionally interns every fact in
    a connection-scoped :class:`SymbolTable` and emits the table's new tail
    as a ``SYMBOLS`` frame ahead of the work frame
    (:meth:`encode_frames`); the work frames themselves then carry flat id
    arrays (:class:`IdWorkItem` / :class:`IdFactDelta`), so a steady-state
    window whose facts are all known to the peer crosses the wire without
    pickling a single atom.
    """

    def __init__(self, *, delta_shipping: bool = True, symbol_ids: bool = False) -> None:
        self._delta_shipping = delta_shipping
        self._previous: Dict[int, Tuple[WorkFact, ...]] = {}
        self._prev_ids: Dict[int, Tuple[int, ...]] = {}
        self._table: Optional[SymbolTable] = SymbolTable() if symbol_ids else None
        self._synced = 0

    def encode_frames(self, item: WorkItem) -> List[Tuple[FrameKind, bytes]]:
        """Encode ``item`` into the frames to send, in order.

        The last frame is always the work frame (``WORK`` or ``DELTA``);
        under ``symbol_ids`` it may be preceded by one ``SYMBOLS`` frame
        carrying the symbols the peer has not seen yet.  Track state (and
        the synced-table watermark) advances exactly as the peer's decoder
        will on receipt.
        """
        thin = item.thinned()
        if self._table is None:
            return [self._encode_facts(item, thin)]
        frames: List[Tuple[FrameKind, bytes]] = []
        ids = tuple(self._table.intern_many(item.facts))
        sync = self._table.diff_since(self._synced)
        if sync:
            frames.append((FrameKind.SYMBOLS, _dumps(sync)))
            self._synced = sync.stop
        previous = self._prev_ids.get(item.track)
        self._prev_ids[item.track] = ids
        full_payload = _dumps(
            IdWorkItem(track=item.track, epoch=item.epoch, incremental=thin.incremental, id_data=pack_ids(ids))
        )
        if self._delta_shipping and previous is not None:
            ops = diff_id_runs(previous, ids)
            if any(not isinstance(op, bytes) for op in ops):
                delta_payload = _dumps(
                    IdFactDelta(
                        track=item.track,
                        epoch=item.epoch,
                        incremental=item.wants_incremental,
                        ops=ops,
                    )
                )
                if len(delta_payload) < len(full_payload):
                    frames.append((FrameKind.DELTA, delta_payload))
                    return frames
        frames.append((FrameKind.WORK, full_payload))
        return frames

    def encode(self, item: WorkItem) -> Tuple[FrameKind, bytes]:
        """Encode ``item`` as a single work frame (legacy, pre-``symbol_ids``)."""
        frames = self.encode_frames(item)
        if len(frames) != 1:
            raise RuntimeError("a symbol-id shipper may emit SYMBOLS frames; use encode_frames")
        return frames[0]

    def _encode_facts(self, item: WorkItem, thin: WorkItem) -> Tuple[FrameKind, bytes]:
        previous = self._previous.get(item.track)
        self._previous[item.track] = item.facts
        full_payload = _dumps(thin)
        if self._delta_shipping and previous is not None:
            ops = diff_facts(previous, item.facts)
            if any(_is_copy_op(op) for op in ops):
                delta_payload = _dumps(
                    FactDelta(
                        track=item.track,
                        epoch=item.epoch,
                        incremental=item.wants_incremental,
                        ops=ops,
                    )
                )
                if len(delta_payload) < len(full_payload):
                    return FrameKind.DELTA, delta_payload
        return FrameKind.WORK, full_payload

    def forget(self, track: Optional[int] = None) -> None:
        """Drop the remembered facts (all tracks, or one)."""
        if track is None:
            self._previous.clear()
            self._prev_ids.clear()
        else:
            self._previous.pop(track, None)
            self._prev_ids.pop(track, None)


class DeltaDecoder:
    """Server-side per-track decoder mirroring :class:`DeltaShipper`.

    Holds the replica :class:`SymbolTable` of the connection: ``SYMBOLS``
    frames append to it (:meth:`apply_symbols`), and id-form work frames
    resolve their id arrays against it.  An id the table cannot resolve
    means a lost ``SYMBOLS`` frame -- the error propagates and kills the
    connection, exactly like a desynced fact delta.
    """

    def __init__(self) -> None:
        self._previous: Dict[int, Tuple[WorkFact, ...]] = {}
        self._prev_ids: Dict[int, Tuple[int, ...]] = {}
        self._table = SymbolTable()

    def apply_symbols(self, payload: bytes) -> int:
        """Apply a ``SYMBOLS`` frame; returns the number of new symbols."""
        delta: SymbolDelta = pickle.loads(payload)
        return self._table.apply(delta)

    def decode(self, kind: FrameKind, payload: bytes) -> WorkItem:
        """Rebuild the :class:`WorkItem` of a ``WORK`` or ``DELTA`` frame."""
        value = pickle.loads(payload)
        if kind is FrameKind.WORK:
            if isinstance(value, IdWorkItem):
                ids = unpack_ids(value.id_data)
                facts = self._table.resolve_many(ids)
                self._prev_ids[value.track] = ids
                return WorkItem(
                    facts=facts, track=value.track, epoch=value.epoch, incremental=value.incremental
                )
            item: WorkItem = value
            self._previous[item.track] = item.facts
            return item
        if isinstance(value, IdFactDelta):
            previous_ids = self._prev_ids.get(value.track)
            if previous_ids is None:
                raise ProtocolError(f"DELTA frame for track {value.track} without a previous full window")
            ids = apply_id_runs(previous_ids, value.ops)
            self._prev_ids[value.track] = ids
            facts = self._table.resolve_many(ids)
            return WorkItem(facts=facts, track=value.track, epoch=value.epoch, incremental=value.incremental)
        delta: FactDelta = value
        previous = self._previous.get(delta.track)
        if previous is None:
            raise ProtocolError(f"DELTA frame for track {delta.track} without a previous full window")
        facts = apply_facts_diff(previous, delta.ops)
        self._previous[delta.track] = facts
        return WorkItem(facts=facts, track=delta.track, epoch=delta.epoch, incremental=delta.incremental)


# --------------------------------------------------------------------------- #
# Wire accounting
# --------------------------------------------------------------------------- #
@dataclass
class WireStats:
    """Per-connection traffic counters (payload bytes, excluding headers)."""

    items_full: int = 0  #: work items shipped as full fact sets
    items_delta: int = 0  #: work items shipped as :class:`FactDelta` frames
    bytes_full: int = 0  #: payload bytes of the full items
    bytes_delta: int = 0  #: payload bytes of the delta items
    symbol_frames: int = 0  #: ``SYMBOLS`` table-sync frames sent
    bytes_symbols: int = 0  #: payload bytes of the symbol-sync frames
    bytes_in: int = 0  #: result payload bytes received
    pings: int = 0  #: heartbeat round trips completed

    @property
    def items(self) -> int:
        return self.items_full + self.items_delta

    @property
    def bytes_out(self) -> int:
        return self.bytes_full + self.bytes_delta + self.bytes_symbols

    def merged_with(self, other: "WireStats") -> "WireStats":
        return WireStats(
            items_full=self.items_full + other.items_full,
            items_delta=self.items_delta + other.items_delta,
            bytes_full=self.bytes_full + other.bytes_full,
            bytes_delta=self.bytes_delta + other.bytes_delta,
            symbol_frames=self.symbol_frames + other.symbol_frames,
            bytes_symbols=self.bytes_symbols + other.bytes_symbols,
            bytes_in=self.bytes_in + other.bytes_in,
            pings=self.pings + other.pings,
        )


# --------------------------------------------------------------------------- #
# Handshake grammar shared by the sync and asyncio clients
# --------------------------------------------------------------------------- #
def build_hello(
    delta_shipping: bool, symbol_ids: bool, *, restricted: bool = False
) -> Tuple[bytes, Dict[str, bool]]:
    """Build the ``HELLO`` payload; returns ``(payload, offered)``.

    One spelling of the capability offer for every client implementation
    (:class:`WorkerClient` and the asyncio client in
    :mod:`repro.streamrule.aio`), so the two cannot drift.  ``restricted``
    additionally offers the ``restricted_codec`` capability -- the client
    must then refuse the connection (:class:`HandshakeError`) if the
    server's ``WELCOME`` does not accept it.
    """
    offered = dict(DEFAULT_CAPABILITIES)
    offered["delta_shipping"] = delta_shipping
    offered["symbol_ids"] = symbol_ids
    if restricted:
        offered["restricted_codec"] = True
    return dumps_json({"protocol": PROTOCOL_VERSION, "capabilities": offered}), offered


def parse_welcome_fields(
    kind: FrameKind,
    payload: bytes,
    offered: Dict[str, bool],
    address: Tuple[str, int],
    *,
    allow_pickle: bool = True,
) -> Tuple[Dict[str, bool], Dict[str, Any]]:
    """Validate the server's handshake answer.

    Returns ``(accepted capabilities, raw welcome fields)`` -- the raw
    fields carry handshake extensions such as the auth ``nonce``.  Raises
    :class:`HandshakeError` on a ``REJECT`` or a protocol-version mismatch
    and :class:`ProtocolError` on any other frame kind.  A capability is
    active only when both the offer and the ``WELCOME`` named it.
    """
    if kind is FrameKind.REJECT:
        reject = loads_control(payload, allow_pickle=allow_pickle)
        raise HandshakeError(
            f"worker {address[0]}:{address[1]} rejected the handshake: "
            f"{reject.get('reason', 'unspecified')} "
            f"(worker protocol {reject.get('protocol')}, ours {PROTOCOL_VERSION})"
        )
    if kind is not FrameKind.WELCOME:
        raise ProtocolError(f"expected WELCOME, got {kind.name}")
    welcome = loads_control(payload, allow_pickle=allow_pickle)
    if welcome.get("protocol") != PROTOCOL_VERSION:
        raise HandshakeError(
            f"worker {address[0]}:{address[1]} speaks protocol "
            f"{welcome.get('protocol')}, this client speaks {PROTOCOL_VERSION}"
        )
    accepted = {
        name: True for name, on in welcome.get("capabilities", {}).items() if on and offered.get(name)
    }
    return accepted, welcome


def parse_welcome(
    kind: FrameKind, payload: bytes, offered: Dict[str, bool], address: Tuple[str, int]
) -> Dict[str, bool]:
    """Capabilities-only view of :func:`parse_welcome_fields` (stable API)."""
    accepted, _ = parse_welcome_fields(kind, payload, offered, address)
    return accepted


def encode_reasoner_payload(reasoner: Reasoner, codec: str = "pickle") -> bytes:
    """Build the ``REASONER`` frame payload for the given codec.

    The one place the pickle/restricted fork of the reasoner-shipping path
    lives: ``"pickle"`` ships the object itself, ``"restricted"`` ships
    the textual spec (:func:`repro.streamrule.codec.encode_reasoner_spec`)
    the worker rebuilds by *parsing*.  Both backends (sync and asyncio)
    call this so the two cannot drift.
    """
    if codec == "restricted":
        from repro.streamrule.codec import encode_reasoner_spec

        return encode_reasoner_spec(reasoner)
    return pickle.dumps(reasoner, protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(payload: bytes, address: Tuple[str, int]) -> ReasonerResult:
    """Unpickle a ``RESULT`` payload, re-raising wrapped worker failures.

    Raises :class:`ProtocolError` on an undecodable payload (the caller
    must then abort the connection -- the stream can no longer be trusted)
    and the original worker-side exception when the payload is a
    :class:`RemoteFailure`.
    """
    try:
        value = pickle.loads(payload)
    except Exception as error:
        raise ProtocolError(f"undecodable RESULT payload from {address}: {error!r}") from error
    if isinstance(value, RemoteFailure):
        raise value.rebuild()
    return value


# --------------------------------------------------------------------------- #
# Connecting with bounded exponential backoff
# --------------------------------------------------------------------------- #
def connect_with_backoff(
    address: Tuple[str, int],
    *,
    attempts: int = 5,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    connect_timeout: float = 5.0,
    sleep: Callable[[float], None] = time.sleep,
    ssl_context: Optional[ssl.SSLContext] = None,
    server_hostname: Optional[str] = None,
) -> socket.socket:
    """TCP-connect to ``address``, retrying with exponential backoff.

    Makes up to ``attempts`` attempts; attempt ``i`` (0-based) is preceded
    by a ``min(max_delay, base_delay * 2**(i-1))`` pause.  Raises
    :class:`BackendConnectionError` once the budget is exhausted.  ``sleep``
    is injectable so tests can assert the schedule without waiting it out.

    With ``ssl_context`` the socket is TLS-wrapped (and the TLS handshake
    completed, still under ``connect_timeout``) before it is returned.  A
    TLS *negotiation* failure -- certificate rejected, or the peer is
    speaking plaintext SRW1 -- is permanent, not transient, so it raises
    :class:`HandshakeError` immediately instead of burning the retry
    budget.
    """
    if attempts < 1:
        raise ValueError("at least one connection attempt is required")
    delay = base_delay
    failure: Optional[Exception] = None
    for attempt in range(attempts):
        if attempt:
            sleep(delay)
            delay = min(max_delay, delay * 2)
        try:
            connection = socket.create_connection(address, timeout=connect_timeout)
        except OSError as error:
            failure = error
            continue
        if ssl_context is not None:
            try:
                connection = ssl_context.wrap_socket(
                    connection, server_hostname=server_hostname or address[0]
                )
            except (ssl.SSLError, OSError) as error:
                # A reset here means the peer is not speaking TLS at all
                # (e.g. a plaintext SRW1 daemon read our ClientHello as bad
                # magic) -- as permanent as a certificate rejection.
                try:
                    connection.close()
                except OSError:
                    pass
                raise HandshakeError(
                    f"TLS handshake with worker {address[0]}:{address[1]} failed: {error!r}"
                ) from error
        connection.settimeout(None)  # evaluations may legitimately take long
        return connection
    raise BackendConnectionError(
        f"could not connect to worker {address[0]}:{address[1]} after {attempts} attempts: {failure!r}"
    ) from failure


# --------------------------------------------------------------------------- #
# Worker announce (registry rejoin)
# --------------------------------------------------------------------------- #
def build_announce(host: str, port: int) -> bytes:
    """The ``ANNOUNCE`` payload a worker sends to a fleet registry."""
    return dumps_json({"host": host, "port": int(port), "protocol": PROTOCOL_VERSION})


def parse_announce(payload: bytes) -> Tuple[str, int]:
    """Validate an ``ANNOUNCE`` payload; returns ``(host, port)``.

    Announce frames are always JSON -- a registry never unpickles, whatever
    its codec, because announces arrive from the *unauthenticated* edge of
    the fleet (the whole point is hearing from workers we lost).
    """
    fields = loads_control(payload, allow_pickle=False)
    if fields.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(f"ANNOUNCE speaks protocol {fields.get('protocol')}, not {PROTOCOL_VERSION}")
    host, port = fields.get("host"), fields.get("port")
    if not isinstance(host, str) or not isinstance(port, int) or not (0 < port < 65536):
        raise ProtocolError(f"malformed ANNOUNCE fields: host={host!r} port={port!r}")
    return host, port


def announce_endpoint(
    registry_address: Tuple[str, int],
    worker_address: Tuple[str, int],
    *,
    timeout: float = 2.0,
    ssl_context: Optional[ssl.SSLContext] = None,
    server_hostname: Optional[str] = None,
) -> bool:
    """One worker->registry announce round trip; ``True`` when acknowledged.

    Best-effort by design: the registry may not be up (yet, or anymore),
    so every failure is swallowed into ``False`` and the worker's announce
    loop simply tries again next interval.
    """
    try:
        connection = socket.create_connection(registry_address, timeout=timeout)
    except OSError:
        return False
    try:
        if ssl_context is not None:
            connection = ssl_context.wrap_socket(
                connection, server_hostname=server_hostname or registry_address[0]
            )
        connection.sendall(MAGIC)
        send_frame(connection, FrameKind.ANNOUNCE, build_announce(*worker_address))
        kind, _ = recv_frame(connection)
        return kind is FrameKind.PONG
    except (OSError, EOFError, ProtocolError):
        return False
    finally:
        try:
            connection.close()
        except OSError:
            pass


# --------------------------------------------------------------------------- #
# Client side: one framed connection to a worker
# --------------------------------------------------------------------------- #
class _Ticket:
    """One in-flight request awaiting its FIFO-ordered response frame."""

    __slots__ = ("event", "kind", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.kind: Optional[FrameKind] = None
        self.payload: Optional[bytes] = None
        self.error: Optional[BaseException] = None

    def resolve(self, kind: FrameKind, payload: bytes) -> None:
        self.kind, self.payload = kind, payload
        self.event.set()

    def fail(self, error: BaseException) -> None:
        if not self.event.is_set():
            self.error = error
            self.event.set()


class WorkerClient:
    """One handshaken connection to a worker daemon.

    Owns the socket, the negotiated capabilities, the per-track
    :class:`DeltaShipper`, and a :class:`WireStats` record.  The connection
    is *pipelined*: sends and receives are serialized separately, so several
    dispatcher threads (and the heartbeat) may each have a frame outstanding
    on the one socket at the same time -- the worker answers strictly in
    request order, so responses are matched to callers by a FIFO ticket
    queue rather than by locking the socket across the whole round trip.
    While one caller waits out a long evaluation, the next caller's frame is
    already in the worker's receive buffer (and, with server-side
    read-ahead, already decoded), which is what lets a pipelined session
    keep a remote worker saturated.  Any transport error closes the
    connection, raises at the caller that hit it, and fails every other
    in-flight ticket with :class:`BackendConnectionError` (their results can
    never arrive, so the fleet reroutes and resubmits them); a closed client
    is never reused -- the fleet builds a fresh one (with fresh, in-sync
    delta state) on reconnect.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        reasoner_payload: bytes,
        *,
        delta_shipping: bool = True,
        symbol_ids: bool = True,
        attempts: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        connect_timeout: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
        ssl_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
    ):
        if codec not in ("pickle", "restricted"):
            raise ValueError(f"codec must be 'pickle' or 'restricted', got {codec!r}")
        self.address = address
        self.codec = codec
        self.stats = WireStats()
        self._auth_token = auth_token
        #: Serializes frame *sends* (and the delta-shipper state, which must
        #: advance in wire order).
        self._send_lock = threading.Lock()
        #: At most one thread reads the socket at a time; responses are
        #: delivered to the head of the ticket queue.
        self._recv_lock = threading.Lock()
        #: Guards the ticket queue and the traffic counters.
        self._state_lock = threading.Lock()
        self._pending: Deque[_Ticket] = deque()
        self._sock: Optional[socket.socket] = connect_with_backoff(
            address,
            attempts=attempts,
            base_delay=base_delay,
            max_delay=max_delay,
            connect_timeout=connect_timeout,
            sleep=sleep,
            ssl_context=ssl_context,
            server_hostname=server_hostname,
        )
        try:
            self.capabilities = self._handshake(reasoner_payload, delta_shipping, symbol_ids)
        except BaseException:
            self.close()
            raise
        use_delta = bool(self.capabilities.get("delta_shipping"))
        use_ids = bool(self.capabilities.get("symbol_ids"))
        if self.capabilities.get("restricted_codec"):
            from repro.streamrule.codec import RestrictedResultDecoder, RestrictedShipper

            self._shipper: Any = RestrictedShipper(delta_shipping=use_delta)
            self._decode_result: Callable[[bytes, Tuple[str, int]], ReasonerResult] = (
                RestrictedResultDecoder().decode
            )
        else:
            self._shipper = (
                DeltaShipper(delta_shipping=use_delta, symbol_ids=use_ids)
                if (use_delta or use_ids)
                else None
            )
            self._decode_result = decode_result

    # -- lifecycle ------------------------------------------------------- #
    @property
    def alive(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- handshake ------------------------------------------------------- #
    def _handshake(self, reasoner_payload: bytes, delta_shipping: bool, symbol_ids: bool) -> Dict[str, bool]:
        """Run the client half of the handshake (MAGIC .. READY).

        A transport failure *here* -- the peer hung up mid-handshake, or
        fed us garbage -- is a :class:`HandshakeError`, not a retriable
        :class:`BackendConnectionError`: this is how a plaintext client
        talking to a TLS daemon (or vice versa) fails loudly instead of
        being endlessly re-dialed by the fleet's reconnect machinery.
        """
        sock = self._sock
        assert sock is not None
        restricted = self.codec == "restricted"
        hello, offered = build_hello(delta_shipping, symbol_ids, restricted=restricted)
        try:
            sock.sendall(MAGIC)
            send_frame(sock, FrameKind.HELLO, hello)
            kind, payload = recv_frame(sock)
        except (OSError, EOFError) as error:
            raise HandshakeError(f"handshake with {self.address} failed: {error!r}") from error
        accepted, welcome = parse_welcome_fields(
            kind, payload, offered, self.address, allow_pickle=not restricted
        )
        if restricted and not accepted.get("restricted_codec"):
            raise HandshakeError(
                f"worker {self.address[0]}:{self.address[1]} did not accept the restricted codec; "
                "refusing to fall back to pickle"
            )
        nonce = welcome.get("nonce")
        try:
            if nonce is not None:
                if not self._auth_token:
                    raise HandshakeError(
                        f"worker {self.address[0]}:{self.address[1]} requires token auth "
                        "and this client has no token"
                    )
                send_frame(sock, FrameKind.AUTH, dumps_json({"mac": auth_mac(self._auth_token, str(nonce))}))
            send_frame(sock, FrameKind.REASONER, reasoner_payload)
            kind, payload = recv_frame(sock)
        except (OSError, EOFError) as error:
            raise HandshakeError(f"handshake with {self.address} failed: {error!r}") from error
        if kind is FrameKind.REJECT:
            reject = loads_control(payload, allow_pickle=not restricted)
            raise HandshakeError(
                f"worker {self.address[0]}:{self.address[1]} rejected the handshake: "
                f"{reject.get('reason', 'unspecified')}"
            )
        if kind is not FrameKind.READY:
            raise ProtocolError(f"expected READY, got {kind.name}")
        return accepted

    # -- request/response ------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        """Frames sent whose responses have not yet arrived."""
        with self._state_lock:
            return len(self._pending)

    def _post(self, kind: FrameKind, payload: bytes) -> _Ticket:
        """Send one frame and enqueue its response ticket (FIFO order)."""
        sock = self._sock
        if sock is None:
            raise BackendConnectionError(f"connection to worker {self.address} is closed")
        ticket = _Ticket()
        try:
            send_frame(sock, kind, payload)
        except (OSError, BrokenPipeError) as error:
            failure = BackendConnectionError(f"connection to worker {self.address} lost: {error!r}")
            self._abort(failure)
            raise failure from error
        with self._state_lock:
            self._pending.append(ticket)
        return ticket

    def _await(self, ticket: _Ticket) -> Tuple[FrameKind, bytes]:
        """Block until ``ticket`` resolves, receiving frames when it is our turn.

        The elevator pattern: whichever waiter holds the receive lock reads
        response frames off the socket and delivers them to the head of the
        ticket queue (the worker answers strictly in request order) until its
        own ticket resolves; everyone else blocks on the lock or on their
        already-set event.
        """
        while not ticket.event.is_set():
            with self._recv_lock:
                if ticket.event.is_set():
                    continue
                self._receive_one()
        if ticket.error is not None:
            raise ticket.error
        assert ticket.kind is not None and ticket.payload is not None
        return ticket.kind, ticket.payload

    def _receive_one(self) -> None:
        """Receive one frame and resolve the oldest ticket (recv lock held)."""
        sock = self._sock
        if sock is None:
            failure = BackendConnectionError(f"connection to worker {self.address} is closed")
            self._abort(failure)
            raise failure
        try:
            kind, payload = recv_frame(sock)
        except ProtocolError as error:
            # The stream is desynced mid-frame; the connection can never
            # be trusted again (errors.py: a protocol violation closes
            # the connection).
            self._abort(error)
            raise
        except (OSError, EOFError) as error:
            failure = BackendConnectionError(f"connection to worker {self.address} lost: {error!r}")
            self._abort(failure)
            raise failure from error
        with self._state_lock:
            self.stats.bytes_in += len(payload)
            ticket = self._pending.popleft() if self._pending else None
        if ticket is None:
            failure = ProtocolError(f"unsolicited {kind.name} frame from {self.address}")
            self._abort(failure)
            raise failure
        ticket.resolve(kind, payload)

    def _abort(self, cause: BaseException) -> None:
        """Close the connection and fail every in-flight ticket.

        The pending results can never arrive once the stream is broken, so
        their waiters get :class:`BackendConnectionError` -- the signal the
        fleet answers by rerouting the slot and resubmitting the item.
        """
        self.close()
        with self._state_lock:
            pending, self._pending = list(self._pending), deque()
        if pending:
            failure = (
                cause
                if isinstance(cause, BackendConnectionError)
                else BackendConnectionError(f"connection to worker {self.address} aborted: {cause!r}")
            )
            for ticket in pending:
                ticket.fail(failure)

    def submit_item(self, item: WorkItem) -> ReasonerResult:
        """Ship one work item (full or delta form) and await its result.

        The send returns as soon as the frame is on the wire; the calling
        thread then waits on the FIFO ticket queue, so concurrent callers
        keep multiple work frames outstanding on this one connection.
        """
        with self._send_lock:
            sock = self._sock
            if sock is None:
                raise BackendConnectionError(f"connection to worker {self.address} is closed")
            if self._shipper is not None:
                frames = self._shipper.encode_frames(item)
            else:
                frames = [(FrameKind.WORK, _dumps(item.thinned()))]
            # Leading SYMBOLS frames are one-way (no response, so no ticket);
            # only the trailing work frame enters the FIFO ticket queue.
            for sync_kind, sync_payload in frames[:-1]:
                try:
                    send_frame(sock, sync_kind, sync_payload)
                except (OSError, BrokenPipeError) as error:
                    failure = BackendConnectionError(f"connection to worker {self.address} lost: {error!r}")
                    self._abort(failure)
                    raise failure from error
                with self._state_lock:
                    self.stats.symbol_frames += 1
                    self.stats.bytes_symbols += len(sync_payload)
            kind, payload = frames[-1]
            ticket = self._post(kind, payload)
            with self._state_lock:
                if kind is FrameKind.DELTA:
                    self.stats.items_delta += 1
                    self.stats.bytes_delta += len(payload)
                else:
                    self.stats.items_full += 1
                    self.stats.bytes_full += len(payload)
        response_kind, response = self._await(ticket)
        if response_kind is not FrameKind.RESULT:
            failure = ProtocolError(f"expected RESULT, got {response_kind.name}")
            self._abort(failure)
            raise failure
        try:
            return self._decode_result(response, self.address)
        except ProtocolError as failure:
            self._abort(failure)
            raise

    def ping(self) -> float:
        """Heartbeat round trip; returns the latency in seconds.

        On a pipelined connection the PONG queues behind the responses of
        the frames sent before it, so the reported latency includes any
        evaluation already in flight -- a heartbeat measures worker
        *liveness*, not idle round-trip time.
        """
        started = time.perf_counter()
        with self._send_lock:
            if self._sock is None:
                raise BackendConnectionError(f"connection to worker {self.address} is closed")
            ticket = self._post(FrameKind.PING, b"")
        kind, _ = self._await(ticket)
        if kind is not FrameKind.PONG:
            failure = ProtocolError(f"expected PONG, got {kind.name}")
            self._abort(failure)
            raise failure
        with self._state_lock:
            self.stats.pings += 1
        return time.perf_counter() - started

    def try_ping(self) -> bool:
        """Non-throwing heartbeat; ``False`` (and closed) on a dead peer."""
        try:
            self.ping()
            return True
        except BackendError:
            return False


# --------------------------------------------------------------------------- #
# Server side: the per-connection protocol loop
# --------------------------------------------------------------------------- #
@dataclass
class ServedConnection:
    """Outcome record of one served connection (returned for logging/tests)."""

    items: int = 0
    deltas: int = 0
    symbols: int = 0  #: SYMBOLS table-sync frames applied
    pings: int = 0
    rejected: Optional[str] = None
    capabilities: Dict[str, bool] = field(default_factory=dict)


def serve_worker_connection(
    connection: socket.socket,
    *,
    capabilities: Optional[Dict[str, bool]] = None,
    protocol_version: int = PROTOCOL_VERSION,
    reasoner_factory: Callable[[bytes], Reasoner] = pickle.loads,
    read_ahead: int = 8,
    auth_token: Optional[str] = None,
    codec: str = "pickle",
) -> ServedConnection:
    """Serve one coordinator connection until it closes.

    The server half of the protocol: validate magic, negotiate the
    handshake, install the shipped reasoner, then answer ``WORK`` /
    ``DELTA`` / ``PING`` frames until EOF.  Worker-side evaluation errors
    are wrapped in :class:`RemoteFailure` result frames; only transport
    errors end the loop.  Used by the daemon in
    :mod:`repro.streamrule.worker` (one call per accepted connection) and
    by in-process servers in the tests.

    ``read_ahead`` is the server half of connection pipelining: a reader
    thread receives and decodes up to that many frames ahead of the
    evaluation loop, so a pipelining coordinator's next window is already
    unpickled when the current evaluation finishes, and responses still go
    out strictly in request order (the invariant the client's FIFO ticket
    queue relies on).  The bound matters: once the queue is full the reader
    stops reading, the kernel's receive window fills, and the coordinator's
    sends block -- which is exactly how worker-side overload propagates back
    through the session's ``max_inflight`` bound to stall the producer.

    ``auth_token`` arms the challenge/response: the ``WELCOME`` carries a
    fresh nonce and the peer must answer with a valid ``AUTH`` MAC before
    its ``REASONER`` is looked at.  ``codec="restricted"`` *requires* the
    ``restricted_codec`` capability (rejecting pickle peers outright) and
    never unpickles a network byte; ``codec="pickle"`` still *speaks*
    restricted when the peer asks for it -- the capability decides the
    connection's dialect.
    """
    if codec not in ("pickle", "restricted"):
        raise ValueError(f"codec must be 'pickle' or 'restricted', got {codec!r}")
    record = ServedConnection()
    restricted_only = codec == "restricted"
    supported = dict(DEFAULT_CAPABILITIES) if capabilities is None else dict(capabilities)
    supported.setdefault("restricted_codec", True)
    try:
        try:
            magic = recv_exactly(connection, len(MAGIC))
        except (EOFError, OSError):
            return record
        if magic != MAGIC:
            record.rejected = "bad magic"
            return record
        kind, payload = recv_frame(connection)
        if kind is not FrameKind.HELLO:
            record.rejected = f"expected HELLO, got {kind.name}"
            return record
        # Answer in the encoding the HELLO arrived in: JSON peers get JSON
        # control frames, legacy pickle peers get pickled ones.
        reply_dumps: Callable[[Any], bytes] = dumps_json if payload[:1] == b"{" else _dumps
        try:
            hello = loads_control(payload, allow_pickle=not restricted_only)
        except ProtocolError:
            record.rejected = "restricted codec required"
            send_frame(
                connection,
                FrameKind.REJECT,
                dumps_json({"protocol": protocol_version, "reason": "restricted codec required"}),
            )
            return record
        if hello.get("protocol") != protocol_version:
            record.rejected = f"protocol {hello.get('protocol')} != {protocol_version}"
            send_frame(
                connection,
                FrameKind.REJECT,
                reply_dumps({"protocol": protocol_version, "reason": "protocol version mismatch"}),
            )
            return record
        accepted = {
            name: True for name, on in hello.get("capabilities", {}).items() if on and supported.get(name)
        }
        restricted = bool(accepted.get("restricted_codec"))
        if restricted_only and not restricted:
            record.rejected = "restricted codec required"
            send_frame(
                connection,
                FrameKind.REJECT,
                reply_dumps({"protocol": protocol_version, "reason": "restricted codec required"}),
            )
            return record
        record.capabilities = accepted
        welcome: Dict[str, Any] = {"protocol": protocol_version, "capabilities": accepted}
        nonce: Optional[str] = None
        if auth_token is not None:
            nonce = secrets.token_hex(16)
            welcome["nonce"] = nonce
        send_frame(connection, FrameKind.WELCOME, reply_dumps(welcome))
        kind, payload = recv_frame(connection)
        if nonce is not None:
            if kind is not FrameKind.AUTH:
                record.rejected = "authentication required"
                send_frame(
                    connection,
                    FrameKind.REJECT,
                    reply_dumps({"protocol": protocol_version, "reason": "authentication required"}),
                )
                return record
            try:
                mac = loads_control(payload, allow_pickle=False).get("mac")
            except ProtocolError:
                mac = None
            if not isinstance(mac, str) or not hmac.compare_digest(mac, auth_mac(auth_token, nonce)):
                record.rejected = "authentication failed"
                send_frame(
                    connection,
                    FrameKind.REJECT,
                    reply_dumps({"protocol": protocol_version, "reason": "authentication failed"}),
                )
                return record
            kind, payload = recv_frame(connection)
        if kind is not FrameKind.REASONER:
            record.rejected = f"expected REASONER, got {kind.name}"
            return record
        if restricted:
            from repro.streamrule.codec import RestrictedServerCodec, reasoner_from_spec

            server_codec: Optional["RestrictedServerCodec"] = RestrictedServerCodec()
            reasoner = reasoner_from_spec(payload)
        else:
            server_codec = None
            reasoner = reasoner_factory(payload)
        send_frame(connection, FrameKind.READY)

        def encode_response(response: object) -> bytes:
            if server_codec is not None:
                if isinstance(response, RemoteFailure):
                    return server_codec.encode_error(response.error)
                try:
                    return server_codec.encode_result(response)  # type: ignore[arg-type]
                except Exception as error:  # noqa: BLE001 - encoding failures ship as errors
                    return server_codec.encode_error(
                        BackendError(f"unencodable worker response ({error!r})")
                    )
            try:
                return _dumps(response)
            except Exception as error:  # noqa: BLE001 - pickling raises Type/Attribute errors too
                return _dumps(
                    RemoteFailure(BackendError(f"unpicklable worker response ({error!r}): {response!r}"))
                )

        decoder: Any = server_codec if server_codec is not None else DeltaDecoder()
        frames: "queue.Queue[Tuple[Optional[FrameKind], Any]]" = queue.Queue(maxsize=max(1, read_ahead))
        done = threading.Event()

        def _offer(entry: Tuple[Optional[FrameKind], Any]) -> bool:
            # Never block forever on a full queue: if the evaluation loop is
            # gone (done set), drop the entry and let the reader exit.
            while not done.is_set():
                try:
                    frames.put(entry, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def _read_ahead() -> None:
            # Receive and decode ahead of the evaluation loop.  Decoding
            # happens here, in receive order, so the delta decoder's
            # per-track state advances exactly as the shipper's did.
            while True:
                try:
                    kind, payload = recv_frame(connection)
                except (EOFError, OSError, ProtocolError):
                    _offer((None, None))
                    return
                if kind is FrameKind.PING:
                    if not _offer((kind, None)):
                        return
                    continue
                if kind is FrameKind.SYMBOLS:
                    # One-way table sync: apply in receive order, no queue
                    # entry (so no response frame -- the FIFO order the
                    # client's ticket queue relies on is undisturbed).
                    try:
                        decoder.apply_symbols(payload)
                    except BaseException as error:  # noqa: BLE001 - reported, then the connection dies
                        _offer((None, ProtocolError(f"undecodable SYMBOLS frame: {error!r}")))
                        return
                    record.symbols += 1
                    continue
                if kind not in (FrameKind.WORK, FrameKind.DELTA):
                    _offer((None, None))  # protocol violation: drop the connection
                    return
                try:
                    item = decoder.decode(kind, payload)
                except BaseException as error:  # noqa: BLE001 - reported, then the connection dies
                    # A frame that cannot be decoded leaves the decoder's
                    # per-track state behind the shipper's; the connection
                    # must die so both sides restart from empty, in-sync
                    # state (the module invariant).
                    _offer((None, ProtocolError(f"undecodable {kind.name} frame: {error!r}")))
                    return
                if not _offer((kind, item)):
                    return

        reader = threading.Thread(target=_read_ahead, name="streamrule-conn-reader", daemon=True)
        reader.start()
        try:
            while True:
                kind, item = frames.get()
                if kind is None:
                    if item is not None:
                        # Decode failure: best-effort error report first.
                        try:
                            send_frame(connection, FrameKind.RESULT, encode_response(RemoteFailure(item)))
                        except (OSError, TypeError, ValueError, pickle.PicklingError):
                            pass
                    return record
                if kind is FrameKind.PING:
                    record.pings += 1
                    send_frame(connection, FrameKind.PONG)
                    continue
                response: object
                try:
                    response = reasoner.reason_item(item)
                except BaseException as error:  # noqa: BLE001 - shipped back to the caller
                    response = RemoteFailure(error)
                response_payload = encode_response(response)
                record.items += 1
                if kind is FrameKind.DELTA:
                    record.deltas += 1
                send_frame(connection, FrameKind.RESULT, response_payload)
        finally:
            done.set()
    except (EOFError, OSError):
        return record
    finally:
        try:
            connection.close()
        except OSError:
            pass
