"""The wire layer shared by the TCP backend and the worker daemon.

This module is the single source of truth for how StreamRule work travels
between machines.  Everything here is transport mechanics; *what* gets
evaluated is still a :class:`~repro.streamrule.work.WorkItem` and *what*
comes back is still a :class:`~repro.streamrule.reasoner.ReasonerResult` --
the same partition/combine protocol the loopback backend proved survives a
wire, now behind a versioned handshake on a real TCP socket.

Frame format
------------
Every message after the 4-byte connection magic is one *frame*::

    +--------------------+-----------+----------------------+
    | length  (uint32 BE)| kind (u8) | payload (length bytes)|
    +--------------------+-----------+----------------------+

``kind`` is a :class:`FrameKind`; payloads are pickled Python values
(pickle protocol :data:`pickle.HIGHEST_PROTOCOL`).  The full frame grammar,
the handshake sequence, and the failure semantics are specified in
``docs/wire-protocol.md``.

Handshake
---------
1. client sends :data:`MAGIC` + ``HELLO {protocol, capabilities}``;
2. server answers ``WELCOME {protocol, capabilities}`` (the accepted subset)
   or ``REJECT {protocol, reason}`` on a version mismatch;
3. client ships the pickled reasoner in a ``REASONER`` frame;
4. server instantiates it and answers ``READY``; work frames may now flow.

Capability negotiation keeps the protocol forward-compatible: a capability
is active only when *both* peers named it in the handshake, so a new
coordinator talking to an old worker silently degrades (e.g. to full-fact
shipping) instead of breaking.

Pipelined frames
----------------
The connection is *not* strict request/response: a coordinator may have
several ``WORK``/``DELTA`` (and ``PING``) frames outstanding at once.  The
server always answers strictly in request order, which is what lets the
client match responses to callers with a plain FIFO ticket queue
(:class:`WorkerClient`) and lets the worker read and decode ahead of its
evaluation loop (``read_ahead`` in :func:`serve_worker_connection`).  Any
transport error still kills the whole connection -- in-flight frames are
failed at the client and resubmitted elsewhere by the fleet.

Delta shipping
--------------
On a sliding window, consecutive work items of one track share most of
their facts: the window drops its ``slide`` oldest items and appends the
new arrivals.  When the ``delta_shipping`` capability is negotiated, the
client-side :class:`DeltaShipper` and the server-side :class:`DeltaDecoder`
each remember the previous fact tuple per track, and steady-state items
travel as :class:`FactDelta` frames -- copy-runs over the previous window
plus the literal arrivals (see :func:`diff_facts`) -- instead of full fact
sets.  This is the wire-level
sibling of delta *grounding*: the same overlap that lets a worker repair
its previous instantiation lets the coordinator skip re-sending the
overlapping facts, so a ``WindowDelta``-sized frame replaces a window-sized
one (and :meth:`WorkItem.thinned`'s "never ship the delta twice" concern
disappears entirely on this transport).

Both peers update their per-track state in lockstep -- the client when it
encodes, the server when it decodes -- and a transport error closes the
connection, so the states can never silently diverge: a reconnected client
starts from an empty shipper and re-sends full facts.

Interned symbol ids
-------------------
Under the ``symbol_ids`` capability the peers additionally maintain a
per-connection replica pair of append-only
:class:`~repro.asp.syntax.symbols.SymbolTable`\\ s.  The shipper interns
every fact and sends the table's new tail ahead of the work frame as a
one-way ``SYMBOLS`` frame (a pickled
:class:`~repro.asp.syntax.symbols.SymbolDelta`; no response, so the FIFO
response order is undisturbed); work frames then carry flat u32 id arrays
(:class:`IdWorkItem`, or :class:`IdFactDelta` copy-runs on a sliding
window) instead of pickled atoms.  In steady state every fact in a window
has already been interned by an earlier window, so the wire cost of a
window collapses to ``4 bytes x |window|`` -- and, like delta shipping,
any desync kills the connection and both sides restart from empty tables.

Security
--------
The payloads are **pickles**: unpickling executes arbitrary code by design.
Run workers only on trusted networks (see ``docs/deployment.md``).
"""

from __future__ import annotations

import enum
import pickle
import queue
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.asp.syntax.symbols import SymbolDelta, SymbolTable, pack_ids, unpack_ids
from repro.streamrule.errors import (
    BackendConnectionError,
    BackendError,
    HandshakeError,
    ProtocolError,
)
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.work import WorkFact, WorkItem

__all__ = [
    "DEFAULT_CAPABILITIES",
    "DeltaDecoder",
    "DeltaShipper",
    "FactDelta",
    "FrameKind",
    "IdFactDelta",
    "IdWorkItem",
    "MAGIC",
    "PROTOCOL_VERSION",
    "RemoteFailure",
    "WireStats",
    "WorkerClient",
    "apply_facts_diff",
    "apply_id_runs",
    "build_hello",
    "connect_with_backoff",
    "decode_result",
    "diff_facts",
    "diff_id_runs",
    "parse_welcome",
    "recv_frame",
    "send_frame",
    "serve_worker_connection",
]

#: First bytes of every connection; lets a worker reject stray connections
#: (port scanners, misdirected HTTP) before touching pickle.
MAGIC = b"SRW1"

#: Version of the frame grammar + handshake.  Bumped on incompatible
#: changes; peers with different versions refuse each other in the
#: handshake (``REJECT``) rather than misparsing frames.  Backwards-
#: compatible extensions (new optional capabilities) do NOT bump this.
PROTOCOL_VERSION = 1

#: Capabilities this build can negotiate (name -> default offer).
#: ``delta_shipping``: steady-state windows travel as copy-run deltas.
#: ``symbol_ids``: facts are interned per connection (``SYMBOLS`` frames
#: sync the table) and work items carry flat id arrays instead of
#: pickled atom graphs.
DEFAULT_CAPABILITIES: Dict[str, bool] = {"delta_shipping": True, "symbol_ids": True}

_FRAME_HEADER = struct.Struct(">IB")

#: Upper bound on a single frame payload; a length beyond this is treated
#: as a protocol violation (corrupt header) rather than an allocation.
MAX_FRAME_BYTES = 1 << 30


class FrameKind(enum.IntEnum):
    """Discriminator byte of every frame on the wire."""

    HELLO = 1  #: client -> server: ``{protocol, capabilities}``
    WELCOME = 2  #: server -> client: ``{protocol, capabilities}`` (accepted)
    REJECT = 3  #: server -> client: ``{protocol, reason}``; connection closes
    REASONER = 4  #: client -> server: pickled :class:`Reasoner`
    READY = 5  #: server -> client: reasoner installed, work may flow
    WORK = 6  #: client -> server: pickled thinned :class:`WorkItem` (or :class:`IdWorkItem`)
    DELTA = 7  #: client -> server: pickled :class:`FactDelta` (or :class:`IdFactDelta`)
    RESULT = 8  #: server -> client: pickled :class:`ReasonerResult` or :class:`RemoteFailure`
    PING = 9  #: either direction: heartbeat probe (empty payload)
    PONG = 10  #: heartbeat reply (empty payload)
    SYMBOLS = 11  #: client -> server: pickled :class:`SymbolDelta`; one-way, no response


# --------------------------------------------------------------------------- #
# Framing primitives
# --------------------------------------------------------------------------- #
def send_frame(connection: socket.socket, kind: FrameKind, payload: bytes = b"") -> None:
    """Write one ``length | kind | payload`` frame."""
    connection.sendall(_FRAME_HEADER.pack(len(payload), kind) + payload)


def recv_exactly(connection: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`EOFError` on a closed peer."""
    chunks = []
    while count:
        chunk = connection.recv(count)
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(connection: socket.socket) -> Tuple[FrameKind, bytes]:
    """Read one frame; returns ``(kind, payload)``."""
    length, kind = _FRAME_HEADER.unpack(recv_exactly(connection, _FRAME_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte bound")
    try:
        frame_kind = FrameKind(kind)
    except ValueError as error:
        raise ProtocolError(f"unknown frame kind {kind!r}") from error
    return frame_kind, recv_exactly(connection, length)


def _dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


@dataclass
class RemoteFailure:
    """Wire wrapper distinguishing a worker-side exception from a result.

    Shared by the loopback and TCP transports: an evaluation error on the
    worker is pickled inside this wrapper, shipped back as a ``RESULT``
    frame, and re-raised at the caller -- the connection itself survives.
    """

    error: BaseException

    def rebuild(self) -> BaseException:
        return self.error


# --------------------------------------------------------------------------- #
# Shard-side fact-delta shipping
# --------------------------------------------------------------------------- #
#: An encoded delta operation: either ``(start, length)`` -- copy that run
#: from the previous fact tuple -- or a tuple of literal facts to insert.
FactDeltaOp = Union[Tuple[int, int], Tuple[WorkFact, ...]]

#: Minimum matched run worth encoding as a copy op; shorter matches travel
#: as literals (a copy op costs ~20 pickled bytes).
MIN_COPY_RUN = 4

#: Duplicate-fact bound: at most this many candidate positions are probed
#: per fact when matching, so degenerate streams (one fact repeated
#: thousands of times) stay linear.
MAX_MATCH_CANDIDATES = 8


@dataclass(frozen=True)
class FactDelta:
    """The wire form of a steady-state sliding-window work item.

    ``ops`` reconstructs the fact tuple against the track's previous facts
    -- copy runs for the content both windows share, literals for the
    arrivals -- so the frame size scales with the *change*, not the window;
    all other :class:`WorkItem` coordinates travel verbatim.
    """

    track: int
    epoch: int
    incremental: Optional[bool]
    ops: Tuple[FactDeltaOp, ...]


def _is_copy_op(op: FactDeltaOp) -> bool:
    return len(op) == 2 and isinstance(op[0], int) and isinstance(op[1], int)


def overlap_length(previous: Tuple[WorkFact, ...], current: Tuple[WorkFact, ...]) -> int:
    """Largest ``k`` with ``previous[-k:] == current[:k]`` (0 when disjoint).

    This is exactly the sliding-window overlap structure
    (:class:`~repro.streaming.window.WindowDelta`): expired facts are a
    prefix of the previous window, arrived facts a suffix of the current
    one.  Kept as the reference model (and test oracle) of the overlap the
    shipper exploits; the production encoder is :func:`diff_facts`, which
    generalizes this to partitioners that regroup facts, so this helper is
    deliberately not part of the module's ``__all__`` surface.
    """
    if not previous or not current:
        return 0
    first = current[0]
    for index, fact in enumerate(previous):
        if fact == first:
            length = len(previous) - index
            if length <= len(current) and previous[index:] == current[:length]:
                return length
    return 0


def _diff_runs(previous: Tuple, current: Tuple) -> List[Tuple[bool, Tuple]]:
    """Greedy longest-run matcher shared by the fact and id delta forms.

    Returns tagged runs ``(is_copy, payload)``: copies carry ``(start,
    length)`` into ``previous``, literal runs carry the items themselves.
    Tagging matters for the id form, where a two-int literal run would be
    indistinguishable from a copy op.
    """
    index: Dict[Any, List[int]] = {}
    for position, fact in enumerate(previous):
        index.setdefault(fact, []).append(position)
    runs: List[Tuple[bool, Tuple]] = []
    literals: List[Any] = []
    cursor = 0
    total = len(current)
    while cursor < total:
        best_position = -1
        best_length = 0
        for position in index.get(current[cursor], ())[:MAX_MATCH_CANDIDATES]:
            length = 0
            while (
                position + length < len(previous)
                and cursor + length < total
                and previous[position + length] == current[cursor + length]
            ):
                length += 1
            if length > best_length:
                best_length, best_position = length, position
        if best_length >= MIN_COPY_RUN:
            if literals:
                runs.append((False, tuple(literals)))
                literals = []
            runs.append((True, (best_position, best_length)))
            cursor += best_length
        else:
            literals.append(current[cursor])
            cursor += 1
    if literals:
        runs.append((False, tuple(literals)))
    return runs


def diff_facts(previous: Tuple[WorkFact, ...], current: Tuple[WorkFact, ...]) -> Tuple[FactDeltaOp, ...]:
    """Encode ``current`` as copy-runs over ``previous`` plus literal facts.

    A greedy longest-run matcher (the delta-compression classic): for every
    position of ``current`` it probes where that fact occurs in
    ``previous`` and extends the longest contiguous match; runs of at least
    :data:`MIN_COPY_RUN` become ``(start, length)`` copy ops, everything
    else stays literal.  Cost is linear in practice (each probe either
    consumes a run or one literal).  This handles both overlap shapes the
    execution layer produces: order-preserving partitions (one long copy
    run -- the pure sliding window) and predicate-regrouping partitions
    (one copy run per predicate group straddling the slide).
    """
    return tuple(payload for _is_copy, payload in _diff_runs(previous, current))


def apply_facts_diff(previous: Tuple[WorkFact, ...], ops: Tuple[FactDeltaOp, ...]) -> Tuple[WorkFact, ...]:
    """Reconstruct the fact tuple :func:`diff_facts` encoded (exact order)."""
    parts: List[WorkFact] = []
    for op in ops:
        if _is_copy_op(op):
            start, length = op  # type: ignore[misc]
            if not (0 <= start and length >= 0 and start + length <= len(previous)):
                raise ProtocolError(
                    f"copy op ({start}, {length}) out of range for a {len(previous)}-fact window"
                )
            parts.extend(previous[start : start + length])
        else:
            parts.extend(op)  # type: ignore[arg-type]
    return tuple(parts)


# --------------------------------------------------------------------------- #
# Interned-id wire forms (the ``symbol_ids`` capability)
# --------------------------------------------------------------------------- #
#: An id delta operation: ``(start, length)`` copies that run from the
#: previous id tuple; a ``bytes`` value is a packed literal id run
#: (:func:`repro.asp.syntax.symbols.pack_ids`).  The two are structurally
#: distinct, unlike int facts in :data:`FactDeltaOp` tuples.
IdRunOp = Union[Tuple[int, int], bytes]


@dataclass(frozen=True)
class IdWorkItem:
    """Full wire form of a work item under the ``symbol_ids`` capability.

    ``id_data`` is the window's fact tuple as a packed u32 id array against
    the connection's synced symbol table -- any symbol it references was
    shipped in an earlier (or the immediately preceding) ``SYMBOLS`` frame.
    """

    track: int
    epoch: int
    incremental: Optional[bool]
    id_data: bytes


@dataclass(frozen=True)
class IdFactDelta:
    """Delta wire form of a steady-state work item under ``symbol_ids``."""

    track: int
    epoch: int
    incremental: Optional[bool]
    ops: Tuple[IdRunOp, ...]


def diff_id_runs(previous: Tuple[int, ...], current: Tuple[int, ...]) -> Tuple[IdRunOp, ...]:
    """Encode an id tuple as copy runs over the previous one (id form of
    :func:`diff_facts`); literal runs are packed to bytes."""
    return tuple(
        payload if is_copy else pack_ids(payload) for is_copy, payload in _diff_runs(previous, current)
    )


def apply_id_runs(previous: Tuple[int, ...], ops: Tuple[IdRunOp, ...]) -> Tuple[int, ...]:
    """Reconstruct the id tuple :func:`diff_id_runs` encoded."""
    parts: List[int] = []
    for op in ops:
        if isinstance(op, bytes):
            parts.extend(unpack_ids(op))
        else:
            start, length = op
            if not (0 <= start and length >= 0 and start + length <= len(previous)):
                raise ProtocolError(
                    f"id copy op ({start}, {length}) out of range for a {len(previous)}-id window"
                )
            parts.extend(previous[start : start + length])
    return tuple(parts)


class DeltaShipper:
    """Client-side per-track encoder choosing full vs. delta wire forms.

    A delta frame is sent only when its encoded payload is actually smaller
    than the full fact set's -- so disjoint (tumbling/hopping) windows, and
    any window the matcher cannot compress, automatically travel full.

    With ``symbol_ids`` on, the shipper additionally interns every fact in
    a connection-scoped :class:`SymbolTable` and emits the table's new tail
    as a ``SYMBOLS`` frame ahead of the work frame
    (:meth:`encode_frames`); the work frames themselves then carry flat id
    arrays (:class:`IdWorkItem` / :class:`IdFactDelta`), so a steady-state
    window whose facts are all known to the peer crosses the wire without
    pickling a single atom.
    """

    def __init__(self, *, delta_shipping: bool = True, symbol_ids: bool = False) -> None:
        self._delta_shipping = delta_shipping
        self._previous: Dict[int, Tuple[WorkFact, ...]] = {}
        self._prev_ids: Dict[int, Tuple[int, ...]] = {}
        self._table: Optional[SymbolTable] = SymbolTable() if symbol_ids else None
        self._synced = 0

    def encode_frames(self, item: WorkItem) -> List[Tuple[FrameKind, bytes]]:
        """Encode ``item`` into the frames to send, in order.

        The last frame is always the work frame (``WORK`` or ``DELTA``);
        under ``symbol_ids`` it may be preceded by one ``SYMBOLS`` frame
        carrying the symbols the peer has not seen yet.  Track state (and
        the synced-table watermark) advances exactly as the peer's decoder
        will on receipt.
        """
        thin = item.thinned()
        if self._table is None:
            return [self._encode_facts(item, thin)]
        frames: List[Tuple[FrameKind, bytes]] = []
        ids = tuple(self._table.intern_many(item.facts))
        sync = self._table.diff_since(self._synced)
        if sync:
            frames.append((FrameKind.SYMBOLS, _dumps(sync)))
            self._synced = sync.stop
        previous = self._prev_ids.get(item.track)
        self._prev_ids[item.track] = ids
        full_payload = _dumps(
            IdWorkItem(track=item.track, epoch=item.epoch, incremental=thin.incremental, id_data=pack_ids(ids))
        )
        if self._delta_shipping and previous is not None:
            ops = diff_id_runs(previous, ids)
            if any(not isinstance(op, bytes) for op in ops):
                delta_payload = _dumps(
                    IdFactDelta(
                        track=item.track,
                        epoch=item.epoch,
                        incremental=item.wants_incremental,
                        ops=ops,
                    )
                )
                if len(delta_payload) < len(full_payload):
                    frames.append((FrameKind.DELTA, delta_payload))
                    return frames
        frames.append((FrameKind.WORK, full_payload))
        return frames

    def encode(self, item: WorkItem) -> Tuple[FrameKind, bytes]:
        """Encode ``item`` as a single work frame (legacy, pre-``symbol_ids``)."""
        frames = self.encode_frames(item)
        if len(frames) != 1:
            raise RuntimeError("a symbol-id shipper may emit SYMBOLS frames; use encode_frames")
        return frames[0]

    def _encode_facts(self, item: WorkItem, thin: WorkItem) -> Tuple[FrameKind, bytes]:
        previous = self._previous.get(item.track)
        self._previous[item.track] = item.facts
        full_payload = _dumps(thin)
        if self._delta_shipping and previous is not None:
            ops = diff_facts(previous, item.facts)
            if any(_is_copy_op(op) for op in ops):
                delta_payload = _dumps(
                    FactDelta(
                        track=item.track,
                        epoch=item.epoch,
                        incremental=item.wants_incremental,
                        ops=ops,
                    )
                )
                if len(delta_payload) < len(full_payload):
                    return FrameKind.DELTA, delta_payload
        return FrameKind.WORK, full_payload

    def forget(self, track: Optional[int] = None) -> None:
        """Drop the remembered facts (all tracks, or one)."""
        if track is None:
            self._previous.clear()
            self._prev_ids.clear()
        else:
            self._previous.pop(track, None)
            self._prev_ids.pop(track, None)


class DeltaDecoder:
    """Server-side per-track decoder mirroring :class:`DeltaShipper`.

    Holds the replica :class:`SymbolTable` of the connection: ``SYMBOLS``
    frames append to it (:meth:`apply_symbols`), and id-form work frames
    resolve their id arrays against it.  An id the table cannot resolve
    means a lost ``SYMBOLS`` frame -- the error propagates and kills the
    connection, exactly like a desynced fact delta.
    """

    def __init__(self) -> None:
        self._previous: Dict[int, Tuple[WorkFact, ...]] = {}
        self._prev_ids: Dict[int, Tuple[int, ...]] = {}
        self._table = SymbolTable()

    def apply_symbols(self, payload: bytes) -> int:
        """Apply a ``SYMBOLS`` frame; returns the number of new symbols."""
        delta: SymbolDelta = pickle.loads(payload)
        return self._table.apply(delta)

    def decode(self, kind: FrameKind, payload: bytes) -> WorkItem:
        """Rebuild the :class:`WorkItem` of a ``WORK`` or ``DELTA`` frame."""
        value = pickle.loads(payload)
        if kind is FrameKind.WORK:
            if isinstance(value, IdWorkItem):
                ids = unpack_ids(value.id_data)
                facts = self._table.resolve_many(ids)
                self._prev_ids[value.track] = ids
                return WorkItem(
                    facts=facts, track=value.track, epoch=value.epoch, incremental=value.incremental
                )
            item: WorkItem = value
            self._previous[item.track] = item.facts
            return item
        if isinstance(value, IdFactDelta):
            previous_ids = self._prev_ids.get(value.track)
            if previous_ids is None:
                raise ProtocolError(f"DELTA frame for track {value.track} without a previous full window")
            ids = apply_id_runs(previous_ids, value.ops)
            self._prev_ids[value.track] = ids
            facts = self._table.resolve_many(ids)
            return WorkItem(facts=facts, track=value.track, epoch=value.epoch, incremental=value.incremental)
        delta: FactDelta = value
        previous = self._previous.get(delta.track)
        if previous is None:
            raise ProtocolError(f"DELTA frame for track {delta.track} without a previous full window")
        facts = apply_facts_diff(previous, delta.ops)
        self._previous[delta.track] = facts
        return WorkItem(facts=facts, track=delta.track, epoch=delta.epoch, incremental=delta.incremental)


# --------------------------------------------------------------------------- #
# Wire accounting
# --------------------------------------------------------------------------- #
@dataclass
class WireStats:
    """Per-connection traffic counters (payload bytes, excluding headers)."""

    items_full: int = 0  #: work items shipped as full fact sets
    items_delta: int = 0  #: work items shipped as :class:`FactDelta` frames
    bytes_full: int = 0  #: payload bytes of the full items
    bytes_delta: int = 0  #: payload bytes of the delta items
    symbol_frames: int = 0  #: ``SYMBOLS`` table-sync frames sent
    bytes_symbols: int = 0  #: payload bytes of the symbol-sync frames
    bytes_in: int = 0  #: result payload bytes received
    pings: int = 0  #: heartbeat round trips completed

    @property
    def items(self) -> int:
        return self.items_full + self.items_delta

    @property
    def bytes_out(self) -> int:
        return self.bytes_full + self.bytes_delta + self.bytes_symbols

    def merged_with(self, other: "WireStats") -> "WireStats":
        return WireStats(
            items_full=self.items_full + other.items_full,
            items_delta=self.items_delta + other.items_delta,
            bytes_full=self.bytes_full + other.bytes_full,
            bytes_delta=self.bytes_delta + other.bytes_delta,
            symbol_frames=self.symbol_frames + other.symbol_frames,
            bytes_symbols=self.bytes_symbols + other.bytes_symbols,
            bytes_in=self.bytes_in + other.bytes_in,
            pings=self.pings + other.pings,
        )


# --------------------------------------------------------------------------- #
# Handshake grammar shared by the sync and asyncio clients
# --------------------------------------------------------------------------- #
def build_hello(delta_shipping: bool, symbol_ids: bool) -> Tuple[bytes, Dict[str, bool]]:
    """Build the ``HELLO`` payload; returns ``(payload, offered)``.

    One spelling of the capability offer for every client implementation
    (:class:`WorkerClient` and the asyncio client in
    :mod:`repro.streamrule.aio`), so the two cannot drift.
    """
    offered = dict(DEFAULT_CAPABILITIES)
    offered["delta_shipping"] = delta_shipping
    offered["symbol_ids"] = symbol_ids
    return _dumps({"protocol": PROTOCOL_VERSION, "capabilities": offered}), offered


def parse_welcome(
    kind: FrameKind, payload: bytes, offered: Dict[str, bool], address: Tuple[str, int]
) -> Dict[str, bool]:
    """Validate the server's handshake answer; returns the active capabilities.

    Raises :class:`HandshakeError` on a ``REJECT`` or a protocol-version
    mismatch and :class:`ProtocolError` on any other frame kind.  A
    capability is active only when both the offer and the ``WELCOME``
    named it.
    """
    if kind is FrameKind.REJECT:
        reject = pickle.loads(payload)
        raise HandshakeError(
            f"worker {address[0]}:{address[1]} rejected the handshake: "
            f"{reject.get('reason', 'unspecified')} "
            f"(worker protocol {reject.get('protocol')}, ours {PROTOCOL_VERSION})"
        )
    if kind is not FrameKind.WELCOME:
        raise ProtocolError(f"expected WELCOME, got {kind.name}")
    welcome = pickle.loads(payload)
    if welcome.get("protocol") != PROTOCOL_VERSION:
        raise HandshakeError(
            f"worker {address[0]}:{address[1]} speaks protocol "
            f"{welcome.get('protocol')}, this client speaks {PROTOCOL_VERSION}"
        )
    return {name: True for name, on in welcome.get("capabilities", {}).items() if on and offered.get(name)}


def decode_result(payload: bytes, address: Tuple[str, int]) -> ReasonerResult:
    """Unpickle a ``RESULT`` payload, re-raising wrapped worker failures.

    Raises :class:`ProtocolError` on an undecodable payload (the caller
    must then abort the connection -- the stream can no longer be trusted)
    and the original worker-side exception when the payload is a
    :class:`RemoteFailure`.
    """
    try:
        value = pickle.loads(payload)
    except Exception as error:
        raise ProtocolError(f"undecodable RESULT payload from {address}: {error!r}") from error
    if isinstance(value, RemoteFailure):
        raise value.rebuild()
    return value


# --------------------------------------------------------------------------- #
# Connecting with bounded exponential backoff
# --------------------------------------------------------------------------- #
def connect_with_backoff(
    address: Tuple[str, int],
    *,
    attempts: int = 5,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    connect_timeout: float = 5.0,
    sleep: Callable[[float], None] = time.sleep,
) -> socket.socket:
    """TCP-connect to ``address``, retrying with exponential backoff.

    Makes up to ``attempts`` attempts; attempt ``i`` (0-based) is preceded
    by a ``min(max_delay, base_delay * 2**(i-1))`` pause.  Raises
    :class:`BackendConnectionError` once the budget is exhausted.  ``sleep``
    is injectable so tests can assert the schedule without waiting it out.
    """
    if attempts < 1:
        raise ValueError("at least one connection attempt is required")
    delay = base_delay
    failure: Optional[Exception] = None
    for attempt in range(attempts):
        if attempt:
            sleep(delay)
            delay = min(max_delay, delay * 2)
        try:
            connection = socket.create_connection(address, timeout=connect_timeout)
            connection.settimeout(None)  # evaluations may legitimately take long
            return connection
        except OSError as error:
            failure = error
    raise BackendConnectionError(
        f"could not connect to worker {address[0]}:{address[1]} after {attempts} attempts: {failure!r}"
    ) from failure


# --------------------------------------------------------------------------- #
# Client side: one framed connection to a worker
# --------------------------------------------------------------------------- #
class _Ticket:
    """One in-flight request awaiting its FIFO-ordered response frame."""

    __slots__ = ("event", "kind", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.kind: Optional[FrameKind] = None
        self.payload: Optional[bytes] = None
        self.error: Optional[BaseException] = None

    def resolve(self, kind: FrameKind, payload: bytes) -> None:
        self.kind, self.payload = kind, payload
        self.event.set()

    def fail(self, error: BaseException) -> None:
        if not self.event.is_set():
            self.error = error
            self.event.set()


class WorkerClient:
    """One handshaken connection to a worker daemon.

    Owns the socket, the negotiated capabilities, the per-track
    :class:`DeltaShipper`, and a :class:`WireStats` record.  The connection
    is *pipelined*: sends and receives are serialized separately, so several
    dispatcher threads (and the heartbeat) may each have a frame outstanding
    on the one socket at the same time -- the worker answers strictly in
    request order, so responses are matched to callers by a FIFO ticket
    queue rather than by locking the socket across the whole round trip.
    While one caller waits out a long evaluation, the next caller's frame is
    already in the worker's receive buffer (and, with server-side
    read-ahead, already decoded), which is what lets a pipelined session
    keep a remote worker saturated.  Any transport error closes the
    connection, raises at the caller that hit it, and fails every other
    in-flight ticket with :class:`BackendConnectionError` (their results can
    never arrive, so the fleet reroutes and resubmits them); a closed client
    is never reused -- the fleet builds a fresh one (with fresh, in-sync
    delta state) on reconnect.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        reasoner_payload: bytes,
        *,
        delta_shipping: bool = True,
        symbol_ids: bool = True,
        attempts: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        connect_timeout: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.address = address
        self.stats = WireStats()
        #: Serializes frame *sends* (and the delta-shipper state, which must
        #: advance in wire order).
        self._send_lock = threading.Lock()
        #: At most one thread reads the socket at a time; responses are
        #: delivered to the head of the ticket queue.
        self._recv_lock = threading.Lock()
        #: Guards the ticket queue and the traffic counters.
        self._state_lock = threading.Lock()
        self._pending: Deque[_Ticket] = deque()
        self._sock: Optional[socket.socket] = connect_with_backoff(
            address,
            attempts=attempts,
            base_delay=base_delay,
            max_delay=max_delay,
            connect_timeout=connect_timeout,
            sleep=sleep,
        )
        try:
            self.capabilities = self._handshake(reasoner_payload, delta_shipping, symbol_ids)
        except BaseException:
            self.close()
            raise
        use_delta = bool(self.capabilities.get("delta_shipping"))
        use_ids = bool(self.capabilities.get("symbol_ids"))
        self._shipper = (
            DeltaShipper(delta_shipping=use_delta, symbol_ids=use_ids) if (use_delta or use_ids) else None
        )

    # -- lifecycle ------------------------------------------------------- #
    @property
    def alive(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- handshake ------------------------------------------------------- #
    def _handshake(self, reasoner_payload: bytes, delta_shipping: bool, symbol_ids: bool) -> Dict[str, bool]:
        sock = self._sock
        assert sock is not None
        hello, offered = build_hello(delta_shipping, symbol_ids)
        try:
            sock.sendall(MAGIC)
            send_frame(sock, FrameKind.HELLO, hello)
            kind, payload = recv_frame(sock)
        except (OSError, EOFError) as error:
            raise BackendConnectionError(f"handshake with {self.address} failed: {error!r}") from error
        accepted = parse_welcome(kind, payload, offered, self.address)
        try:
            send_frame(sock, FrameKind.REASONER, reasoner_payload)
            kind, _ = recv_frame(sock)
        except (OSError, EOFError) as error:
            raise BackendConnectionError(f"handshake with {self.address} failed: {error!r}") from error
        if kind is not FrameKind.READY:
            raise ProtocolError(f"expected READY, got {kind.name}")
        return accepted

    # -- request/response ------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        """Frames sent whose responses have not yet arrived."""
        with self._state_lock:
            return len(self._pending)

    def _post(self, kind: FrameKind, payload: bytes) -> _Ticket:
        """Send one frame and enqueue its response ticket (FIFO order)."""
        sock = self._sock
        if sock is None:
            raise BackendConnectionError(f"connection to worker {self.address} is closed")
        ticket = _Ticket()
        try:
            send_frame(sock, kind, payload)
        except (OSError, BrokenPipeError) as error:
            failure = BackendConnectionError(f"connection to worker {self.address} lost: {error!r}")
            self._abort(failure)
            raise failure from error
        with self._state_lock:
            self._pending.append(ticket)
        return ticket

    def _await(self, ticket: _Ticket) -> Tuple[FrameKind, bytes]:
        """Block until ``ticket`` resolves, receiving frames when it is our turn.

        The elevator pattern: whichever waiter holds the receive lock reads
        response frames off the socket and delivers them to the head of the
        ticket queue (the worker answers strictly in request order) until its
        own ticket resolves; everyone else blocks on the lock or on their
        already-set event.
        """
        while not ticket.event.is_set():
            with self._recv_lock:
                if ticket.event.is_set():
                    continue
                self._receive_one()
        if ticket.error is not None:
            raise ticket.error
        assert ticket.kind is not None and ticket.payload is not None
        return ticket.kind, ticket.payload

    def _receive_one(self) -> None:
        """Receive one frame and resolve the oldest ticket (recv lock held)."""
        sock = self._sock
        if sock is None:
            failure = BackendConnectionError(f"connection to worker {self.address} is closed")
            self._abort(failure)
            raise failure
        try:
            kind, payload = recv_frame(sock)
        except ProtocolError as error:
            # The stream is desynced mid-frame; the connection can never
            # be trusted again (errors.py: a protocol violation closes
            # the connection).
            self._abort(error)
            raise
        except (OSError, EOFError) as error:
            failure = BackendConnectionError(f"connection to worker {self.address} lost: {error!r}")
            self._abort(failure)
            raise failure from error
        with self._state_lock:
            self.stats.bytes_in += len(payload)
            ticket = self._pending.popleft() if self._pending else None
        if ticket is None:
            failure = ProtocolError(f"unsolicited {kind.name} frame from {self.address}")
            self._abort(failure)
            raise failure
        ticket.resolve(kind, payload)

    def _abort(self, cause: BaseException) -> None:
        """Close the connection and fail every in-flight ticket.

        The pending results can never arrive once the stream is broken, so
        their waiters get :class:`BackendConnectionError` -- the signal the
        fleet answers by rerouting the slot and resubmitting the item.
        """
        self.close()
        with self._state_lock:
            pending, self._pending = list(self._pending), deque()
        if pending:
            failure = (
                cause
                if isinstance(cause, BackendConnectionError)
                else BackendConnectionError(f"connection to worker {self.address} aborted: {cause!r}")
            )
            for ticket in pending:
                ticket.fail(failure)

    def submit_item(self, item: WorkItem) -> ReasonerResult:
        """Ship one work item (full or delta form) and await its result.

        The send returns as soon as the frame is on the wire; the calling
        thread then waits on the FIFO ticket queue, so concurrent callers
        keep multiple work frames outstanding on this one connection.
        """
        with self._send_lock:
            sock = self._sock
            if sock is None:
                raise BackendConnectionError(f"connection to worker {self.address} is closed")
            if self._shipper is not None:
                frames = self._shipper.encode_frames(item)
            else:
                frames = [(FrameKind.WORK, _dumps(item.thinned()))]
            # Leading SYMBOLS frames are one-way (no response, so no ticket);
            # only the trailing work frame enters the FIFO ticket queue.
            for sync_kind, sync_payload in frames[:-1]:
                try:
                    send_frame(sock, sync_kind, sync_payload)
                except (OSError, BrokenPipeError) as error:
                    failure = BackendConnectionError(f"connection to worker {self.address} lost: {error!r}")
                    self._abort(failure)
                    raise failure from error
                with self._state_lock:
                    self.stats.symbol_frames += 1
                    self.stats.bytes_symbols += len(sync_payload)
            kind, payload = frames[-1]
            ticket = self._post(kind, payload)
            with self._state_lock:
                if kind is FrameKind.DELTA:
                    self.stats.items_delta += 1
                    self.stats.bytes_delta += len(payload)
                else:
                    self.stats.items_full += 1
                    self.stats.bytes_full += len(payload)
        response_kind, response = self._await(ticket)
        if response_kind is not FrameKind.RESULT:
            failure = ProtocolError(f"expected RESULT, got {response_kind.name}")
            self._abort(failure)
            raise failure
        try:
            return decode_result(response, self.address)
        except ProtocolError as failure:
            self._abort(failure)
            raise

    def ping(self) -> float:
        """Heartbeat round trip; returns the latency in seconds.

        On a pipelined connection the PONG queues behind the responses of
        the frames sent before it, so the reported latency includes any
        evaluation already in flight -- a heartbeat measures worker
        *liveness*, not idle round-trip time.
        """
        started = time.perf_counter()
        with self._send_lock:
            if self._sock is None:
                raise BackendConnectionError(f"connection to worker {self.address} is closed")
            ticket = self._post(FrameKind.PING, b"")
        kind, _ = self._await(ticket)
        if kind is not FrameKind.PONG:
            failure = ProtocolError(f"expected PONG, got {kind.name}")
            self._abort(failure)
            raise failure
        with self._state_lock:
            self.stats.pings += 1
        return time.perf_counter() - started

    def try_ping(self) -> bool:
        """Non-throwing heartbeat; ``False`` (and closed) on a dead peer."""
        try:
            self.ping()
            return True
        except BackendError:
            return False


# --------------------------------------------------------------------------- #
# Server side: the per-connection protocol loop
# --------------------------------------------------------------------------- #
@dataclass
class ServedConnection:
    """Outcome record of one served connection (returned for logging/tests)."""

    items: int = 0
    deltas: int = 0
    symbols: int = 0  #: SYMBOLS table-sync frames applied
    pings: int = 0
    rejected: Optional[str] = None
    capabilities: Dict[str, bool] = field(default_factory=dict)


def serve_worker_connection(
    connection: socket.socket,
    *,
    capabilities: Optional[Dict[str, bool]] = None,
    protocol_version: int = PROTOCOL_VERSION,
    reasoner_factory: Callable[[bytes], Reasoner] = pickle.loads,
    read_ahead: int = 8,
) -> ServedConnection:
    """Serve one coordinator connection until it closes.

    The server half of the protocol: validate magic, negotiate the
    handshake, install the shipped reasoner, then answer ``WORK`` /
    ``DELTA`` / ``PING`` frames until EOF.  Worker-side evaluation errors
    are wrapped in :class:`RemoteFailure` result frames; only transport
    errors end the loop.  Used by the daemon in
    :mod:`repro.streamrule.worker` (one call per accepted connection) and
    by in-process servers in the tests.

    ``read_ahead`` is the server half of connection pipelining: a reader
    thread receives and decodes up to that many frames ahead of the
    evaluation loop, so a pipelining coordinator's next window is already
    unpickled when the current evaluation finishes, and responses still go
    out strictly in request order (the invariant the client's FIFO ticket
    queue relies on).  The bound matters: once the queue is full the reader
    stops reading, the kernel's receive window fills, and the coordinator's
    sends block -- which is exactly how worker-side overload propagates back
    through the session's ``max_inflight`` bound to stall the producer.
    """
    record = ServedConnection()
    supported = dict(DEFAULT_CAPABILITIES) if capabilities is None else dict(capabilities)
    try:
        try:
            magic = recv_exactly(connection, len(MAGIC))
        except (EOFError, OSError):
            return record
        if magic != MAGIC:
            record.rejected = "bad magic"
            return record
        kind, payload = recv_frame(connection)
        if kind is not FrameKind.HELLO:
            record.rejected = f"expected HELLO, got {kind.name}"
            return record
        hello = pickle.loads(payload)
        if hello.get("protocol") != protocol_version:
            record.rejected = f"protocol {hello.get('protocol')} != {protocol_version}"
            send_frame(
                connection,
                FrameKind.REJECT,
                _dumps({"protocol": protocol_version, "reason": "protocol version mismatch"}),
            )
            return record
        accepted = {
            name: True for name, on in hello.get("capabilities", {}).items() if on and supported.get(name)
        }
        record.capabilities = accepted
        send_frame(connection, FrameKind.WELCOME, _dumps({"protocol": protocol_version, "capabilities": accepted}))
        kind, payload = recv_frame(connection)
        if kind is not FrameKind.REASONER:
            record.rejected = f"expected REASONER, got {kind.name}"
            return record
        reasoner = reasoner_factory(payload)
        send_frame(connection, FrameKind.READY)

        decoder = DeltaDecoder()
        frames: "queue.Queue[Tuple[Optional[FrameKind], Any]]" = queue.Queue(maxsize=max(1, read_ahead))
        done = threading.Event()

        def _offer(entry: Tuple[Optional[FrameKind], Any]) -> bool:
            # Never block forever on a full queue: if the evaluation loop is
            # gone (done set), drop the entry and let the reader exit.
            while not done.is_set():
                try:
                    frames.put(entry, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def _read_ahead() -> None:
            # Receive and decode ahead of the evaluation loop.  Decoding
            # happens here, in receive order, so the delta decoder's
            # per-track state advances exactly as the shipper's did.
            while True:
                try:
                    kind, payload = recv_frame(connection)
                except (EOFError, OSError, ProtocolError):
                    _offer((None, None))
                    return
                if kind is FrameKind.PING:
                    if not _offer((kind, None)):
                        return
                    continue
                if kind is FrameKind.SYMBOLS:
                    # One-way table sync: apply in receive order, no queue
                    # entry (so no response frame -- the FIFO order the
                    # client's ticket queue relies on is undisturbed).
                    try:
                        decoder.apply_symbols(payload)
                    except BaseException as error:  # noqa: BLE001 - reported, then the connection dies
                        _offer((None, ProtocolError(f"undecodable SYMBOLS frame: {error!r}")))
                        return
                    record.symbols += 1
                    continue
                if kind not in (FrameKind.WORK, FrameKind.DELTA):
                    _offer((None, None))  # protocol violation: drop the connection
                    return
                try:
                    item = decoder.decode(kind, payload)
                except BaseException as error:  # noqa: BLE001 - reported, then the connection dies
                    # A frame that cannot be decoded leaves the decoder's
                    # per-track state behind the shipper's; the connection
                    # must die so both sides restart from empty, in-sync
                    # state (the module invariant).
                    _offer((None, ProtocolError(f"undecodable {kind.name} frame: {error!r}")))
                    return
                if not _offer((kind, item)):
                    return

        reader = threading.Thread(target=_read_ahead, name="streamrule-conn-reader", daemon=True)
        reader.start()
        try:
            while True:
                kind, item = frames.get()
                if kind is None:
                    if item is not None:
                        # Decode failure: best-effort error report first.
                        try:
                            send_frame(connection, FrameKind.RESULT, _dumps(RemoteFailure(item)))
                        except (OSError, TypeError, ValueError, pickle.PicklingError):
                            pass
                    return record
                if kind is FrameKind.PING:
                    record.pings += 1
                    send_frame(connection, FrameKind.PONG)
                    continue
                response: object
                try:
                    response = reasoner.reason_item(item)
                except BaseException as error:  # noqa: BLE001 - shipped back to the caller
                    response = RemoteFailure(error)
                try:
                    response_payload = _dumps(response)
                except Exception as error:  # noqa: BLE001 - pickling raises Type/Attribute errors too
                    response_payload = _dumps(
                        RemoteFailure(BackendError(f"unpicklable worker response ({error!r}): {response!r}"))
                    )
                record.items += 1
                if kind is FrameKind.DELTA:
                    record.deltas += 1
                send_frame(connection, FrameKind.RESULT, response_payload)
        finally:
            done.set()
    except (EOFError, OSError):
        return record
    finally:
        try:
            connection.close()
        except OSError:
            pass
