"""The (extended) StreamRule framework.

* :mod:`repro.streamrule.metrics` -- latency breakdowns and accuracy records.
* :mod:`repro.streamrule.work` -- the typed :class:`WorkItem` unit of
  dispatch (facts, delta, track, epoch).
* :mod:`repro.streamrule.placement` -- placement strategies mapping work
  items to worker slots (track-pinned, consistent-hash-over-content).
* :mod:`repro.streamrule.backends` -- the pluggable :class:`ExecutionBackend`
  protocol and its transports: inline, thread pool, pinned process pool, and
  the loopback-socket backend that pickles work items over a real wire.
* :mod:`repro.streamrule.reasoner` -- the reasoner ``R``: data format
  processor plus the ASP solver, evaluating one work item per call
  (the dashed box of Figure 1).
* :mod:`repro.streamrule.session` -- the unified :class:`StreamSession`
  facade: window policy -> partitioning handler -> backend dispatch ->
  combining handler -> solution triples.
* :mod:`repro.streamrule.parallel` -- the parallel reasoner ``PR``
  (the grey box of Figure 6), now a deprecated shim over the session.
* :mod:`repro.streamrule.pipeline` -- the legacy end-to-end pipeline,
  likewise a deprecated shim over the session.
"""

from repro.streamrule.backends import (
    BackendConnectionError,
    BackendError,
    ExecutionBackend,
    ExecutionMode,
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    ThreadPoolBackend,
    backend_for_mode,
)
from repro.streamrule.compat import reset_deprecation_warnings
from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics, Timer
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.pipeline import StreamRulePipeline
from repro.streamrule.placement import ConsistentHashPlacement, PinnedPlacement, PlacementStrategy
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.session import ParallelResult, StreamSession, WindowSolution
from repro.streamrule.work import WorkItem

__all__ = [
    "BackendConnectionError",
    "BackendError",
    "ConsistentHashPlacement",
    "ExecutionBackend",
    "ExecutionMode",
    "InlineBackend",
    "LatencyBreakdown",
    "LoopbackSocketBackend",
    "ParallelReasoner",
    "ParallelResult",
    "PinnedPlacement",
    "PlacementStrategy",
    "ProcessPoolBackend",
    "Reasoner",
    "ReasonerMetrics",
    "ReasonerResult",
    "StreamRulePipeline",
    "StreamSession",
    "ThreadPoolBackend",
    "Timer",
    "WindowSolution",
    "WorkItem",
    "backend_for_mode",
    "reset_deprecation_warnings",
]
