"""The (extended) StreamRule framework.

* :mod:`repro.streamrule.metrics` -- latency breakdowns and accuracy records.
* :mod:`repro.streamrule.work` -- the typed :class:`WorkItem` unit of
  dispatch (facts, delta, track, epoch).
* :mod:`repro.streamrule.placement` -- placement strategies mapping work
  items to worker slots (track-pinned, consistent-hash-over-content).
* :mod:`repro.streamrule.errors` -- the execution-layer exception hierarchy.
* :mod:`repro.streamrule.net` -- the wire layer of the distributed tier:
  framed messages, the versioned handshake with capability negotiation,
  shard-side fact-delta shipping, and bounded-backoff connects.
* :mod:`repro.streamrule.worker` -- the remote worker daemon
  (``python -m repro.streamrule.worker --listen HOST:PORT``).
* :mod:`repro.streamrule.fleet` -- the :class:`WorkerFleet` coordinator
  mapping placement slots onto worker endpoints, with dead-worker
  rerouting.
* :mod:`repro.streamrule.backends` -- the pluggable :class:`ExecutionBackend`
  protocol and its transports: inline, thread pool, pinned process pool,
  the loopback-socket backend, the shared-memory backend, and the TCP
  backend dispatching to a remote worker fleet.
* :mod:`repro.streamrule.shm` -- the shared-memory rings behind
  :class:`SharedMemoryBackend`: same-host worker processes reached through
  ``/dev/shm`` with facts travelling as packed symbol-id arrays.
* :mod:`repro.streamrule.reasoner` -- the reasoner ``R``: data format
  processor plus the ASP solver, evaluating one work item per call
  (the dashed box of Figure 1).
* :mod:`repro.streamrule.session` -- the unified :class:`StreamSession`
  facade: window policy -> partitioning handler -> backend dispatch ->
  combining handler -> solution triples.
* :mod:`repro.streamrule.autoscale` -- the backpressure-driven
  :class:`FleetAutoscaler` growing/shrinking a live TCP fleet from
  sustained stall and AIMD-backoff streaks.
* :mod:`repro.streamrule.codec` -- the restricted (non-pickle) wire
  dialect for untrusted peers: programs as text, facts and results as
  typed JSON + packed-id frames.
* :mod:`repro.streamrule.adaptive` -- the AIMD
  :class:`AdaptiveInflightController` deriving the session's in-flight
  bound from observed stalls, queue depth, and gather latency
  (``max_inflight="adaptive"``).
* :mod:`repro.streamrule.aio` -- the asyncio-native serving surface:
  :class:`AsyncStreamSession` and :class:`AioTcpBackend` multiplex many
  sessions over one event loop and one worker fleet.
* :mod:`repro.streamrule.parallel` -- the parallel reasoner ``PR``
  (the grey box of Figure 6), now a deprecated shim over the session.
* :mod:`repro.streamrule.pipeline` -- the legacy end-to-end pipeline,
  likewise a deprecated shim over the session.
* :mod:`repro.streamrule.server` -- the multi-tenant :class:`QueryServer`:
  many named standing queries over one shared backend, with shared-
  subprogram grounding, a fairness scheduler, and a Prometheus endpoint.

The architecture guide (``docs/architecture.md``) walks the full layer
stack; ``docs/api.md`` is the annotated index of this public surface.
"""

from repro.streamrule.adaptive import DEFAULT_CEILING, AdaptiveInflightController
from repro.streamrule.aio import (
    AioTcpBackend,
    AsyncStreamSession,
    AsyncWorkerClient,
    AsyncWorkerFleet,
)
from repro.streamrule.backends import (
    ExecutionBackend,
    ExecutionMode,
    InlineBackend,
    LoopbackSocketBackend,
    ProcessPoolBackend,
    SharedMemoryBackend,
    TcpBackend,
    ThreadPoolBackend,
    backend_for_mode,
)
from repro.streamrule.compat import reset_deprecation_warnings
from repro.streamrule.errors import BackendConnectionError, BackendError, HandshakeError, ProtocolError
from repro.streamrule.fleet import FleetRegistry, WorkerEndpoint, WorkerFleet
from repro.streamrule.metrics import (
    IngestionStats,
    LatencyBreakdown,
    ReasonerMetrics,
    TenantStats,
    Timer,
)
from repro.streamrule.net import PROTOCOL_VERSION, WireStats, WorkerClient
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.pipeline import StreamRulePipeline
from repro.streamrule.placement import ConsistentHashPlacement, PinnedPlacement, PlacementStrategy
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.session import (
    DEFAULT_MAX_INFLIGHT,
    ParallelResult,
    PendingWindow,
    StreamSession,
    WindowSolution,
)
from repro.streamrule.work import WorkItem

__all__ = [
    "AdaptiveInflightController",
    "AioTcpBackend",
    "AsyncStreamSession",
    "AsyncWorkerClient",
    "AsyncWorkerFleet",
    "BackendConnectionError",
    "BackendError",
    "ConsistentHashPlacement",
    "DEFAULT_CEILING",
    "DEFAULT_MAX_INFLIGHT",
    "ExecutionBackend",
    "ExecutionMode",
    "FleetAutoscaler",
    "FleetRegistry",
    "HandshakeError",
    "IngestionStats",
    "InlineBackend",
    "LatencyBreakdown",
    "LoopbackSocketBackend",
    "PROTOCOL_VERSION",
    "ParallelReasoner",
    "ParallelResult",
    "PendingWindow",
    "PinnedPlacement",
    "PlacementStrategy",
    "ProcessPoolBackend",
    "ProtocolError",
    "QueryResult",
    "QueryServer",
    "SharedMemoryBackend",
    "Reasoner",
    "ReasonerMetrics",
    "ReasonerResult",
    "StandingQuery",
    "StreamRulePipeline",
    "StreamSession",
    "TcpBackend",
    "TenantStats",
    "ThreadPoolBackend",
    "Timer",
    "WindowSolution",
    "WireStats",
    "WorkItem",
    "WorkerClient",
    "WorkerEndpoint",
    "WorkerFleet",
    "WorkerServer",
    "backend_for_mode",
    "reset_deprecation_warnings",
    "spawn_local_workers",
]

#: Worker-daemon names resolved lazily (PEP 562) so that
#: ``python -m repro.streamrule.worker`` does not find its target module
#: already imported by this package (runpy would warn and re-execute it).
_LAZY_WORKER_EXPORTS = ("LocalWorkerProcess", "WorkerServer", "spawn_local_workers")

#: The autoscaler imports the worker module, so it is lazy for the same
#: runpy reason.
_LAZY_AUTOSCALE_EXPORTS = ("FleetAutoscaler",)

#: Query-server names resolved lazily: the server package imports this
#: package's session/backends modules, so eager re-export would cycle.
_LAZY_SERVER_EXPORTS = ("QueryServer", "StandingQuery", "QueryResult")


def __getattr__(name: str):
    if name in _LAZY_WORKER_EXPORTS:
        from repro.streamrule import worker

        return getattr(worker, name)
    if name in _LAZY_AUTOSCALE_EXPORTS:
        from repro.streamrule import autoscale

        return getattr(autoscale, name)
    if name in _LAZY_SERVER_EXPORTS:
        from repro.streamrule import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
