"""The (extended) StreamRule framework.

* :mod:`repro.streamrule.metrics` -- latency breakdowns and accuracy records.
* :mod:`repro.streamrule.reasoner` -- the reasoner ``R``: data format
  processor plus the ASP solver, evaluating one whole window per call
  (the dashed box of Figure 1).
* :mod:`repro.streamrule.parallel` -- the parallel reasoner ``PR``:
  partitioning handler, a pool of ``R`` copies, and the combining handler
  (the grey box of Figure 6).
* :mod:`repro.streamrule.pipeline` -- the end-to-end pipeline: stream query
  processor -> (partitioned) reasoner -> solutions.
"""

from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics, Timer
from repro.streamrule.parallel import ExecutionMode, ParallelReasoner, ParallelResult
from repro.streamrule.pipeline import StreamRulePipeline, WindowSolution
from repro.streamrule.reasoner import Reasoner, ReasonerResult

__all__ = [
    "ExecutionMode",
    "LatencyBreakdown",
    "ParallelReasoner",
    "ParallelResult",
    "Reasoner",
    "ReasonerMetrics",
    "ReasonerResult",
    "StreamRulePipeline",
    "Timer",
    "WindowSolution",
]
