"""Deprecation bookkeeping for the pre-``StreamSession`` API.

Every deprecated construct (``ExecutionMode``, the
``reason(incremental=/track=)`` keyword cluster, ``process_stream``) warns
exactly once per interpreter, keyed by construct -- enough to steer users to
the new API without drowning streaming workloads in per-window warnings.
"""

from __future__ import annotations

import threading
import warnings
from typing import Set

__all__ = ["reset_deprecation_warnings", "warn_once"]

_WARNED: Set[str] = set()
_LOCK = threading.Lock()


def warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen.

    Returns whether the warning was actually emitted.  The once-per-construct
    registry is independent of the :mod:`warnings` filters, so even under
    ``simplefilter("always")`` a construct warns a single time.
    """
    with _LOCK:
        if key in _WARNED:
            return False
        _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_deprecation_warnings() -> None:
    """Forget which constructs already warned (test isolation hook)."""
    with _LOCK:
        _WARNED.clear()
