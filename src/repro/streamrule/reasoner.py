"""The reasoner ``R``: data format processor + ASP solver.

"We use ... reasoner R to refer to the subprocess in StreamRule which
includes the solver and the data format processor" (Section I).  One call to
:meth:`Reasoner.reason` therefore measures, for one input window:

1. translating the filtered RDF triples into ASP facts (transformation),
2. grounding the program together with the window's facts,
3. enumerating the answer sets,
4. projecting the answers onto the program's derived (output) predicates --
   the knowledge StreamRule streams back out as "solutions".

A reasoner may carry a :class:`~repro.asp.grounding.grounder.GroundingCache`
so recurring window content skips the instantiation phase entirely
(window-to-window grounding reuse); the per-window hit/miss outcome is
recorded in the returned metrics.

The module also defines the worker protocol shared by the process-pool and
loopback-socket execution backends: :func:`initialize_worker_reasoner`
unpickles the reasoner *once* per worker process and :func:`reason_item_task`
evaluates one :class:`~repro.streamrule.work.WorkItem` against it, so the
program is serialized once per pool rather than once per window.  Both must
be module-level functions to be picklable by :mod:`concurrent.futures`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.asp.control import Control
from repro.asp.grounding.grounder import GroundingCache
from repro.asp.solving.incremental import SolverCache
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.program import Program
from repro.streaming.format import DataFormatProcessor
from repro.streaming.triples import Triple
from repro.streaming.window import WindowDelta
from repro.streamrule.compat import warn_once
from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics, Timer
from repro.streamrule.work import WorkItem

__all__ = [
    "Reasoner",
    "ReasonerResult",
    "initialize_worker_reasoner",
    "reason_item_task",
    "reason_partition_task",
]

AnswerSet = FrozenSet[Atom]
WindowInput = Sequence[Union[Triple, Atom]]


@dataclass(frozen=True)
class ReasonerResult:
    """Answer sets of one window plus the evaluation record."""

    answers: Tuple[AnswerSet, ...]
    metrics: ReasonerMetrics

    @property
    def satisfiable(self) -> bool:
        return bool(self.answers)

    def atoms_of(self, predicate: str) -> Set[Atom]:
        """Union of the atoms of ``predicate`` across all answers."""
        found: Set[Atom] = set()
        for answer in self.answers:
            found.update(atom for atom in answer if atom.predicate == predicate)
        return found


class Reasoner:
    """The non-monotonic reasoner ``R`` of StreamRule."""

    def __init__(
        self,
        program: Program,
        input_predicates: Optional[Iterable[str]] = None,
        output_predicates: Optional[Iterable[str]] = None,
        format_processor: Optional[DataFormatProcessor] = None,
        max_models: Optional[int] = None,
        grounding_cache: Optional[GroundingCache] = None,
        solver_cache: Optional[SolverCache] = None,
    ):
        """Create a reasoner for ``program``.

        Parameters
        ----------
        program:
            The logic program ``P`` in ASP syntax.
        input_predicates:
            ``inpre(P)``.  Defaults to the EDB predicates of the program.
        output_predicates:
            Predicates reported in the answers.  Defaults to the program's
            IDB (derived) predicates, i.e. the new knowledge inferred from
            the window, which is what StreamRule streams out as solutions.
        format_processor:
            RDF <-> ASP translator; a default instance is created if omitted.
        max_models:
            Optional cap on the number of answer sets enumerated per window
            (``None`` enumerates all of them, clingo's ``--models=0``).
        grounding_cache:
            Optional window-to-window grounding memo; recurring window
            content (same fact set) then skips regrounding.  The cache is
            thread-safe, so one instance may be shared by concurrent
            threads; worker processes each hold their own.
        solver_cache:
            Optional window-to-window solver state (the solving-layer
            counterpart of ``grounding_cache``): sliding windows then repair
            the track's persistent solver state -- cached well-founded
            strata and a selector-guarded completion encoding -- and
            re-solve under assumptions instead of solving from scratch.
            Thread-safe with per-track locks; worker processes each warm
            their own (see :meth:`SolverCache.__reduce__`).
        """
        self.program = program
        self.input_predicates: Set[str] = (
            set(input_predicates) if input_predicates is not None else set(program.edb_predicates())
        )
        self.output_predicates: Set[str] = (
            set(output_predicates) if output_predicates is not None else set(program.idb_predicates())
        )
        self.format_processor = format_processor or DataFormatProcessor()
        self.max_models = max_models
        self.grounding_cache = grounding_cache
        self.solver_cache = solver_cache

    # ------------------------------------------------------------------ #
    def to_atoms(self, window: WindowInput) -> List[Atom]:
        """Translate a window of triples (or ready-made atoms) into ASP facts."""
        atoms: List[Atom] = []
        for item in window:
            if isinstance(item, Atom):
                atoms.append(item)
            elif isinstance(item, Triple):
                atoms.append(self.format_processor.triple_to_atom(item))
            else:
                raise TypeError(f"window items must be Triple or Atom, got {type(item)!r}")
        return atoms

    def reason_item(self, item: WorkItem) -> ReasonerResult:
        """Evaluate one :class:`~repro.streamrule.work.WorkItem`.

        This is the core evaluation path every execution backend dispatches
        to.  The item's delta/incremental intent selects the grounding
        route: when a grounding cache is attached and the item wants
        incremental grounding, the cache's delta path repairs the track's
        previous instantiation (retracting expired facts, instantiating from
        arrived ones) instead of regrounding -- see
        :meth:`GroundingCache.ground_incremental`.  An item that carries
        nothing over (tumbling/hopping windows, the first window of a
        stream) takes the plain path: there is no overlap to repair, and
        maintaining repairable state would only tax the full-reground path.
        Without a cache the intent is inert.
        """
        with Timer() as transformation_timer:
            facts = self.to_atoms(item.facts)

        control = Control(
            self.program,
            grounding_cache=self.grounding_cache,
            solver_cache=self.solver_cache,
            work=item,
        )
        control.add_facts(facts)
        result = control.solve(models=self.max_models)

        answers = tuple(
            frozenset(model.project(self.output_predicates).atoms) if self.output_predicates else frozenset(model.atoms)
            for model in result.models
        )
        breakdown = LatencyBreakdown(
            transformation_seconds=transformation_timer.seconds,
            grounding_seconds=result.grounding_seconds,
            solving_seconds=result.solving_seconds,
        )
        outcome = control.ground_outcome
        repair = control.repair_stats
        solve_stats = control.solve_stats
        metrics = ReasonerMetrics(
            window_size=len(item.facts),
            latency_seconds=breakdown.total_seconds,
            breakdown=breakdown,
            partition_sizes=[len(item.facts)],
            answer_count=len(answers),
            cache_hits=1 if outcome == "hit" else 0,
            cache_misses=1 if outcome == "full" else 0,
            delta_repairs=1 if outcome == "repair" else 0,
            repair_size=repair.repair_size if repair is not None else 0,
            repair_rules_changed=(repair.rules_deleted + repair.rules_added) if repair is not None else 0,
            assumption_resolves=1 if solve_stats is not None and solve_stats.is_incremental else 0,
            solver_full_solves=1 if solve_stats is not None and not solve_stats.is_incremental else 0,
            encoding_repairs=solve_stats.encoding_repairs if solve_stats is not None else 0,
            solver_clauses_retained=solve_stats.clauses_retained if solve_stats is not None else 0,
            solver_clauses_dropped=solve_stats.clauses_dropped if solve_stats is not None else 0,
            solver_strata_reused=solve_stats.strata_reused if solve_stats is not None else 0,
        )
        return ReasonerResult(answers=answers, metrics=metrics)

    def reason(
        self,
        window: WindowInput,
        *,
        delta: Optional[WindowDelta] = None,
        incremental: bool = False,
        track: int = 0,
    ) -> ReasonerResult:
        """Evaluate one input window (shim over :meth:`reason_item`).

        The ``incremental=``/``track=`` keyword cluster is deprecated in
        favour of passing a typed :class:`~repro.streamrule.work.WorkItem`
        to :meth:`reason_item` (or, one level up, of driving a
        :class:`~repro.streamrule.session.StreamSession`).  Passing a
        ``delta`` remains supported: it is how a single window annotated
        with its slide record is evaluated directly.
        """
        if incremental or track:
            warn_once(
                "reason-kwargs",
                "Reasoner.reason(incremental=..., track=...) is deprecated; build a "
                "WorkItem(facts, delta, track, epoch) and call Reasoner.reason_item "
                "(or use StreamSession, which threads WorkItems end to end).",
            )
        item = WorkItem(
            facts=tuple(window),
            delta=delta,
            track=track,
            incremental=True if incremental else None,
        )
        return self.reason_item(item)


# --------------------------------------------------------------------------- #
# Worker protocol (process-pool and loopback-socket backends)
# --------------------------------------------------------------------------- #
#: The per-process reasoner installed by :func:`initialize_worker_reasoner`.
_WORKER_REASONER: Optional[Reasoner] = None


def initialize_worker_reasoner(payload: bytes) -> None:
    """Process-pool initializer: unpickle the reasoner once per worker.

    The payload is produced by the parallel reasoner (``pickle.dumps`` of its
    underlying :class:`Reasoner`); every subsequent
    :func:`reason_partition_task` in this process reuses the instance, so the
    program is deserialized once per worker, not once per window.  The worker
    inherits the parent reasoner's grounding-cache *configuration*: a cached
    parent yields one fresh, equally-sized cache per worker (see
    :meth:`GroundingCache.__reduce__`), an uncached parent stays uncached --
    so PROCESSES never caches more than the other execution modes would.
    """
    global _WORKER_REASONER
    _WORKER_REASONER = pickle.loads(payload)


def ping_worker() -> bool:
    """Warm-up probe: forces worker spawn and reports initialization state.

    The executor spawns a process per submit while none is idle, and a
    burst of back-to-back pings completes long before any worker could
    finish spawning and go idle -- so one ping per worker spawns the whole
    pool.  This moves worker fork + reasoner unpickling out of the first
    window's measured evaluation phase.
    """
    return _WORKER_REASONER is not None


def reason_item_task(item: WorkItem) -> ReasonerResult:
    """Evaluate one :class:`WorkItem` against the per-process reasoner.

    The execution backends pin each partition track to a fixed worker slot
    (see :mod:`repro.streamrule.placement`), so the worker-local grounding
    cache sees consecutive windows of the same track and can delta-repair
    its last instantiation instead of regrounding.
    """
    if _WORKER_REASONER is None:
        raise RuntimeError(
            "worker process not initialized: reason_item_task requires a pool "
            "created with initializer=initialize_worker_reasoner"
        )
    return _WORKER_REASONER.reason_item(item)


def reason_partition_task(batch: WindowInput, incremental: bool = False, track: int = 0) -> ReasonerResult:
    """Legacy entry point of the pre-WorkItem worker protocol."""
    return reason_item_task(
        WorkItem(facts=tuple(batch), track=track, incremental=True if incremental else None)
    )
