"""The end-to-end (extended) StreamRule pipeline.

Wires together the stream query processor (CQELS stand-in), a reasoner (the
plain ``R`` or the parallel ``PR``), and the data format processor producing
output triples -- the full loop of Figures 1 and 6: Web of Data stream in,
solutions out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.asp.syntax.atoms import Atom
from repro.streaming.format import DataFormatProcessor
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, TimeWindow, WindowDelta
from repro.streamrule.metrics import ReasonerMetrics
from repro.streamrule.parallel import ParallelReasoner, ParallelResult
from repro.streamrule.reasoner import Reasoner, ReasonerResult

__all__ = ["StreamRulePipeline", "WindowSolution"]


@dataclass(frozen=True)
class WindowSolution:
    """Solutions produced for one window."""

    window_index: int
    window_size: int
    answers: Tuple[frozenset, ...]
    solution_triples: Tuple[Triple, ...]
    metrics: ReasonerMetrics


class StreamRulePipeline:
    """Filtered stream -> windows -> reasoner -> solution triples."""

    def __init__(
        self,
        reasoner: Union[Reasoner, ParallelReasoner],
        query_processor: Optional[StreamQueryProcessor] = None,
        window: Optional[Union[CountWindow, TimeWindow]] = None,
        format_processor: Optional[DataFormatProcessor] = None,
    ):
        self.reasoner = reasoner
        self.query_processor = query_processor
        self.window = window or CountWindow(size=1000)
        self.format_processor = format_processor or DataFormatProcessor()

    # ------------------------------------------------------------------ #
    # Resource lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release reasoner-held resources (the PROCESSES worker pool)."""
        closer = getattr(self.reasoner, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "StreamRulePipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def process_window(
        self,
        window_index: int,
        triples: Sequence[Triple],
        delta: Optional[WindowDelta] = None,
    ) -> WindowSolution:
        """Run one window through the (possibly parallel) reasoner.

        ``delta`` carries the window's expired/arrived record when the
        stream is iterated delta-aware (see :meth:`process_stream`); it is
        forwarded to the reasoner so a grounding cache can repair the
        previous window's instantiation instead of regrounding.
        """
        filtered = self.query_processor.process(triples) if self.query_processor else list(triples)
        result = self.reasoner.reason(filtered, delta=delta)
        solution_atoms: List[Atom] = sorted({atom for answer in result.answers for atom in answer}, key=str)
        solution_triples = tuple(
            self.format_processor.atom_to_triple(atom) for atom in solution_atoms if atom.arity in (1, 2)
        )
        return WindowSolution(
            window_index=window_index,
            window_size=len(filtered),
            answers=tuple(result.answers),
            solution_triples=solution_triples,
            metrics=result.metrics,
        )

    def process_stream(self, triples: Iterable[Triple]) -> Iterator[WindowSolution]:
        """Window an unbounded triple stream and process every window.

        Iterates the window policy's delta API, so overlapping sliding
        windows carry their expired/arrived deltas down to the reasoner
        (enabling incremental grounding when a cache is attached).
        """
        for delta in self.window.deltas(triples):
            yield self.process_window(delta.index, list(delta.window), delta=delta)

    def process_all(self, triples: Iterable[Triple]) -> List[WindowSolution]:
        return list(self.process_stream(triples))
