"""The end-to-end (extended) StreamRule pipeline (deprecated shim).

Wires together the stream query processor (CQELS stand-in), a reasoner (the
plain ``R`` or the parallel ``PR``), and the data format processor producing
output triples -- the full loop of Figures 1 and 6: Web of Data stream in,
solutions out.

Since the backend redesign the actual engine is
:class:`~repro.streamrule.session.StreamSession`; this class remains as a
thin compatibility layer that builds an equivalent session from its legacy
constructor arguments.  New code should construct the session directly::

    with StreamSession(program, window=CountWindow(size=1000),
                       partitioner=partitioner, backend=backend) as session:
        for solution in session.process(triples):
            ...

The canonical migration table (every shim, every replacement) is
``docs/migration.md``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.streaming.format import DataFormatProcessor
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, TimeWindow, WindowDelta
from repro.streamrule.compat import warn_once
from repro.streamrule.parallel import ParallelReasoner
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.session import StreamSession, WindowSolution

__all__ = ["StreamRulePipeline", "WindowSolution"]


class StreamRulePipeline:
    """Filtered stream -> windows -> reasoner -> solution triples."""

    def __init__(
        self,
        reasoner: Union[Reasoner, ParallelReasoner],
        query_processor: Optional[StreamQueryProcessor] = None,
        window: Optional[Union[CountWindow, TimeWindow]] = None,
        format_processor: Optional[DataFormatProcessor] = None,
    ):
        self.reasoner = reasoner
        self.query_processor = query_processor
        self.window = window or CountWindow(size=1000)
        self.format_processor = format_processor or DataFormatProcessor()
        self._session: Optional[StreamSession] = None

    # ------------------------------------------------------------------ #
    # Resource lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release reasoner-held resources (worker pools, sockets)."""
        closer = getattr(self.reasoner, "close", None)
        if callable(closer):
            closer()
        if self._session is not None:
            self._session.close()

    def __enter__(self) -> "StreamRulePipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def session(self) -> StreamSession:
        """The equivalent :class:`StreamSession` this shim delegates to.

        A :class:`ParallelReasoner` contributes its partitioner and backend
        (the session *shares* them, so worker pools and caches are reused);
        a plain :class:`Reasoner` runs unpartitioned and uncombined
        (``max_combinations=None``), exactly like the pre-session pipeline.
        """
        if self._session is None:
            if isinstance(self.reasoner, ParallelReasoner):
                inner = self.reasoner.session
                self._session = StreamSession(
                    inner.reasoner,
                    partitioner=inner.partitioner,
                    backend=inner.backend,
                    max_combinations=inner.max_combinations,
                    window=self.window,
                    query_processor=self.query_processor,
                    format_processor=self.format_processor,
                    # Shared backend, shared pipelining: the shim streams
                    # with the same in-flight bound the inner session would.
                    max_inflight=inner.max_inflight,
                )
            else:
                self._session = StreamSession(
                    self.reasoner,
                    window=self.window,
                    query_processor=self.query_processor,
                    format_processor=self.format_processor,
                    max_combinations=None,
                )
        return self._session

    def process_window(
        self,
        window_index: int,
        triples: Sequence[Triple],
        delta: Optional[WindowDelta] = None,
    ) -> WindowSolution:
        """Run one window through the (possibly parallel) reasoner.

        ``delta`` carries the window's expired/arrived record when the
        stream is iterated delta-aware (see :meth:`process_stream`); it is
        forwarded so a grounding cache can repair the previous window's
        instantiation instead of regrounding.
        """
        return self.session()._solve_window(window_index, list(triples), delta)

    def process_stream(self, triples: Iterable[Triple]) -> Iterator[WindowSolution]:
        """Window an unbounded triple stream and process every window.

        Deprecated shim over :meth:`StreamSession.process`: overlapping
        sliding windows still carry their expired/arrived deltas down to
        the reasoner (enabling incremental grounding when a cache is
        attached).
        """
        warn_once(
            "process-stream",
            "StreamRulePipeline.process_stream is deprecated; construct a StreamSession "
            "and use session.process(triples) (or the push/results facade).",
        )
        return self.session().process(triples)

    def process_all(self, triples: Iterable[Triple]) -> List[WindowSolution]:
        return list(self.process_stream(triples))
