"""The remote worker daemon: ``python -m repro.streamrule.worker``.

A worker is one half of the distributed execution tier (the other half is
the coordinator side: :class:`~repro.streamrule.fleet.WorkerFleet` driving
:class:`~repro.streamrule.backends.TcpBackend`).  It listens on a TCP
address, and serves every accepted coordinator connection with the protocol
loop of :func:`repro.streamrule.net.serve_worker_connection`: versioned
handshake, pickled-reasoner installation, then ``WORK``/``DELTA`` frames in,
``RESULT`` frames out, with ``PING`` heartbeats answered in between.

Each connection holds its *own* reasoner (the coordinator ships it during
the handshake), so one daemon can serve several independent fleets, and a
worker never needs the program pre-installed -- it only needs this package
importable.  Run it like::

    PYTHONPATH=src python -m repro.streamrule.worker --listen 0.0.0.0:7700

``--listen HOST:0`` binds an ephemeral port; the daemon always prints
``listening on HOST:PORT`` (flushed) once ready, which is what
:func:`spawn_local_workers` -- the helper the tests, benchmarks, and
``examples/distributed_fleet.py`` use to stand up a local fleet -- waits
for.  See ``docs/deployment.md`` for the operational guide.

By default the wire protocol ships pickles, so a plain daemon must only
listen on trusted networks.  Three hardening flags change that posture
(see ``docs/deployment-security.md``): ``--tls-cert``/``--tls-key`` wrap
every connection in TLS, ``--auth-token`` (or ``$STREAMRULE_AUTH_TOKEN``)
demands an HMAC challenge/response in the handshake, and ``--restricted``
refuses pickle entirely -- programs arrive as text and facts as typed
frames, so even an authenticated coordinator cannot execute code on the
worker.  ``--announce HOST:PORT`` makes the daemon call home to a
coordinator's :class:`~repro.streamrule.fleet.FleetRegistry` so a revived
worker rejoins its fleet the moment it boots.
"""

from __future__ import annotations

import argparse
import logging
import os
import select
import signal
import socket
import ssl
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.streamrule.fleet import WorkerEndpoint
from repro.streamrule.net import announce_endpoint, serve_worker_connection

__all__ = ["LocalWorkerProcess", "WorkerServer", "main", "parse_listen_address", "spawn_local_workers"]

logger = logging.getLogger("repro.streamrule.worker")


def parse_listen_address(text: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (port 0 = ephemeral) into an address tuple.

    Thin alias over :meth:`WorkerEndpoint.parse` so the daemon's
    ``--listen`` grammar is exactly the coordinator's endpoint grammar.
    """
    endpoint = WorkerEndpoint.parse(text)
    return endpoint.host, endpoint.port


class WorkerServer:
    """A threaded TCP server evaluating shipped work items.

    One daemon thread accepts connections; each connection is served on its
    own daemon thread by :func:`serve_worker_connection` (so a slow
    evaluation on one coordinator connection never blocks another).  The
    server is context-managed and restartable::

        with WorkerServer(port=0) as server:
            host, port = server.address
            ...

    ``capabilities`` restricts what the server negotiates (e.g.
    ``{"delta_shipping": False}`` forces full-fact shipping -- the knob the
    capability-negotiation tests and the benchmark's delta-vs-full sweep
    turn), ``protocol_version`` can be overridden to simulate a mismatched
    deployment in tests, and ``read_ahead`` bounds how many frames each
    connection receives and decodes ahead of its evaluation loop (the
    server half of connection pipelining -- see
    :func:`~repro.streamrule.net.serve_worker_connection`).

    Hardening knobs (all optional, see ``docs/deployment-security.md``):
    ``ssl_context`` TLS-wraps every accepted connection (a plaintext
    client then fails its handshake instead of talking to the reasoner),
    ``auth_token`` demands the HMAC ``AUTH`` response after ``WELCOME``,
    and ``codec="restricted"`` refuses pickle entirely -- programs arrive
    as text and facts as typed frames, so an untrusted coordinator cannot
    execute code here.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        capabilities: Optional[Dict[str, bool]] = None,
        protocol_version: Optional[int] = None,
        read_ahead: int = 8,
        ssl_context: Optional[ssl.SSLContext] = None,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
    ):
        self.host = host
        self.port = port
        self.capabilities = capabilities
        self.protocol_version = protocol_version
        self.read_ahead = read_ahead
        self.ssl_context = ssl_context
        self.auth_token = auth_token
        self.codec = codec
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[socket.socket] = []
        self._lock = threading.Lock()
        self.connections_served = 0

    # -- lifecycle ------------------------------------------------------- #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    @property
    def running(self) -> bool:
        return self._listener is not None

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting; returns the bound address."""
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self._listener = listener
        self._accept_thread = threading.Thread(target=self._accept_loop, name="streamrule-worker-accept", daemon=True)
        self._accept_thread.start()
        logger.info("worker listening on %s:%s", *self.address)
        return self.address

    def stop(self) -> None:
        """Close the listener and every live connection (idempotent)."""
        listener, self._listener = self._listener, None
        if listener is not None:
            # shutdown() before close(): a close alone does not wake a
            # thread blocked in accept() (the blocked syscall keeps the
            # kernel socket alive and listening), so a "stopped" server
            # would still accept one more connection.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        thread, self._accept_thread = self._accept_thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving --------------------------------------------------------- #
    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and listener.fileno() != -1:
            try:
                connection, peer = listener.accept()
            except OSError:
                return  # listener closed: clean shutdown
            logger.info("accepted coordinator connection from %s:%s", *peer[:2])
            with self._lock:
                self._connections.append(connection)
                self.connections_served += 1
            threading.Thread(
                target=self._serve,
                args=(connection, peer),
                name=f"streamrule-worker-conn-{self.connections_served}",
                daemon=True,
            ).start()

    def _serve(self, connection: socket.socket, peer) -> None:
        accepted = connection
        try:
            if self.ssl_context is not None:
                # Wrap here, on the per-connection thread, so a client
                # stalling its TLS handshake (or a plaintext client whose
                # bytes are not a ClientHello) never blocks the accept
                # loop.  A failed wrap just drops the connection -- the
                # plaintext peer sees EOF and raises HandshakeError on
                # its side.
                try:
                    connection = self.ssl_context.wrap_socket(connection, server_side=True)
                except (ssl.SSLError, OSError) as error:
                    logger.warning("TLS handshake with %s:%s failed: %s", peer[0], peer[1], error)
                    try:
                        accepted.close()
                    except OSError:
                        pass
                    return
                # wrap_socket took over the file descriptor: track (and
                # later close) the TLS socket, not the detached shell.
                with self._lock:
                    if accepted in self._connections:
                        self._connections[self._connections.index(accepted)] = connection
            record = serve_worker_connection(
                connection,
                capabilities=self.capabilities,
                read_ahead=self.read_ahead,
                auth_token=self.auth_token,
                codec=self.codec,
                **({"protocol_version": self.protocol_version} if self.protocol_version is not None else {}),
            )
            if record.rejected:
                logger.warning("connection from %s:%s rejected: %s", peer[0], peer[1], record.rejected)
            else:
                logger.info(
                    "connection from %s:%s closed after %d items (%d delta frames, %d pings)",
                    peer[0], peer[1], record.items, record.deltas, record.pings,
                )
        finally:
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)


# --------------------------------------------------------------------------- #
# Spawning local worker subprocesses (tests, benchmarks, examples)
# --------------------------------------------------------------------------- #
class LocalWorkerProcess:
    """Handle on one ``python -m repro.streamrule.worker`` subprocess."""

    def __init__(self, process: subprocess.Popen, address: Tuple[str, int]):
        self.process = process
        self.address = address

    @property
    def endpoint(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self, timeout: float = 5.0) -> None:
        """Stop the daemon (SIGTERM, then SIGKILL past ``timeout``)."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=timeout)
        if self.process.stdout is not None:
            self.process.stdout.close()

    def kill(self) -> None:
        """Hard-kill the daemon (the fault the rerouting tests inject)."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=5.0)
        if self.process.stdout is not None:
            self.process.stdout.close()


def spawn_local_workers(
    count: int = 2,
    *,
    host: str = "127.0.0.1",
    extra_arguments: Sequence[str] = (),
    startup_timeout: float = 30.0,
) -> List[LocalWorkerProcess]:
    """Spawn ``count`` worker daemons on ephemeral localhost ports.

    Each subprocess runs ``python -m repro.streamrule.worker --listen
    host:0`` with this package's source root on ``PYTHONPATH``, and is
    considered ready once it prints its ``listening on HOST:PORT`` line.
    The caller owns the processes (call :meth:`LocalWorkerProcess.terminate`
    -- typically in a ``finally:``).
    """
    source_root = str(Path(__file__).resolve().parents[2])
    environment = dict(os.environ)
    # A self-spawned fleet is private: hardening applies only when the
    # caller passes the flags via ``extra_arguments``.  Without this, an
    # ambient STREAMRULE_AUTH_TOKEN (set for a *pre-launched* CI fleet)
    # would make these daemons demand auth their own callers never send.
    environment.pop("STREAMRULE_AUTH_TOKEN", None)
    python_path = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = source_root if not python_path else source_root + os.pathsep + python_path
    workers: List[LocalWorkerProcess] = []
    try:
        for _ in range(count):
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.streamrule.worker", "--listen", f"{host}:0", *extra_arguments],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=environment,
            )
            assert process.stdout is not None
            address = _await_listening_line(process, startup_timeout)
            workers.append(LocalWorkerProcess(process, address))
    except BaseException:
        for worker in workers:
            worker.terminate()
        raise
    return workers


def _await_listening_line(process: subprocess.Popen, timeout: float) -> Tuple[str, int]:
    """Block until the daemon announces its address (or dies, or times out).

    ``select`` guards every read so a daemon that hangs *without* printing
    (import deadlock, swallowed stdout) still trips the timeout instead of
    blocking ``readline`` forever.
    """
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while time.monotonic() < deadline:
        ready, _, _ = select.select([process.stdout], [], [], 0.2)
        if not ready:
            if process.poll() is not None:
                raise RuntimeError(f"worker exited during startup (code {process.poll()})")
            continue
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(f"worker exited during startup (code {process.poll()})")
        if line.startswith("listening on "):
            return parse_listen_address(line[len("listening on "):].strip())
    process.kill()
    raise RuntimeError("worker did not announce its address in time")


# --------------------------------------------------------------------------- #
# The CLI entry point
# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.streamrule.worker --listen HOST:PORT``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.streamrule.worker",
        description="StreamRule remote worker daemon: evaluates WorkItems shipped by a TcpBackend coordinator.",
    )
    parser.add_argument(
        "--listen",
        type=parse_listen_address,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="address to listen on (port 0 binds an ephemeral port; default 127.0.0.1:0)",
    )
    parser.add_argument(
        "--no-delta",
        action="store_true",
        help="refuse the delta_shipping capability (coordinators fall back to full fact sets)",
    )
    parser.add_argument(
        "--no-symbol-ids",
        action="store_true",
        help="refuse the symbol_ids capability (coordinators ship pickled atoms instead of interned ids)",
    )
    parser.add_argument(
        "--read-ahead",
        type=int,
        default=8,
        metavar="N",
        help="frames each connection receives and decodes ahead of its evaluation loop "
        "(bounds per-connection memory; 1 disables read-ahead; default 8)",
    )
    parser.add_argument(
        "--tls-cert",
        metavar="PEM",
        help="serve TLS with this certificate chain (requires --tls-key unless the key is in the same file)",
    )
    parser.add_argument("--tls-key", metavar="PEM", help="private key for --tls-cert")
    parser.add_argument(
        "--auth-token",
        metavar="TOKEN",
        default=os.environ.get("STREAMRULE_AUTH_TOKEN") or None,
        help="require HMAC token auth in the handshake "
        "(defaults to $STREAMRULE_AUTH_TOKEN; prefer the variable -- argv leaks into `ps`)",
    )
    parser.add_argument(
        "--restricted",
        action="store_true",
        help="refuse pickle entirely: only restricted-codec coordinators (program as text, "
        "facts as typed frames) are accepted",
    )
    parser.add_argument(
        "--announce",
        type=parse_listen_address,
        metavar="HOST:PORT",
        help="periodically announce this worker to a coordinator FleetRegistry at HOST:PORT",
    )
    parser.add_argument(
        "--announce-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between --announce attempts (default 2.0)",
    )
    parser.add_argument("--verbose", "-v", action="store_true", help="log connections and handshakes to stderr")
    arguments = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.INFO if arguments.verbose else logging.WARNING,
        stream=sys.stderr,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if arguments.read_ahead < 1:
        parser.error("--read-ahead must be at least 1")
    if arguments.tls_key and not arguments.tls_cert:
        parser.error("--tls-key requires --tls-cert")
    if arguments.announce_interval <= 0:
        parser.error("--announce-interval must be positive")
    ssl_context: Optional[ssl.SSLContext] = None
    if arguments.tls_cert:
        ssl_context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        try:
            ssl_context.load_cert_chain(arguments.tls_cert, arguments.tls_key)
        except (OSError, ssl.SSLError) as error:
            parser.error(f"cannot load TLS certificate: {error}")
    capabilities = {
        "delta_shipping": not arguments.no_delta,
        "symbol_ids": not arguments.no_symbol_ids,
    }
    server = WorkerServer(
        arguments.listen[0],
        arguments.listen[1],
        capabilities=capabilities,
        read_ahead=arguments.read_ahead,
        ssl_context=ssl_context,
        auth_token=arguments.auth_token,
        codec="restricted" if arguments.restricted else "pickle",
    )
    host, port = server.start()
    print(f"listening on {host}:{port}", flush=True)

    stop = threading.Event()

    if arguments.announce is not None:
        registry_address = arguments.announce

        def announce_loop() -> None:
            # Announce immediately (a revived worker should rejoin the
            # fleet now, not an interval from now), then keep calling
            # home; announce_endpoint swallows every failure into False,
            # so a registry that is not up yet just means "try again".
            while not stop.is_set():
                acknowledged = announce_endpoint(registry_address, (host, port))
                logger.info(
                    "announce to %s:%s %s", registry_address[0], registry_address[1],
                    "acknowledged" if acknowledged else "unanswered",
                )
                stop.wait(arguments.announce_interval)

        threading.Thread(target=announce_loop, name="streamrule-worker-announce", daemon=True).start()

    def handle_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)
    try:
        stop.wait()
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
