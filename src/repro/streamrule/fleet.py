"""The :class:`WorkerFleet` coordinator: placement slots over worker endpoints.

The placement layer (:mod:`repro.streamrule.placement`) maps work items to
abstract *slots*; this module maps slots to *machines*.  A fleet owns one
:class:`~repro.streamrule.net.WorkerClient` per live endpoint and a
slot-ownership table (slot ``i`` starts on endpoint ``i % n``).  When a
worker dies mid-stream the fleet

1. retries the endpoint with bounded exponential backoff
   (:func:`~repro.streamrule.net.connect_with_backoff` semantics -- a
   worker restarted by its supervisor picks its slots straight back up),
2. failing that, marks the endpoint dead and *reroutes* its slots
   round-robin over the survivors (the in-flight item is resubmitted there,
   so no window is lost, and since the dead connection never delivered its
   result, none is duplicated),
3. and once no endpoint survives, raises
   :class:`~repro.streamrule.errors.BackendConnectionError` -- which the
   session answers by evaluating the partition inline, extending its
   ``fallbacks`` counter.  The stream keeps flowing even with an empty
   fleet.

Rerouted tracks land on a worker whose grounding cache has no state for
them; the first item after a reroute is shipped as a full fact set (fresh
delta-shipping state per connection) and grounds from scratch, after which
delta shipping and delta grounding resume on the new worker.

Endpoints marked dead are no longer dead forever: a revived worker is
**re-adopted** without a backend restart, through any of three doors --

* :meth:`WorkerFleet.readopt` reconnects one named dead endpoint and hands
  it back the slots of its canonical layout (``slot % n``);
* :meth:`WorkerFleet.readopt_dead` probes every dead endpoint once (the
  TCP backend's heartbeat thread calls this each beat, so a worker
  restarted on the same address rejoins within one heartbeat interval);
* a :class:`FleetRegistry` listener accepts ``ANNOUNCE`` frames from
  workers started with ``--announce`` and readopts the matching endpoint
  the moment it calls home (push rediscovery, no heartbeat latency).

The fleet can also *grow and shrink* mid-stream for the autoscaler:
:meth:`WorkerFleet.adopt_endpoint` appends a brand-new endpoint and gives
it the slots of the widened canonical layout, and
:meth:`WorkerFleet.retire_endpoint` drains one back out (its slots
reroute exactly like a death, minus the corpse).
"""

from __future__ import annotations

import socket
import ssl
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.streamrule.errors import BackendConnectionError, HandshakeError, ProtocolError
from repro.streamrule.net import (
    MAGIC,
    FrameKind,
    WireStats,
    WorkerClient,
    parse_announce,
    recv_exactly,
    recv_frame,
    send_frame,
)
from repro.streamrule.reasoner import ReasonerResult
from repro.streamrule.work import WorkItem

__all__ = [
    "EndpointLike",
    "FleetRegistry",
    "WorkerEndpoint",
    "WorkerFleet",
    "initial_slot_owners",
    "rerouted_owner",
]


def initial_slot_owners(slot_count: int, endpoint_count: int) -> List[int]:
    """The canonical slot -> endpoint layout: slot ``i`` on endpoint ``i % n``.

    Shared by :class:`WorkerFleet` and its asyncio sibling
    (:class:`repro.streamrule.aio.AsyncWorkerFleet`) so the two route a
    given slot to the same worker -- which keeps a track's cache state on
    one machine whichever client drives the fleet.
    """
    return [index % endpoint_count for index in range(slot_count)]


def rerouted_owner(slot: int, alive: Sequence[int]) -> int:
    """Where a slot lands when its owner is dead: round-robin over survivors."""
    return alive[slot % len(alive)]


@dataclass(frozen=True)
class WorkerEndpoint:
    """One worker daemon's address."""

    host: str
    port: int

    @classmethod
    def parse(cls, text: "EndpointLike") -> "WorkerEndpoint":
        """Accept ``"host:port"`` strings, ``(host, port)`` pairs, or instances.

        The single ``host:port`` parser of the execution layer -- the
        worker CLI's ``--listen`` delegates here too, so the grammar and
        the port-range validation cannot drift between the two surfaces.
        """
        if isinstance(text, WorkerEndpoint):
            return text
        if isinstance(text, tuple):
            host, port = text
            port = int(port)
        else:
            host, separator, port_text = text.rpartition(":")
            if not separator or not host:
                raise ValueError(f"expected HOST:PORT, got {text!r}")
            try:
                port = int(port_text)
            except ValueError as error:
                raise ValueError(f"invalid port in {text!r}") from error
        if not 0 <= port <= 65535:
            raise ValueError(f"port {port} out of range")
        return cls(host, port)

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


#: Anything :meth:`WorkerEndpoint.parse` accepts.
EndpointLike = Union[str, Tuple[str, int], WorkerEndpoint]


class WorkerFleet:
    """Connection manager + slot router over a set of worker endpoints.

    Thread-safe: the per-slot dispatcher threads of
    :class:`~repro.streamrule.backends.TcpBackend` call :meth:`roundtrip`
    concurrently (per-connection serialization lives in
    :class:`~repro.streamrule.net.WorkerClient`), and the routing table is
    guarded by the fleet lock.

    Parameters
    ----------
    endpoints:
        Worker addresses (``"host:port"`` strings or
        :class:`WorkerEndpoint`).  At least one is required.
    slots:
        Number of placement slots to spread over the endpoints; defaults to
        ``len(endpoints)``.  More slots than endpoints is legitimate (slots
        are the unit of rerouting granularity, endpoints the unit of
        failure).
    delta_shipping / symbol_ids:
        Offer the ``delta_shipping`` / ``symbol_ids`` capabilities in the
        handshake (the worker may still decline either).
    connect_attempts / reconnect_attempts:
        Backoff budgets for the initial connect and for reviving a dead
        endpoint mid-stream.
    ssl_context / server_hostname:
        TLS-wrap every worker connection (``server_hostname`` overrides
        the SNI/verification name, for certs not issued to the literal
        endpoint host).
    auth_token:
        Shared token for the ``AUTH`` challenge/response; required when
        the daemons were started with one.
    codec:
        ``"pickle"`` (default, trusted networks) or ``"restricted"``
        (JSON/packed-id codec; the fleet refuses workers that do not
        accept it).
    """

    def __init__(
        self,
        endpoints: Sequence["EndpointLike"],
        *,
        slots: Optional[int] = None,
        delta_shipping: bool = True,
        symbol_ids: bool = True,
        connect_attempts: int = 5,
        reconnect_attempts: int = 2,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        connect_timeout: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
        ssl_context: Optional[ssl.SSLContext] = None,
        server_hostname: Optional[str] = None,
        auth_token: Optional[str] = None,
        codec: str = "pickle",
    ):
        self.endpoints: List[WorkerEndpoint] = [WorkerEndpoint.parse(endpoint) for endpoint in endpoints]
        if not self.endpoints:
            raise ValueError("a worker fleet needs at least one endpoint")
        if slots is not None and slots < 1:
            raise ValueError("a worker fleet needs at least one slot")
        self.slot_count: int = slots if slots is not None else len(self.endpoints)
        self.delta_shipping = delta_shipping
        self.symbol_ids = symbol_ids
        self.connect_attempts = connect_attempts
        self.reconnect_attempts = reconnect_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.connect_timeout = connect_timeout
        self.ssl_context = ssl_context
        self.server_hostname = server_hostname
        self.auth_token = auth_token
        self.codec = codec
        self._sleep = sleep
        self._lock = threading.Lock()
        #: One lock per endpoint serializing reconnect attempts, so a slow
        #: reconnect never blocks dispatch on slots of *other* endpoints
        #: (the global lock only ever guards table mutations, never I/O).
        self._endpoint_locks = [threading.Lock() for _ in self.endpoints]
        self._payload: Optional[bytes] = None
        self._clients: List[Optional[WorkerClient]] = [None] * len(self.endpoints)
        self._dead: List[bool] = [False] * len(self.endpoints)
        self._slot_owner: List[int] = initial_slot_owners(self.slot_count, len(self.endpoints))
        self._retired_stats = WireStats()
        #: How many slot reassignments dead workers have caused.
        self.reroutes = 0
        #: How many dead endpoints were revived and given their slots back.
        self.readoptions = 0
        #: How many endpoints the autoscaler adopted / retired mid-stream.
        self.adoptions = 0
        self.retirements = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, reasoner_payload: bytes) -> None:
        """Connect and handshake every endpoint; ship the reasoner to each.

        Endpoints that cannot be reached within the connect budget are
        marked dead and their slots rerouted immediately; if *no* endpoint
        answers, the start fails with :class:`BackendConnectionError`.
        A :class:`HandshakeError` (version mismatch) always propagates --
        that is a deployment bug, not a transient fault -- after closing
        every connection opened so far, so a failed start never leaks
        sockets.
        """
        with self._lock:
            self._payload = reasoner_payload
            try:
                for index in range(len(self.endpoints)):
                    if self._clients[index] is None and not self._dead[index]:
                        try:
                            self._clients[index] = self._connect(
                                index, self.connect_attempts, reasoner_payload
                            )
                        except BackendConnectionError:
                            self._mark_dead(index)
            except HandshakeError:
                for index, client in enumerate(self._clients):
                    if client is not None:
                        client.close()
                        self._clients[index] = None
                raise
            if not self._alive_indexes():
                raise BackendConnectionError(
                    f"no worker of the fleet {[str(e) for e in self.endpoints]} is reachable"
                )

    def close(self) -> None:
        """Close every live connection (idempotent; ``start`` reconnects)."""
        with self._lock:
            clients, self._clients = self._clients, [None] * len(self.endpoints)
            self._dead = [False] * len(self.endpoints)
            self._slot_owner = initial_slot_owners(self.slot_count, len(self.endpoints))
            self._payload = None
        for client in clients:
            if client is not None:
                self._retired_stats = self._retired_stats.merged_with(client.stats)
                client.close()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def roundtrip(self, slot: int, item: WorkItem) -> ReasonerResult:
        """Evaluate ``item`` on ``slot``'s worker, rerouting around failures.

        Tries every endpoint the slot gets rerouted to at most once per
        endpoint (plus one bounded reconnect attempt at each), so a
        cascading outage terminates in a :class:`BackendConnectionError`
        instead of spinning.

        This covers *pending* dispatches too: connections are pipelined, so
        when a worker dies with several frames outstanding, every waiting
        roundtrip (not only the one whose receive hit the error) gets a
        :class:`BackendConnectionError` from the client's ticket queue and
        re-enters this loop -- each in-flight item is resubmitted on the
        slot's rerouted owner, in its dispatcher's original order, so a
        mid-burst crash loses no window and duplicates none (the dead
        connection never delivered their results).
        """
        if not 0 <= slot < self.slot_count:
            raise ValueError(f"slot {slot} out of range for a {self.slot_count}-slot fleet")
        failure: Optional[BackendConnectionError] = None
        for _ in range(len(self.endpoints) + 1):
            client, owner = self._client_for_slot(slot)
            if client is None:
                break
            try:
                return client.submit_item(item)
            except BackendConnectionError as error:
                failure = error
                self._handle_connection_loss(owner)
        raise BackendConnectionError(
            f"no live worker left for slot {slot} "
            f"(fleet {[str(e) for e in self.endpoints]})"
        ) from failure

    def ping(self) -> Dict[str, Optional[float]]:
        """Heartbeat every live endpoint; dead/unresponsive ones map to ``None``.

        A worker that fails its heartbeat is handled exactly like a worker
        that fails mid-item: bounded reconnect, then slot rerouting.  The
        TCP backend's heartbeat thread calls this between windows so a
        silently-gone worker is discovered (and its slots moved) *before*
        the next window blocks on it.
        """
        outcome: Dict[str, Optional[float]] = {}
        for index, endpoint in enumerate(self.endpoints):
            with self._lock:
                client = self._clients[index]
            if client is None:
                outcome[str(endpoint)] = None
                continue
            try:
                outcome[str(endpoint)] = client.ping()
            except BackendConnectionError:
                outcome[str(endpoint)] = None
                self._handle_connection_loss(index)
        return outcome

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def alive_endpoints(self) -> List[WorkerEndpoint]:
        with self._lock:
            return [self.endpoints[index] for index in self._alive_indexes()]

    def slot_table(self) -> Dict[int, str]:
        """Current slot -> endpoint routing (diagnostic snapshot)."""
        with self._lock:
            return {slot: str(self.endpoints[owner]) for slot, owner in enumerate(self._slot_owner)}

    def pending_items(self) -> Dict[str, int]:
        """Frames in flight per endpoint (sent, response not yet received).

        The wire-level queue-depth introspection behind the backend's
        backpressure accounting: on a pipelined connection several work
        frames may be outstanding at once, and this snapshot shows how far
        each worker has fallen behind its coordinator-side dispatchers.
        """
        with self._lock:
            clients = list(zip(self.endpoints, self._clients))
        return {
            str(endpoint): (client.pending_count if client is not None else 0)
            for endpoint, client in clients
        }

    def wire_statistics(self) -> WireStats:
        """Aggregate :class:`WireStats` over all connections, live and retired."""
        with self._lock:
            clients = [client for client in self._clients if client is not None]
            merged = self._retired_stats
        for client in clients:
            merged = merged.merged_with(client.stats)
        return merged

    @property
    def dead_endpoints(self) -> List[WorkerEndpoint]:
        with self._lock:
            return [self.endpoints[index] for index, dead in enumerate(self._dead) if dead]

    # ------------------------------------------------------------------ #
    # Elasticity: readoption, adoption, retirement
    # ------------------------------------------------------------------ #
    def readopt(self, index: int, *, attempts: Optional[int] = None) -> bool:
        """Re-adopt dead endpoint ``index`` if it answers; returns success.

        On success the endpoint gets back every slot of its canonical
        layout (``slot % n == index``) -- the same slots a fresh ``start``
        would give it -- so a revived worker resumes exactly the tracks it
        owned before the kill.  Its delta/symbol state is fresh (new
        connection), so the first window per track ships full and grounds
        from scratch, after which the steady-state paths resume.  A still-
        unreachable endpoint stays dead and the probe cost is one bounded
        connect.  Never raises on an unreachable or version-skewed peer.
        """
        if not 0 <= index < len(self.endpoints):
            raise ValueError(f"endpoint index {index} out of range")
        with self._endpoint_locks[index]:
            with self._lock:
                if not self._dead[index] or self._payload is None:
                    return False
                payload = self._payload
            budget = attempts if attempts is not None else self.reconnect_attempts
            try:
                revived = self._connect(index, budget, payload)
            except (HandshakeError, BackendConnectionError):
                return False
            with self._lock:
                if not self._dead[index]:  # someone else won the race
                    revived.close()
                    return False
                self._dead[index] = False
                self._clients[index] = revived
                for slot in range(self.slot_count):
                    if slot % len(self.endpoints) == index and self._slot_owner[slot] != index:
                        self._slot_owner[slot] = index
                self.readoptions += 1
        return True

    def readopt_dead(self, *, attempts: int = 1) -> List[WorkerEndpoint]:
        """Probe every dead endpoint once; returns the ones revived.

        The heartbeat thread's rediscovery hook: one cheap connect attempt
        per dead endpoint per beat, so a worker restarted on its old
        address rejoins within a heartbeat interval even without a
        registry.
        """
        with self._lock:
            dead = [index for index, is_dead in enumerate(self._dead) if is_dead]
        return [
            self.endpoints[index] for index in dead if self.readopt(index, attempts=attempts)
        ]

    def adopt_endpoint(self, endpoint: "EndpointLike", *, attempts: Optional[int] = None) -> int:
        """Grow the fleet by one endpoint mid-stream; returns its index.

        The new endpoint receives the slots of the *widened* canonical
        layout (``slot % (n+1) == n``) -- slots it steals were until now
        served by survivors, whose caches simply stop seeing those tracks.
        Raises :class:`BackendConnectionError` (or :class:`HandshakeError`)
        when the endpoint cannot be handshaken; the fleet is unchanged in
        that case.
        """
        parsed = WorkerEndpoint.parse(endpoint)
        with self._lock:
            if self._payload is None:
                raise RuntimeError("adopt_endpoint requires a started fleet")
            payload = self._payload
            index = len(self.endpoints)
            if any(existing == parsed for existing in self.endpoints):
                raise ValueError(f"endpoint {parsed} is already part of the fleet")
        client = WorkerClient(
            (parsed.host, parsed.port),
            payload,
            delta_shipping=self.delta_shipping,
            symbol_ids=self.symbol_ids,
            attempts=attempts if attempts is not None else self.connect_attempts,
            base_delay=self.base_delay,
            max_delay=self.max_delay,
            connect_timeout=self.connect_timeout,
            sleep=self._sleep,
            ssl_context=self.ssl_context,
            server_hostname=self.server_hostname,
            auth_token=self.auth_token,
            codec=self.codec,
        )
        with self._lock:
            index = len(self.endpoints)
            self.endpoints.append(parsed)
            self._clients.append(client)
            self._dead.append(False)
            self._endpoint_locks.append(threading.Lock())
            count = len(self.endpoints)
            for slot in range(self.slot_count):
                if slot % count == index:
                    self._slot_owner[slot] = index
            self.adoptions += 1
        return index

    def retire_endpoint(self, index: int) -> None:
        """Drain endpoint ``index`` out of the fleet (autoscaler scale-down).

        Its slots reroute over the survivors exactly as if it had died --
        in-flight items on the retired connection fail over through the
        normal resubmission path -- but the endpoint is *not* marked
        permanently dead, so a later :meth:`readopt` (or announce) can
        bring it back.
        """
        if not 0 <= index < len(self.endpoints):
            raise ValueError(f"endpoint index {index} out of range")
        with self._lock:
            if self._clients[index] is None and self._dead[index]:
                return
            self._mark_dead(index)
            self.retirements += 1

    # ------------------------------------------------------------------ #
    # Internals (callers hold no lock)
    # ------------------------------------------------------------------ #
    def _connect(self, index: int, attempts: int, payload: bytes) -> WorkerClient:
        endpoint = self.endpoints[index]
        return WorkerClient(
            (endpoint.host, endpoint.port),
            payload,
            delta_shipping=self.delta_shipping,
            symbol_ids=self.symbol_ids,
            attempts=attempts,
            base_delay=self.base_delay,
            max_delay=self.max_delay,
            connect_timeout=self.connect_timeout,
            sleep=self._sleep,
            ssl_context=self.ssl_context,
            server_hostname=self.server_hostname,
            auth_token=self.auth_token,
            codec=self.codec,
        )

    def _alive_indexes(self) -> List[int]:
        return [index for index, client in enumerate(self._clients) if client is not None]

    def _client_for_slot(self, slot: int):
        """Resolve the slot's current client, rerouting off dead owners."""
        with self._lock:
            owner = self._slot_owner[slot]
            client = self._clients[owner]
            if client is not None and client.alive:
                return client, owner
            alive = self._alive_indexes()
            if not alive:
                return None, owner
            new_owner = rerouted_owner(slot, alive)
            if new_owner != owner:
                self._slot_owner[slot] = new_owner
                self.reroutes += 1
            return self._clients[new_owner], new_owner

    def _mark_dead(self, index: int) -> None:
        """Retire endpoint ``index`` and reroute its slots (lock held)."""
        client = self._clients[index]
        if client is not None:
            self._retired_stats = self._retired_stats.merged_with(client.stats)
            client.close()
        self._clients[index] = None
        self._dead[index] = True
        alive = self._alive_indexes()
        if not alive:
            return
        for slot, owner in enumerate(self._slot_owner):
            if owner == index:
                self._slot_owner[slot] = rerouted_owner(slot, alive)
                self.reroutes += 1

    def _handle_connection_loss(self, index: int) -> None:
        """A connection died: try a bounded reconnect, else retire the endpoint.

        Unlike at :meth:`start` time, a mid-stream :class:`HandshakeError`
        (the address now answers with a mismatched protocol -- e.g. a
        supervisor restarted the worker on an older build) retires the
        endpoint instead of propagating: the stream reroutes to the
        survivors, and the skew surfaces the next time the backend starts
        against that endpoint.

        The reconnect itself (backoff sleeps, TCP connect, handshake) runs
        outside the fleet lock, under a per-endpoint lock -- one worker
        black-holing packets must never stall dispatch on the other slots.
        While the reconnect is in flight, :meth:`_client_for_slot` may
        already reroute this endpoint's slots to survivors; a reconnect
        that then succeeds simply re-installs the endpoint for the slots
        still (or again) pointing at it.
        """
        with self._endpoint_locks[index]:
            with self._lock:
                client = self._clients[index]
                if client is not None and client.alive:
                    return  # another thread already revived this endpoint
                if self._payload is None or self._dead[index]:
                    return
                payload = self._payload
                if client is not None:
                    # Preserve the dead connection's traffic counters before
                    # the slot forgets it.
                    self._retired_stats = self._retired_stats.merged_with(client.stats)
                    self._clients[index] = None
            try:
                revived = self._connect(index, self.reconnect_attempts, payload)
            except (HandshakeError, BackendConnectionError):
                with self._lock:
                    self._mark_dead(index)
                return
            with self._lock:
                if self._dead[index]:
                    revived.close()
                else:
                    self._clients[index] = revived


# --------------------------------------------------------------------------- #
# The announce registry: push rediscovery for revived workers
# --------------------------------------------------------------------------- #
class FleetRegistry:
    """A lightweight listener workers ``ANNOUNCE`` themselves to.

    The pull half of rediscovery is the heartbeat probe
    (:meth:`WorkerFleet.readopt_dead`); this is the push half.  A worker
    daemon started with ``--announce HOST:PORT`` calls home every few
    seconds (``MAGIC`` + one ``ANNOUNCE`` frame, answered with ``PONG``),
    and an announce matching a *dead* fleet endpoint triggers an immediate
    :meth:`WorkerFleet.readopt` -- so a revived worker rejoins as soon as
    it boots instead of waiting out a heartbeat interval.  Announces for
    unknown or healthy endpoints are acknowledged and ignored; the frame
    is JSON-only and nothing from it is ever unpickled or executed.

    The registry holds the fleet by reference and runs one daemon thread
    per accepted connection (announces are one-frame conversations, so
    the thread count is bounded by announce concurrency, not fleet size).
    """

    def __init__(self, fleet: WorkerFleet, host: str = "127.0.0.1", port: int = 0):
        self._fleet = fleet
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        #: Announce frames accepted (readopted or not), for tests/metrics.
        self.announces = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, name="streamrule-registry", daemon=True)
        self._thread.start()

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "FleetRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            handler = threading.Thread(
                target=self._handle, args=(connection,), name="streamrule-registry-conn", daemon=True
            )
            handler.start()

    def _handle(self, connection: socket.socket) -> None:
        try:
            connection.settimeout(5.0)
            if recv_exactly(connection, len(MAGIC)) != MAGIC:
                return
            kind, payload = recv_frame(connection)
            if kind is not FrameKind.ANNOUNCE:
                return
            host, port = parse_announce(payload)
            self.announces += 1
            send_frame(connection, FrameKind.PONG)
        except (OSError, EOFError, ProtocolError):
            return
        finally:
            try:
                connection.close()
            except OSError:
                pass
        announced = WorkerEndpoint(host, port)
        fleet = self._fleet
        with fleet._lock:
            try:
                index = fleet.endpoints.index(announced)
            except ValueError:
                return
            if not fleet._dead[index]:
                return
        fleet.readopt(index)
