"""The unified :class:`StreamSession` facade.

One object wires the whole extended-StreamRule loop together -- window
policy, stream query processor, partitioning handler, execution backend,
combining handler, data format processor -- behind a push/pull API::

    with StreamSession(program, window=CountWindow(size=80, slide=20),
                       partitioner=DependencyPartitioner(plan),
                       backend=ProcessPoolBackend(max_workers=4)) as session:
        session.push(triples)            # feed the stream; full windows evaluate
        session.finish()                 # flush the trailing partial window
        for solution in session.results():
            ...

or, for bounded streams, the streaming bulk form::

    for solution in session.process(triples):
        ...

The session replaces the ``reason(delta=..., incremental=..., track=...)``
keyword cluster with typed :class:`~repro.streamrule.work.WorkItem` dispatch
through a pluggable :class:`~repro.streamrule.backends.ExecutionBackend`,
and makes worker placement an explicit
:class:`~repro.streamrule.placement.PlacementStrategy`.  The legacy
``ParallelReasoner.reason`` / ``StreamRulePipeline.process_stream`` entry
points survive as thin deprecated shims over this class.

Windowing semantics of ``push``
-------------------------------
* ``window=None`` -- every ``push`` batch is evaluated as one window
  (explicit windowing by the caller).
* a :class:`~repro.streaming.window.CountWindow` -- windows are dispatched
  incrementally as soon as they complete; the trailing partial window (if
  the policy emits one) waits for :meth:`finish`.
* a :class:`~repro.streaming.window.TimeWindow` -- by default, time windows
  need the whole stream's timestamps (arbitrarily late items may sort into
  any window), so evaluation is deferred until :meth:`finish`.  Pass
  ``eager_time_windows=True`` to evaluate windows as soon as an arriving
  timestamp proves them complete (the
  :class:`~repro.streaming.window.TimeWindowStepper` push path): results
  stream before :meth:`finish`, at the price of an exactness gate -- an
  item whose timestamp lands inside an already-evaluated window raises
  :class:`~repro.streaming.window.LateArrivalError`.  The asymmetry is
  inherent: count windows close on arrival order alone, time windows close
  only once the timestamps say so.

If a remote backend loses a worker connection mid-window
(:class:`~repro.streamrule.backends.BackendConnectionError`), the session
falls back to evaluating the affected partitions inline against its own
reasoner -- the stream keeps flowing on a degraded transport; the
:attr:`fallbacks` counter records how often that happened.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.asp.syntax.atoms import Atom
from repro.core.combining import combine_answer_sets
from repro.core.partitioner import Partitioner, SinglePartitioner
from repro.asp.syntax.program import Program
from repro.streaming.format import DataFormatProcessor
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, CountWindowStepper, TimeWindow, TimeWindowStepper, WindowDelta
from repro.streamrule.backends import BackendConnectionError, ExecutionBackend, InlineBackend
from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics, Timer
from repro.streamrule.placement import PlacementStrategy
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.work import WorkItem

__all__ = ["ParallelResult", "StreamSession", "WindowSolution"]

AnswerSet = frozenset
StreamItem = Union[Triple, Atom]
WindowPolicy = Union[CountWindow, TimeWindow]


@dataclass(frozen=True)
class ParallelResult:
    """Combined answers of one window plus the evaluation record."""

    answers: Tuple[AnswerSet, ...]
    metrics: ReasonerMetrics
    partition_results: Tuple[ReasonerResult, ...]

    @property
    def satisfiable(self) -> bool:
        return bool(self.answers)


@dataclass(frozen=True)
class WindowSolution:
    """Solutions produced for one window."""

    window_index: int
    window_size: int
    answers: Tuple[frozenset, ...]
    solution_triples: Tuple[Triple, ...]
    metrics: ReasonerMetrics


class StreamSession:
    """Facade over windowing, partitioning, backend dispatch, and combining."""

    def __init__(
        self,
        program: Union[Program, Reasoner],
        *,
        window: Optional[WindowPolicy] = None,
        backend: Optional[ExecutionBackend] = None,
        placement: Optional[PlacementStrategy] = None,
        partitioner: Optional[Partitioner] = None,
        input_predicates: Optional[Iterable[str]] = None,
        output_predicates: Optional[Iterable[str]] = None,
        grounding_cache=None,
        max_models: Optional[int] = None,
        max_combinations: Optional[int] = 64,
        query_processor: Optional[StreamQueryProcessor] = None,
        format_processor: Optional[DataFormatProcessor] = None,
        inline_fallback: bool = True,
        eager_time_windows: bool = False,
    ):
        """Create a session for ``program``.

        ``program`` may be a :class:`~repro.asp.syntax.program.Program` (a
        reasoner is built from it and the predicate/cache/model arguments)
        or a ready-made :class:`Reasoner` (in which case those arguments
        must be left at their defaults).  ``backend`` defaults to
        :class:`InlineBackend`; ``placement`` overrides the backend's
        placement strategy; ``partitioner`` defaults to the trivial
        single-partition layout (the session then behaves exactly like the
        unpartitioned reasoner ``R``).  ``inline_fallback`` controls
        whether a lost worker connection degrades to local evaluation (the
        default) or propagates; ``eager_time_windows`` opts :meth:`push`
        into streaming time-window evaluation (see the module docstring
        for the exactness trade-off).
        """
        if isinstance(program, Reasoner):
            if input_predicates is not None or output_predicates is not None:
                raise ValueError("predicate sets are configured on the passed reasoner")
            if grounding_cache is not None or max_models is not None:
                raise ValueError("cache/model limits are configured on the passed reasoner")
            self.reasoner = program
        else:
            self.reasoner = Reasoner(
                program,
                input_predicates=input_predicates,
                output_predicates=output_predicates,
                format_processor=format_processor,
                max_models=max_models,
                grounding_cache=grounding_cache,
            )
        self.partitioner: Partitioner = partitioner if partitioner is not None else SinglePartitioner()
        self.backend: ExecutionBackend = backend if backend is not None else InlineBackend()
        if placement is not None:
            if not self.backend.uses_placement:
                raise ValueError(
                    f"backend {self.backend.name!r} has no pinned worker slots and never "
                    "consults a placement strategy; pass a slot-owning backend "
                    "(ProcessPoolBackend, LoopbackSocketBackend) together with placement="
                )
            self.backend.placement = placement
        self.window = window
        self.query_processor = query_processor
        self.format_processor = format_processor or self.reasoner.format_processor
        self.max_combinations = max_combinations
        self.inline_fallback = inline_fallback
        self.eager_time_windows = eager_time_windows
        #: How many partition evaluations fell back inline after a backend
        #: connection loss.
        self.fallbacks = 0
        self._buffer: List[StreamItem] = []  # time-window (and windowless) staging
        self._stepper: Optional[CountWindowStepper] = None  # count-window incremental driver
        self._time_stepper: Optional[TimeWindowStepper] = None  # eager time-window driver
        self._push_index = 0  # next window index of the pushed stream
        self._epoch = 0  # monotonic evaluation counter (cache bookkeeping)
        self._ready: Deque[WindowSolution] = deque()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the backend's execution resources (pools, sockets)."""
        self.backend.close()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Facade: push / results / finish
    # ------------------------------------------------------------------ #
    def push(self, items: Union[StreamItem, Iterable[StreamItem]]) -> int:
        """Feed stream items; evaluate every window that completes.

        Returns the number of windows evaluated by this call.  Completed
        solutions queue up for :meth:`results`.  Count windows dispatch
        incrementally as they fill (O(1) bookkeeping per buffered item).
        Time windows are staged until :meth:`finish` by default (their
        layout depends on timestamps still to come); with
        ``eager_time_windows=True`` they dispatch as soon as an arriving
        timestamp proves them complete, at the price of the late-arrival
        gate described in the module docstring.  ``window_index`` on the
        produced solutions is the window's position in the pushed stream,
        exactly as :meth:`process` reports it.
        """
        batch = self._as_items(items)
        if self.window is None:
            index = self._push_index
            self._push_index += 1
            self._ready.append(self._solve_window(index, batch, delta=None))
            return 1
        if isinstance(self.window, TimeWindow):
            if not self.eager_time_windows:
                self._buffer.extend(batch)
                return 0
            stepper = self._eager_time_stepper()
            count = 0
            for item in batch:
                for delta in stepper.feed(item):
                    self._ready.append(self._solve_window(delta.index, list(delta.window), delta))
                    count += 1
            return count
        stepper = self._count_stepper()
        count = 0
        for item in batch:
            delta = stepper.feed(item)
            if delta is not None:
                self._ready.append(self._solve_window(delta.index, list(delta.window), delta))
                count += 1
        return count

    def finish(self) -> int:
        """Evaluate everything still staged (partial tails, time windows).

        Returns the number of windows evaluated.  The session remains
        usable; further pushes start a fresh stream (window indexes restart
        at 0).
        """
        if self.window is None:
            self._push_index = 0
            return 0
        count = 0
        if isinstance(self.window, TimeWindow):
            if self.eager_time_windows:
                stepper = self._eager_time_stepper()
                for delta in stepper.flush():
                    self._ready.append(self._solve_window(delta.index, list(delta.window), delta))
                    count += 1
                self._time_stepper = None  # next push starts a fresh stream
                return count
            for delta in self.window.deltas(self._buffer):
                self._ready.append(self._solve_window(delta.index, list(delta.window), delta))
                count += 1
            self._buffer = []
            return count
        stepper = self._count_stepper()
        tail = stepper.flush()
        if tail is not None:
            self._ready.append(self._solve_window(tail.index, list(tail.window), tail))
            count = 1
        self._stepper = None  # next push starts a fresh stream
        return count

    def results(self) -> Iterator[WindowSolution]:
        """Drain the completed window solutions, oldest first."""
        while self._ready:
            yield self._ready.popleft()

    @staticmethod
    def _as_items(items: Union[StreamItem, Iterable[StreamItem]]) -> List[StreamItem]:
        if isinstance(items, (Triple, Atom)):
            return [items]
        return list(items)

    def _count_stepper(self) -> CountWindowStepper:
        if self._stepper is None:
            assert isinstance(self.window, CountWindow)
            self._stepper = self.window.stepper()
        return self._stepper

    def _eager_time_stepper(self) -> TimeWindowStepper:
        if self._time_stepper is None:
            assert isinstance(self.window, TimeWindow)
            self._time_stepper = self.window.stepper()
        return self._time_stepper

    # ------------------------------------------------------------------ #
    # Streaming bulk evaluation
    # ------------------------------------------------------------------ #
    def process(self, items: Iterable[StreamItem]) -> Iterator[WindowSolution]:
        """Window a bounded stream lazily and yield one solution per window.

        This is the one-shot form of the facade (and the engine of the
        deprecated ``StreamRulePipeline.process_stream`` shim): it bypasses
        the push buffer, so do not interleave it with :meth:`push`.
        """
        if self.window is None:
            yield self._solve_window(0, list(items), delta=None)
            return
        for delta in self.window.deltas(items):
            yield self._solve_window(delta.index, list(delta.window), delta)

    def process_all(self, items: Iterable[StreamItem]) -> List[WindowSolution]:
        return list(self.process(items))

    # ------------------------------------------------------------------ #
    # The engine: one window through partition -> backend -> combine
    # ------------------------------------------------------------------ #
    def _solve_window(
        self, index: int, window_items: List[StreamItem], delta: Optional[WindowDelta]
    ) -> WindowSolution:
        filtered = self.query_processor.process(window_items) if self.query_processor else window_items
        result = self.evaluate_window(filtered, delta=delta, epoch=index)
        solution_atoms: List[Atom] = sorted({atom for answer in result.answers for atom in answer}, key=str)
        solution_triples = tuple(
            self.format_processor.atom_to_triple(atom) for atom in solution_atoms if atom.arity in (1, 2)
        )
        return WindowSolution(
            window_index=index,
            window_size=len(filtered),
            answers=tuple(result.answers),
            solution_triples=solution_triples,
            metrics=result.metrics,
        )

    def evaluate_window(
        self,
        window: Sequence[StreamItem],
        *,
        delta: Optional[WindowDelta] = None,
        epoch: Optional[int] = None,
    ) -> ParallelResult:
        """Partition, dispatch to the backend, and combine one input window.

        Following Figure 6, the partitioning handler splits the *filtered
        stream* directly (triples and atoms both expose their predicate),
        and each partition's reasoner performs its own data format
        translation -- so the transformation cost is parallelised along with
        the solving.

        ``delta`` signals that this window is the next slide of an
        overlapping stream.  When the partitioner is *deterministic* (the
        same item always lands in the same partitions) and the backend
        preserves per-track continuity (``supports_delta``), every partition
        is evaluated incrementally on its own track: partition ``i``'s
        grounding delta-repairs partition ``i``'s previous instantiation.
        Non-deterministic partitioners (the random baseline) ignore the
        hint -- their layouts reshuffle every window, so there is no
        continuity to exploit.
        """
        window = list(window)
        if epoch is None:
            epoch = self._epoch
        self._epoch = max(self._epoch, epoch) + 1
        # Backend start-up (pickling the reasoner, spawning workers) must
        # not be billed to the first window's evaluation phase.
        self.backend.start(self.reasoner)

        incremental = (
            delta is not None
            and delta.carries_over
            and getattr(self.partitioner, "deterministic", False)
            and self.backend.supports_delta
        )

        with Timer() as partitioning_timer:
            partitions = self.partitioner.partition(window)

        with Timer() as evaluation_timer:
            partition_results = self._evaluate_partitions(partitions, incremental, epoch)

        with Timer() as combining_timer:
            combined = combine_answer_sets(
                [result.answers for result in partition_results],
                max_combinations=self.max_combinations,
            )

        breakdown = self._latency(partition_results)
        breakdown.partitioning_seconds += partitioning_timer.seconds
        breakdown.combining_seconds += combining_timer.seconds

        if self.backend.measures_wall_clock:
            # Real pools report what a stopwatch around the evaluation phase
            # actually measured.
            latency_seconds = partitioning_timer.seconds + evaluation_timer.seconds + combining_timer.seconds
        else:
            latency_seconds = breakdown.total_seconds

        metrics = ReasonerMetrics(
            window_size=len(window),
            latency_seconds=latency_seconds,
            breakdown=breakdown,
            partition_sizes=[len(partition) for partition in partitions],
            answer_count=len(combined),
            duplication_ratio=(
                (sum(len(partition) for partition in partitions) - len(window)) / len(window) if window else 0.0
            ),
            cache_hits=sum(result.metrics.cache_hits for result in partition_results),
            cache_misses=sum(result.metrics.cache_misses for result in partition_results),
            delta_repairs=sum(result.metrics.delta_repairs for result in partition_results),
            repair_size=sum(result.metrics.repair_size for result in partition_results),
            repair_rules_changed=sum(result.metrics.repair_rules_changed for result in partition_results),
            evaluation_wall_seconds=evaluation_timer.seconds,
            worker_wall_seconds=[result.metrics.latency_seconds for result in partition_results],
        )
        return ParallelResult(
            answers=tuple(combined),
            metrics=metrics,
            partition_results=tuple(partition_results),
        )

    def _evaluate_partitions(
        self, partitions: Sequence[Sequence[StreamItem]], incremental: bool, epoch: int
    ) -> List[ReasonerResult]:
        """Dispatch the non-empty partitions as work items and gather results.

        Empty sub-windows are filtered out before evaluation: they
        contribute only the program's own consequences, which every other
        partition already derives, and for non-monotonic programs they would
        multiply the combination product with spurious picks.  When *every*
        sub-window is empty, one empty partition is evaluated so the
        combined answers degenerate to the answer sets of the program itself
        -- exactly what the unpartitioned reasoner returns for that window.
        Each batch keeps its partition index as its *track*: the stable
        identity under which grounding caches store per-partition delta
        states and placement strategies pin worker slots.
        """
        batches = [(index, list(partition)) for index, partition in enumerate(partitions) if partition]
        if not batches:
            batches = [(0, [])]
        items = [
            WorkItem(facts=tuple(batch), track=track, epoch=epoch, incremental=incremental)
            for track, batch in batches
        ]
        futures: List[Tuple[WorkItem, Optional["Future[ReasonerResult]"]]] = []
        for item in items:
            try:
                futures.append((item, self.backend.submit(item)))
            except BackendConnectionError:
                # The backend refused the item outright (e.g. a TCP fleet
                # with no live worker left); mark it for inline evaluation.
                if not self.inline_fallback:
                    raise
                futures.append((item, None))
        results: List[ReasonerResult] = []
        for item, future in futures:
            try:
                if future is None:
                    raise BackendConnectionError("backend rejected the item at submit time")
                results.append(future.result())
            except BackendConnectionError:
                if not self.inline_fallback:
                    raise
                # Degraded transport: evaluate this partition locally so the
                # stream keeps flowing; the local cache state differs from
                # the lost worker's, but answers are equivalent.
                self.fallbacks += 1
                results.append(self.reasoner.reason_item(item))
        return results

    def _latency(self, partition_results: Sequence[ReasonerResult]) -> LatencyBreakdown:
        """Aggregate the partition latencies according to the backend."""
        if not partition_results:
            return LatencyBreakdown()
        if not self.backend.concurrent:
            merged = LatencyBreakdown()
            for result in partition_results:
                merged = merged.merged_with(result.metrics.breakdown)
            return merged
        # Concurrent backends: the per-stage breakdown is bounded by the
        # slowest partition (they run -- actually or notionally -- at the
        # same time).
        slowest = max(partition_results, key=lambda result: result.metrics.breakdown.total_seconds)
        breakdown = slowest.metrics.breakdown
        return LatencyBreakdown(
            transformation_seconds=breakdown.transformation_seconds,
            grounding_seconds=breakdown.grounding_seconds,
            solving_seconds=breakdown.solving_seconds,
        )
