"""The unified :class:`StreamSession` facade.

One object wires the whole extended-StreamRule loop together -- window
policy, stream query processor, partitioning handler, execution backend,
combining handler, data format processor -- behind a push/pull API::

    with StreamSession(program, window=CountWindow(size=80, slide=20),
                       partitioner=DependencyPartitioner(plan),
                       backend=ProcessPoolBackend(max_workers=4)) as session:
        session.push(triples)            # feed the stream; full windows evaluate
        session.finish()                 # flush the trailing partial window
        for solution in session.results():
            ...

or, for bounded streams, the streaming bulk form::

    for solution in session.process(triples):
        ...

The session replaces the ``reason(delta=..., incremental=..., track=...)``
keyword cluster with typed :class:`~repro.streamrule.work.WorkItem` dispatch
through a pluggable :class:`~repro.streamrule.backends.ExecutionBackend`,
and makes worker placement an explicit
:class:`~repro.streamrule.placement.PlacementStrategy`.  The legacy
``ParallelReasoner.reason`` / ``StreamRulePipeline.process_stream`` entry
points survive as thin deprecated shims over this class.

Windowing semantics of ``push``
-------------------------------
* ``window=None`` -- every ``push`` batch is evaluated as one window
  (explicit windowing by the caller).
* a :class:`~repro.streaming.window.CountWindow` -- windows are dispatched
  incrementally as soon as they complete; the trailing partial window (if
  the policy emits one) waits for :meth:`finish`.
* a :class:`~repro.streaming.window.TimeWindow` -- by default, time windows
  need the whole stream's timestamps (arbitrarily late items may sort into
  any window), so evaluation is deferred until :meth:`finish`.  Pass
  ``eager_time_windows=True`` to evaluate windows as soon as an arriving
  timestamp proves them complete (the
  :class:`~repro.streaming.window.TimeWindowStepper` push path): results
  stream before :meth:`finish`, at the price of an exactness gate -- an
  item whose timestamp lands inside an already-evaluated window raises
  :class:`~repro.streaming.window.LateArrivalError`.  The asymmetry is
  inherent: count windows close on arrival order alone, time windows close
  only once the timestamps say so.

Pipelined ingestion
-------------------
On a backend whose futures make progress concurrently (``backend.pipelined``:
thread pool, process pool, loopback, TCP fleet), :meth:`push` does not wait
for a completed window's answers: the window's partitions are *dispatched*
to the backend and push returns immediately, so the producer keeps feeding
while workers reason.  A bounded in-flight queue (``max_inflight``) applies
backpressure -- once that many windows are dispatched but not yet gathered,
the next dispatch first blocks on the oldest window, so an overwhelmed
backend slows the producer down instead of buffering without bound.
:meth:`results` and :meth:`finish` gather the in-flight futures in dispatch
order, which re-serializes emission: solutions always come out in window
order, whatever order the backend finished them in.  ``max_inflight=1``
reproduces the synchronous behaviour exactly (each window is gathered
before ``push`` returns), and is the automatic choice on non-pipelined
backends (inline evaluation).  Per-track FIFO ordering -- the precondition
for delta grounding and delta shipping -- is preserved by the backends'
pinned slot dispatchers, so pipelining never reorders the windows one
worker sees.  Note the error-timing consequence: an evaluation error in a
dispatched window surfaces at its *gather* point (a later ``push`` under
backpressure, ``results``, ``finish``, or ``close``), not at the ``push``
that dispatched it.  The :attr:`ingestion` record
(:class:`~repro.streamrule.metrics.IngestionStats`) reports the in-flight
high-water mark, how many windows ran ahead, and how often backpressure
actually stalled the producer.

If a remote backend loses a worker connection mid-window
(:class:`~repro.streamrule.backends.BackendConnectionError`), the session
falls back to evaluating the affected partitions inline against its own
reasoner -- the stream keeps flowing on a degraded transport; the
:attr:`fallbacks` counter records how often that happened.  Under pipelined
ingestion the same fallback applies to a *late* connection loss: a future
that fails after dispatch is re-evaluated inline at gather time.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.asp.syntax.atoms import Atom
from repro.core.combining import combine_answer_sets
from repro.core.partitioner import Partitioner, SinglePartitioner
from repro.asp.syntax.program import Program
from repro.streaming.format import DataFormatProcessor
from repro.streaming.processor import StreamQueryProcessor
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow, CountWindowStepper, TimeWindow, TimeWindowStepper, WindowDelta
from repro.streamrule.adaptive import AdaptiveInflightController
from repro.streamrule.backends import BackendConnectionError, ExecutionBackend, InlineBackend
from repro.streamrule.metrics import IngestionStats, LatencyBreakdown, ReasonerMetrics, Timer
from repro.streamrule.placement import PlacementStrategy
from repro.streamrule.reasoner import Reasoner, ReasonerResult
from repro.streamrule.work import WorkItem

__all__ = ["DEFAULT_MAX_INFLIGHT", "ParallelResult", "PendingWindow", "StreamSession", "WindowSolution"]

AnswerSet = frozenset
StreamItem = Union[Triple, Atom]
WindowPolicy = Union[CountWindow, TimeWindow]

#: Default in-flight bound of pipelined ingestion: how many windows may be
#: dispatched but not yet gathered before ``push`` blocks on the oldest one.
#: Small enough that an overwhelmed backend stalls the producer within a few
#: windows, large enough to keep every worker slot of a typical fleet busy
#: while the producer windows the next batch.
DEFAULT_MAX_INFLIGHT = 4


@dataclass(frozen=True)
class ParallelResult:
    """Combined answers of one window plus the evaluation record."""

    answers: Tuple[AnswerSet, ...]
    metrics: ReasonerMetrics
    partition_results: Tuple[ReasonerResult, ...]

    @property
    def satisfiable(self) -> bool:
        return bool(self.answers)


@dataclass(frozen=True)
class WindowSolution:
    """Solutions produced for one window."""

    window_index: int
    window_size: int
    answers: Tuple[frozenset, ...]
    solution_triples: Tuple[Triple, ...]
    metrics: ReasonerMetrics
    #: The ``tag`` given to :meth:`StreamSession.push_window`, ``None`` for
    #: windows produced by the session's own windowing.
    tag: Optional[object] = None


@dataclass
class PendingWindow:
    """One window dispatched to the backend but not yet gathered.

    The session's unit of pipelining bookkeeping: everything the gather side
    needs to finish the evaluation -- the submitted futures (``None`` where
    the backend refused the item at submit time and the inline fallback will
    evaluate it), the already-measured partitioning cost, and the window's
    stream coordinates for the eventual :class:`WindowSolution`.
    """

    index: int
    epoch: int
    window: List[StreamItem]
    partition_sizes: List[int]
    submissions: List[Tuple[WorkItem, Optional["Future[ReasonerResult]"]]]
    partitioning_seconds: float
    dispatched_at: float
    #: Opaque caller token threaded through to the :class:`WindowSolution`
    #: (the query server uses it to route solutions back to their lane).
    tag: Optional[object] = None

    def done(self) -> bool:
        """Whether every dispatched partition has finished (or was refused)."""
        return all(future is None or future.done() for _, future in self.submissions)


class StreamSession:
    """Facade over windowing, partitioning, backend dispatch, and combining."""

    def __init__(
        self,
        program: Union[Program, Reasoner],
        *,
        window: Optional[WindowPolicy] = None,
        backend: Optional[ExecutionBackend] = None,
        placement: Optional[PlacementStrategy] = None,
        partitioner: Optional[Partitioner] = None,
        input_predicates: Optional[Iterable[str]] = None,
        output_predicates: Optional[Iterable[str]] = None,
        grounding_cache=None,
        solver_cache=None,
        max_models: Optional[int] = None,
        max_combinations: Optional[int] = 64,
        query_processor: Optional[StreamQueryProcessor] = None,
        format_processor: Optional[DataFormatProcessor] = None,
        inline_fallback: bool = True,
        eager_time_windows: bool = False,
        max_inflight: Union[int, str, AdaptiveInflightController, None] = None,
        owns_backend: bool = True,
        track_base: int = 0,
        autoscaler=None,
    ):
        """Create a session for ``program``.

        ``program`` may be a :class:`~repro.asp.syntax.program.Program` (a
        reasoner is built from it and the predicate/cache/model arguments)
        or a ready-made :class:`Reasoner` (in which case those arguments
        must be left at their defaults).  ``grounding_cache`` enables
        window-to-window grounding reuse and ``solver_cache`` its
        solving-layer counterpart: persistent per-track solver state
        repaired from the window delta and re-solved under assumptions
        (see :class:`~repro.asp.solving.incremental.SolverCache`).  ``backend`` defaults to
        :class:`InlineBackend`; ``placement`` overrides the backend's
        placement strategy; ``partitioner`` defaults to the trivial
        single-partition layout (the session then behaves exactly like the
        unpartitioned reasoner ``R``).  ``inline_fallback`` controls
        whether a lost worker connection degrades to local evaluation (the
        default) or propagates; ``eager_time_windows`` opts :meth:`push`
        into streaming time-window evaluation (see the module docstring
        for the exactness trade-off); ``max_inflight`` bounds how many
        windows :meth:`push` may dispatch ahead of the gather point
        (pipelined ingestion, see the module docstring) -- the default
        (``None``) resolves to :data:`DEFAULT_MAX_INFLIGHT` on pipelined
        backends and to 1 (fully synchronous) on inline evaluation, and
        ``max_inflight=1`` always reproduces the synchronous behaviour
        exactly.  Pass the string ``"adaptive"`` (or an
        :class:`~repro.streamrule.adaptive.AdaptiveInflightController`
        instance with custom knobs) to derive the bound from observed
        stalls, queue depth, and latency instead of a constant (AIMD;
        see :mod:`repro.streamrule.adaptive`) -- the controller's state is
        mirrored into :attr:`ingestion` after every gather.  ``owns_backend=False`` detaches the backend's lifecycle
        from the session's: :meth:`close` still drains the in-flight
        windows but leaves the backend running, for callers (the
        multi-tenant :class:`~repro.streamrule.server.QueryServer`) that
        roll sessions over one long-lived shared backend.  ``track_base``
        offsets every dispatched partition's cache track (see
        :meth:`push_window`): give each session multiplexed over one shared
        reasoner/backend its own base so their per-track grounding/solver
        states never collide (the asyncio serving layer assigns these).
        ``autoscaler`` attaches a
        :class:`~repro.streamrule.autoscale.FleetAutoscaler` to the gather
        seam: every gathered window's stall/AIMD-backoff verdict feeds it,
        and its counters are mirrored into :attr:`ingestion`
        (``autoscale_ups`` / ``autoscale_downs`` / ``fleet_size``).  The
        session observes but does not own it -- close the scaler yourself
        (it terminates the workers it spawned).
        """
        if isinstance(program, Reasoner):
            if input_predicates is not None or output_predicates is not None:
                raise ValueError("predicate sets are configured on the passed reasoner")
            if grounding_cache is not None or solver_cache is not None or max_models is not None:
                raise ValueError("cache/model limits are configured on the passed reasoner")
            self.reasoner = program
        else:
            self.reasoner = Reasoner(
                program,
                input_predicates=input_predicates,
                output_predicates=output_predicates,
                format_processor=format_processor,
                max_models=max_models,
                grounding_cache=grounding_cache,
                solver_cache=solver_cache,
            )
        self.partitioner: Partitioner = partitioner if partitioner is not None else SinglePartitioner()
        self.backend: ExecutionBackend = backend if backend is not None else InlineBackend()
        if placement is not None:
            if not self.backend.uses_placement:
                raise ValueError(
                    f"backend {self.backend.name!r} has no pinned worker slots and never "
                    "consults a placement strategy; pass a slot-owning backend "
                    "(ProcessPoolBackend, LoopbackSocketBackend) together with placement="
                )
            self.backend.placement = placement
        self.window = window
        self.query_processor = query_processor
        self.format_processor = format_processor or self.reasoner.format_processor
        self.max_combinations = max_combinations
        self.inline_fallback = inline_fallback
        self.eager_time_windows = eager_time_windows
        self.owns_backend = owns_backend
        self.track_base = track_base
        #: Optional FleetAutoscaler fed from the gather seam (not owned).
        self.autoscaler = autoscaler
        #: The AIMD controller driving the in-flight bound, ``None`` on
        #: fixed-bound sessions.
        self.inflight_controller: Optional[AdaptiveInflightController] = None
        if isinstance(max_inflight, AdaptiveInflightController):
            self.inflight_controller = max_inflight
            max_inflight = None
        elif isinstance(max_inflight, str):
            if max_inflight != "adaptive":
                raise ValueError(f"unknown max_inflight policy {max_inflight!r} (use 'adaptive')")
            self.inflight_controller = AdaptiveInflightController()
            max_inflight = None
        elif max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_inflight = max_inflight
        #: How many partition evaluations fell back inline after a backend
        #: connection loss.
        self.fallbacks = 0
        #: Producer-side pipelining record (dispatch-ahead, backpressure).
        self.ingestion = IngestionStats()
        if self.inflight_controller is not None:
            self.ingestion.inflight_target = self.inflight_controller.target
        self._buffer: List[StreamItem] = []  # time-window (and windowless) staging
        self._stepper: Optional[CountWindowStepper] = None  # count-window incremental driver
        self._time_stepper: Optional[TimeWindowStepper] = None  # eager time-window driver
        self._push_index = 0  # next window index of the pushed stream
        self._epoch = 0  # monotonic evaluation counter (cache bookkeeping)
        self._ready: Deque[WindowSolution] = deque()
        self._inflight: Deque[PendingWindow] = deque()  # dispatched, not yet gathered

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Release the backend's execution resources (pools, sockets).

        With ``drain=True`` (the default), windows still in flight are
        gathered into the results queue first, so solutions dispatched by
        :meth:`push` survive the close and remain drainable through
        :meth:`results`.  Pass ``drain=False`` to abandon them instead --
        the exception-unwind path, where blocking on (or raising from)
        half-finished futures would mask the error already propagating.

        A session created with ``owns_backend=False`` leaves the backend
        running -- its owner closes it.
        """
        try:
            if drain:
                self._drain_inflight()
        finally:
            if self.owns_backend:
                self.backend.close()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc_info) -> None:
        # On a clean exit, flush the pipeline; when an exception is already
        # propagating, abandon the in-flight windows -- a deferred
        # evaluation error (or a slow backend) during cleanup must never
        # replace or delay the error the caller needs to see.
        self.close(drain=exc_info[0] is None)

    # ------------------------------------------------------------------ #
    # Facade: push / results / finish
    # ------------------------------------------------------------------ #
    def push(self, items: Union[StreamItem, Iterable[StreamItem]]) -> int:
        """Feed stream items; dispatch every window that completes.

        Returns the number of windows dispatched by this call.  On a
        pipelined backend the call does not wait for the answers: windows
        are dispatched up to the ``max_inflight`` bound (backpressure blocks
        on the oldest once it is reached) and their solutions are gathered
        -- in window order -- by :meth:`results`, :meth:`finish`, or a later
        push's backpressure; with ``max_inflight=1`` (the automatic choice
        on inline evaluation) each window is gathered before push returns,
        the classic synchronous loop.  Count windows dispatch incrementally
        as they fill (O(1) bookkeeping per buffered item).  Time windows are
        staged until :meth:`finish` by default (their layout depends on
        timestamps still to come); with ``eager_time_windows=True`` they
        dispatch as soon as an arriving timestamp proves them complete, at
        the price of the late-arrival gate described in the module
        docstring.  ``window_index`` on the produced solutions is the
        window's position in the pushed stream, exactly as :meth:`process`
        reports it.
        """
        batch = self._as_items(items)
        if self.window is None:
            index = self._push_index
            self._push_index += 1
            self._enqueue_window(index, batch, delta=None)
            return 1
        if isinstance(self.window, TimeWindow):
            if not self.eager_time_windows:
                self._buffer.extend(batch)
                return 0
            stepper = self._eager_time_stepper()
            count = 0
            for item in batch:
                for delta in stepper.feed(item):
                    self._enqueue_window(delta.index, list(delta.window), delta)
                    count += 1
            return count
        stepper = self._count_stepper()
        count = 0
        for item in batch:
            delta = stepper.feed(item)
            if delta is not None:
                self._enqueue_window(delta.index, list(delta.window), delta)
                count += 1
        return count

    def finish(self) -> int:
        """Evaluate everything still staged (partial tails, time windows).

        Returns the number of windows dispatched by this call, and gathers
        *all* in-flight windows into the results queue -- after ``finish``,
        :meth:`results` drains without blocking.  The session remains
        usable; further pushes start a fresh stream (window indexes restart
        at 0).
        """
        count = self._finish_dispatch()
        self._drain_inflight()
        return count

    def _finish_dispatch(self) -> int:
        """Dispatch the staged tail windows; returns how many there were."""
        if self.window is None:
            self._push_index = 0
            return 0
        count = 0
        if isinstance(self.window, TimeWindow):
            if self.eager_time_windows:
                stepper = self._eager_time_stepper()
                for delta in stepper.flush():
                    self._enqueue_window(delta.index, list(delta.window), delta)
                    count += 1
                self._time_stepper = None  # next push starts a fresh stream
                return count
            for delta in self.window.deltas(self._buffer):
                self._enqueue_window(delta.index, list(delta.window), delta)
                count += 1
            self._buffer = []
            return count
        stepper = self._count_stepper()
        tail = stepper.flush()
        if tail is not None:
            self._enqueue_window(tail.index, list(tail.window), tail)
            count = 1
        self._stepper = None  # next push starts a fresh stream
        return count

    def results(self, wait: bool = True) -> Iterator[WindowSolution]:
        """Stream the window solutions in window order, oldest first.

        Already-gathered solutions yield immediately; windows still in
        flight are gathered as the iterator reaches them, so iterating
        ``results()`` concurrently with the backend's evaluation
        re-serializes the emission order without a barrier.

        ``wait`` decides what happens when the iterator reaches a window
        whose evaluation has not finished.  ``True`` (the default) blocks on
        its futures -- exhausting the iterator is a full drain, exactly the
        pre-pipelining contract.  ``False`` stops there instead: only
        finished windows are yielded, the producer is never blocked, and the
        window is picked up by a later drain.  Use ``wait=False`` inside a
        push loop to keep dispatch running ahead (a full drain between
        pushes would re-serialize the whole pipeline); ``finish()`` remains
        the barrier that guarantees everything is gathered.

        One degraded-transport caveat: a window whose items were *refused
        at submit time* (empty fleet) counts as finished -- its work never
        reached the backend, so even the ``wait=False`` drain evaluates it
        inline here.  With no backend left there is no asynchrony to
        preserve; the alternative (blocking ``push`` instead) would only
        move the same work earlier.
        """
        # Idle-drain fast path: already-gathered solutions yield without
        # probing anything, and with nothing in flight the iterator never
        # touches a future's lock or the backend at all.  The query server
        # (and any push loop) calls ``results(wait=False)`` after every
        # push, so the no-work case must cost a deque check, not a lock.
        while self._ready:
            yield self._ready.popleft()
        while self._inflight:
            if not wait and not self._inflight[0].done():
                return
            self._gather_oldest()
            while self._ready:
                yield self._ready.popleft()

    # ------------------------------------------------------------------ #
    # Pipelined dispatch bookkeeping
    # ------------------------------------------------------------------ #
    def effective_max_inflight(self) -> int:
        """The resolved in-flight bound: the adaptive controller's current
        target when one is attached, else the explicit ``max_inflight``, else
        :data:`DEFAULT_MAX_INFLIGHT` on a pipelined backend and 1 otherwise."""
        if self.inflight_controller is not None:
            return self.inflight_controller.target if self.backend.pipelined else 1
        if self.max_inflight is not None:
            return self.max_inflight
        return DEFAULT_MAX_INFLIGHT if self.backend.pipelined else 1

    @property
    def inflight_count(self) -> int:
        """How many windows are dispatched but not yet gathered."""
        return len(self._inflight)

    def push_window(
        self,
        items: Iterable[StreamItem],
        *,
        delta: Optional[WindowDelta] = None,
        index: Optional[int] = None,
        tag: Optional[object] = None,
        track_base: Optional[int] = None,
    ) -> None:
        """Dispatch one externally-windowed window through the pipeline.

        The caller owns the windowing policy: ``items`` is a complete
        window, ``delta`` its :class:`~repro.streaming.window.WindowDelta`
        when the window is the next slide of an overlapping stream (which
        enables delta grounding / incremental solving exactly as the
        session's own windowing would).  ``tag`` is an opaque token copied
        onto the produced :class:`WindowSolution`; ``track_base`` offsets
        the partition tracks, giving each caller-side stream its own
        disjoint cache-track namespace -- the seam the multi-tenant
        :class:`~repro.streamrule.server.QueryServer` uses to run many
        window lanes over one session without colliding their per-track
        grounding/solver states.  The ``max_inflight`` bound applies: once
        it is reached, the call blocks gathering the oldest window
        (backpressure), so check :attr:`inflight_count` first to dispatch
        without blocking.
        """
        if index is None:
            index = self._push_index
            self._push_index += 1
        self._dispatch_into(self._inflight, index, list(items), delta, tag=tag, track_base=track_base)
        # Re-resolve the bound every iteration: an adaptive controller may
        # cut its target mid-loop (a stalled gather is a congestion signal),
        # and the loop must then drain down to the *new* bound.
        while len(self._inflight) >= self.effective_max_inflight():
            self._gather_oldest(backpressure=True)

    def _dispatch_into(
        self,
        inflight: "Deque[PendingWindow]",
        index: int,
        items: List[StreamItem],
        delta: Optional[WindowDelta],
        tag: Optional[object] = None,
        track_base: Optional[int] = None,
    ) -> None:
        """Dispatch one window into an in-flight queue, keeping the stats."""
        if inflight:
            self.ingestion.dispatched_ahead += 1
        inflight.append(self._dispatch_window(index, items, delta, tag=tag, track_base=track_base))
        self.ingestion.inflight_high_water = max(self.ingestion.inflight_high_water, len(inflight))

    def _enqueue_window(self, index: int, items: List[StreamItem], delta: Optional[WindowDelta]) -> None:
        """Dispatch one completed window, applying the in-flight bound.

        The window joins the in-flight queue; once the queue holds
        ``max_inflight`` windows the oldest is gathered before control
        returns -- with ``max_inflight=1`` that degenerates to the
        synchronous dispatch-then-gather loop.
        """
        self._dispatch_into(self._inflight, index, items, delta)
        while len(self._inflight) >= self.effective_max_inflight():
            self._gather_oldest(backpressure=True)

    def _gather_oldest(self, backpressure: bool = False) -> None:
        """Gather the oldest in-flight window into the results queue."""
        pending = self._inflight.popleft()
        stalled = backpressure and not pending.done()
        fallbacks_before = self.fallbacks
        if stalled:
            # The bound was hit while the head window was still being
            # evaluated: the backend genuinely fell behind the producer.
            self.ingestion.backpressure_stalls += 1
            with Timer() as stall:
                solution = self._gather_solution(pending)
            self.ingestion.backpressure_wait_seconds += stall.seconds
        else:
            solution = self._gather_solution(pending)
        self._observe_gather(pending, stalled=stalled, failed=self.fallbacks > fallbacks_before)
        self._ready.append(solution)

    def _observe_gather(self, pending: PendingWindow, *, stalled: bool, failed: bool) -> None:
        """Feed one gathered window's record to the adaptive controller.

        A no-op on fixed-bound sessions, so the gather path never probes the
        backend's queue depth unless a controller is actually listening.
        The asyncio surface calls this too -- adaptation is a property of
        the shared gather seam, not of either facade.
        """
        controller = self.inflight_controller
        if controller is not None and self.backend.pipelined:
            controller.observe_gather(
                latency_seconds=time.perf_counter() - pending.dispatched_at,
                queue_depth=self.backend.queue_depth(),
                stalled=stalled,
                failed=failed,
            )
            self.ingestion.inflight_target = controller.target
            self.ingestion.aimd_increases = controller.increases
            self.ingestion.aimd_backoffs = controller.backoffs
        if self.autoscaler is not None:
            # Elasticity rides the same seam: the scaler differences the
            # cumulative backoff counter itself, so fixed-bound sessions
            # (aimd_backoffs pinned at 0) still feed it stall verdicts.
            self.autoscaler.observe(stalled=stalled, aimd_backoffs=self.ingestion.aimd_backoffs)
            self.autoscaler.mirror_into(self.ingestion)

    def _drain_inflight(self) -> None:
        """Gather every in-flight window into the results queue."""
        while self._inflight:
            self._gather_oldest()

    @staticmethod
    def _as_items(items: Union[StreamItem, Iterable[StreamItem]]) -> List[StreamItem]:
        if isinstance(items, (Triple, Atom)):
            return [items]
        return list(items)

    def _count_stepper(self) -> CountWindowStepper:
        if self._stepper is None:
            assert isinstance(self.window, CountWindow)
            self._stepper = self.window.stepper()
        return self._stepper

    def _eager_time_stepper(self) -> TimeWindowStepper:
        if self._time_stepper is None:
            assert isinstance(self.window, TimeWindow)
            self._time_stepper = self.window.stepper()
        return self._time_stepper

    # ------------------------------------------------------------------ #
    # Streaming bulk evaluation
    # ------------------------------------------------------------------ #
    def process(self, items: Iterable[StreamItem]) -> Iterator[WindowSolution]:
        """Window a bounded stream lazily and yield one solution per window.

        This is the one-shot form of the facade (and the engine of the
        deprecated ``StreamRulePipeline.process_stream`` shim): it bypasses
        the push buffer, so do not interleave it with :meth:`push`.  It
        pipelines exactly like :meth:`push` -- up to ``max_inflight``
        windows are dispatched ahead of the one being yielded, so on a
        concurrent backend the next windows evaluate while the caller
        consumes the current solution.
        """
        if self.window is None:
            yield self._solve_window(0, list(items), delta=None)
            return
        limit = self.effective_max_inflight()
        # A local queue, not self._inflight: the caller owns the solutions
        # here (they are yielded, never staged in _ready), and an abandoned
        # generator must not leave windows behind for push's bookkeeping.
        # Stall accounting stays push-specific -- the consumer of this
        # iterator is the one pacing it.
        inflight: Deque[PendingWindow] = deque()
        for delta in self.window.deltas(items):
            self._dispatch_into(inflight, delta.index, list(delta.window), delta)
            while len(inflight) >= limit:
                yield self._gather_solution(inflight.popleft())
        while inflight:
            yield self._gather_solution(inflight.popleft())

    def process_all(self, items: Iterable[StreamItem]) -> List[WindowSolution]:
        return list(self.process(items))

    # ------------------------------------------------------------------ #
    # The engine: one window through partition -> backend -> combine,
    # split into a dispatch half and a gather half so ingestion can run
    # several windows ahead of the gather point.
    # ------------------------------------------------------------------ #
    def _solve_window(
        self, index: int, window_items: List[StreamItem], delta: Optional[WindowDelta]
    ) -> WindowSolution:
        """Dispatch and immediately gather one window (the synchronous form)."""
        return self._gather_solution(self._dispatch_window(index, window_items, delta))

    def _dispatch_window(
        self,
        index: int,
        window_items: List[StreamItem],
        delta: Optional[WindowDelta],
        tag: Optional[object] = None,
        track_base: Optional[int] = None,
    ) -> PendingWindow:
        """Filter and dispatch one stream window (the facade's dispatch half)."""
        filtered = self.query_processor.process(window_items) if self.query_processor else window_items
        self.ingestion.windows_dispatched += 1
        # Tagged windows come from an external windowing authority whose
        # lane-local indexes repeat across lanes; let the session's own
        # monotonic epoch counter keep cache bookkeeping globally ordered.
        epoch = None if tag is not None else index
        return self._dispatch_evaluation(
            filtered, delta=delta, epoch=epoch, index=index, tag=tag, track_base=track_base
        )

    def _gather_solution(self, pending: PendingWindow) -> WindowSolution:
        """Gather one dispatched window into its :class:`WindowSolution`."""
        result = self._gather_evaluation(pending)
        self.ingestion.windows_gathered += 1
        solution_atoms: List[Atom] = sorted({atom for answer in result.answers for atom in answer}, key=str)
        solution_triples = tuple(
            self.format_processor.atom_to_triple(atom) for atom in solution_atoms if atom.arity in (1, 2)
        )
        return WindowSolution(
            window_index=pending.index,
            window_size=len(pending.window),
            answers=tuple(result.answers),
            solution_triples=solution_triples,
            metrics=result.metrics,
            tag=pending.tag,
        )

    def evaluate_window(
        self,
        window: Sequence[StreamItem],
        *,
        delta: Optional[WindowDelta] = None,
        epoch: Optional[int] = None,
    ) -> ParallelResult:
        """Partition, dispatch to the backend, and combine one input window.

        Following Figure 6, the partitioning handler splits the *filtered
        stream* directly (triples and atoms both expose their predicate),
        and each partition's reasoner performs its own data format
        translation -- so the transformation cost is parallelised along with
        the solving.

        ``delta`` signals that this window is the next slide of an
        overlapping stream.  When the partitioner is *deterministic* (the
        same item always lands in the same partitions) and the backend
        preserves per-track continuity (``supports_delta``), every partition
        is evaluated incrementally on its own track: partition ``i``'s
        grounding delta-repairs partition ``i``'s previous instantiation.
        Non-deterministic partitioners (the random baseline) ignore the
        hint -- their layouts reshuffle every window, so there is no
        continuity to exploit.

        This method is always synchronous (dispatch immediately followed by
        gather), whatever ``max_inflight`` says -- pipelining applies to the
        push/process facade, whose window ordering the session controls.
        """
        return self._gather_evaluation(self._dispatch_evaluation(window, delta=delta, epoch=epoch))

    def _dispatch_evaluation(
        self,
        window: Sequence[StreamItem],
        *,
        delta: Optional[WindowDelta],
        epoch: Optional[int],
        index: Optional[int] = None,
        tag: Optional[object] = None,
        track_base: Optional[int] = None,
    ) -> PendingWindow:
        """Partition one window and submit its work items (non-blocking).

        Empty sub-windows are filtered out before dispatch: they contribute
        only the program's own consequences, which every other partition
        already derives, and for non-monotonic programs they would multiply
        the combination product with spurious picks.  When *every*
        sub-window is empty, one empty partition is evaluated so the
        combined answers degenerate to the answer sets of the program itself
        -- exactly what the unpartitioned reasoner returns for that window.
        Each batch keeps its partition index as its *track*: the stable
        identity under which grounding caches store per-partition delta
        states and placement strategies pin worker slots.  ``track_base``
        shifts the whole layout, so independent window lanes multiplexed
        over one session occupy disjoint track namespaces.
        """
        window = list(window)
        if track_base is None:
            track_base = self.track_base
        if epoch is None:
            epoch = self._epoch
        self._epoch = max(self._epoch, epoch) + 1
        # Backend start-up (pickling the reasoner, spawning workers) must
        # not be billed to the first window's evaluation phase.
        self.backend.start(self.reasoner)

        incremental = (
            delta is not None
            and delta.carries_over
            and getattr(self.partitioner, "deterministic", False)
            and self.backend.supports_delta
        )

        with Timer() as partitioning_timer:
            partitions = self.partitioner.partition(window)

        batches = [(track, list(partition)) for track, partition in enumerate(partitions) if partition]
        if not batches:
            batches = [(0, [])]
        items = [
            WorkItem(facts=tuple(batch), track=track_base + track, epoch=epoch, incremental=incremental)
            for track, batch in batches
        ]
        dispatched_at = time.perf_counter()
        submissions: List[Tuple[WorkItem, Optional["Future[ReasonerResult]"]]] = []
        for item in items:
            try:
                submissions.append((item, self.backend.submit(item)))
            except BackendConnectionError:
                # The backend refused the item outright (e.g. a TCP fleet
                # with no live worker left); mark it for inline evaluation
                # at gather time.
                if not self.inline_fallback:
                    raise
                submissions.append((item, None))
        return PendingWindow(
            index=index if index is not None else epoch,
            epoch=epoch,
            window=window,
            partition_sizes=[len(partition) for partition in partitions],
            submissions=submissions,
            partitioning_seconds=partitioning_timer.seconds,
            dispatched_at=dispatched_at,
            tag=tag,
        )

    def _gather_evaluation(self, pending: PendingWindow) -> ParallelResult:
        """Collect one dispatched window's futures and combine the answers.

        A future that fails with :class:`BackendConnectionError` *after*
        dispatch (the worker died while the window was in flight) is
        re-evaluated inline here, exactly like a submit-time refusal --
        the late sibling of the session's inline fallback.
        """
        partition_results: List[ReasonerResult] = []
        for item, future in pending.submissions:
            try:
                if future is None:
                    raise BackendConnectionError("backend rejected the item at submit time")
                partition_results.append(future.result())
            except BackendConnectionError:
                if not self.inline_fallback:
                    raise
                # Degraded transport: evaluate this partition locally so the
                # stream keeps flowing; the local cache state differs from
                # the lost worker's, but answers are equivalent.
                self.fallbacks += 1
                partition_results.append(self.reasoner.reason_item(item))
        # Under pipelined ingestion this includes the time the window sat in
        # flight behind its predecessors, i.e. it is the window's dispatch-
        # to-gather wall clock, not pure evaluation.
        evaluation_seconds = time.perf_counter() - pending.dispatched_at

        with Timer() as combining_timer:
            combined = combine_answer_sets(
                [result.answers for result in partition_results],
                max_combinations=self.max_combinations,
            )

        breakdown = self._latency(partition_results)
        breakdown.partitioning_seconds += pending.partitioning_seconds
        breakdown.combining_seconds += combining_timer.seconds

        if self.backend.measures_wall_clock:
            # Real pools report what a stopwatch around the evaluation phase
            # actually measured.
            latency_seconds = pending.partitioning_seconds + evaluation_seconds + combining_timer.seconds
        else:
            latency_seconds = breakdown.total_seconds

        window = pending.window
        metrics = ReasonerMetrics(
            window_size=len(window),
            latency_seconds=latency_seconds,
            breakdown=breakdown,
            partition_sizes=list(pending.partition_sizes),
            answer_count=len(combined),
            duplication_ratio=(
                (sum(pending.partition_sizes) - len(window)) / len(window) if window else 0.0
            ),
            cache_hits=sum(result.metrics.cache_hits for result in partition_results),
            cache_misses=sum(result.metrics.cache_misses for result in partition_results),
            delta_repairs=sum(result.metrics.delta_repairs for result in partition_results),
            repair_size=sum(result.metrics.repair_size for result in partition_results),
            repair_rules_changed=sum(result.metrics.repair_rules_changed for result in partition_results),
            assumption_resolves=sum(result.metrics.assumption_resolves for result in partition_results),
            solver_full_solves=sum(result.metrics.solver_full_solves for result in partition_results),
            encoding_repairs=sum(result.metrics.encoding_repairs for result in partition_results),
            solver_clauses_retained=sum(result.metrics.solver_clauses_retained for result in partition_results),
            solver_clauses_dropped=sum(result.metrics.solver_clauses_dropped for result in partition_results),
            solver_strata_reused=sum(result.metrics.solver_strata_reused for result in partition_results),
            evaluation_wall_seconds=evaluation_seconds,
            worker_wall_seconds=[result.metrics.latency_seconds for result in partition_results],
        )
        return ParallelResult(
            answers=tuple(combined),
            metrics=metrics,
            partition_results=tuple(partition_results),
        )

    def _latency(self, partition_results: Sequence[ReasonerResult]) -> LatencyBreakdown:
        """Aggregate the partition latencies according to the backend."""
        if not partition_results:
            return LatencyBreakdown()
        if not self.backend.concurrent:
            merged = LatencyBreakdown()
            for result in partition_results:
                merged = merged.merged_with(result.metrics.breakdown)
            return merged
        # Concurrent backends: the per-stage breakdown is bounded by the
        # slowest partition (they run -- actually or notionally -- at the
        # same time).
        slowest = max(partition_results, key=lambda result: result.metrics.breakdown.total_seconds)
        breakdown = slowest.metrics.breakdown
        return LatencyBreakdown(
            transformation_seconds=breakdown.transformation_seconds,
            grounding_seconds=breakdown.grounding_seconds,
            solving_seconds=breakdown.solving_seconds,
        )
