"""Standing queries, their registry, and per-query result subscriptions.

A :class:`StandingQuery` is what a tenant registers with the query server:
a name, an ASP program, a count-window policy over the shared stream, the
input predicates that select the tenant's slice of that stream, and the
output predicates its subscribers care about.  The
:class:`QueryRegistry` is the bookkeeping half of the server -- thread-safe
register/unregister/list plus one bounded :class:`Subscription` per query
into which the server routes projected :class:`QueryResult` records.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.program import Program
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindow
from repro.streamrule.metrics import ReasonerMetrics

__all__ = ["QueryRegistry", "QueryResult", "StandingQuery", "Subscription"]

#: Results a subscription retains before dropping its oldest.  A subscriber
#: that stops draining must not grow the server's memory without bound; the
#: drop counter records how much it missed.
DEFAULT_SUBSCRIPTION_CAPACITY = 1024


@dataclass(frozen=True)
class StandingQuery:
    """One tenant's continuously-evaluated query.

    ``input_predicates`` select the tenant's slice of the shared stream
    (``None`` = everything); ``output_predicates`` are what its results are
    projected onto (``None`` = the program's derived predicates).
    ``weight`` is the tenant's share in the fairness scheduler.  Windows
    are count windows: the server's lanes window the shared stream by
    arrival order, the semantics under which shared evaluation across
    tenants is well-defined.
    """

    tenant: str
    name: str
    program: Program
    window: CountWindow
    input_predicates: Optional[Tuple[str, ...]] = None
    output_predicates: Optional[Tuple[str, ...]] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenant or "/" in self.tenant:
            raise ValueError("tenant must be a non-empty name without '/'")
        if not self.name:
            raise ValueError("query name must be non-empty")
        if not isinstance(self.window, CountWindow):
            raise TypeError("standing queries window by count (pass a CountWindow)")
        if self.weight <= 0.0:
            raise ValueError("weight must be positive")
        if self.input_predicates is not None:
            object.__setattr__(self, "input_predicates", tuple(self.input_predicates))
        if self.output_predicates is not None:
            object.__setattr__(self, "output_predicates", tuple(self.output_predicates))

    @property
    def key(self) -> str:
        """The registry key, ``tenant/name``."""
        return f"{self.tenant}/{self.name}"

    def effective_inputs(self) -> Optional[frozenset]:
        return frozenset(self.input_predicates) if self.input_predicates is not None else None

    def effective_outputs(self) -> frozenset:
        if self.output_predicates is not None:
            return frozenset(self.output_predicates)
        return frozenset(self.program.idb_predicates())


@dataclass(frozen=True)
class QueryResult:
    """One window's answers for one standing query (already projected)."""

    query_key: str
    tenant: str
    window_index: int
    window_size: int
    answers: Tuple[frozenset, ...]
    solution_triples: Tuple[Triple, ...]
    latency_seconds: float
    #: How many standing queries this evaluation served (1 = unshared).
    shared_with: int
    metrics: ReasonerMetrics

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The distinct answer atoms, sorted for stable display."""
        return tuple(sorted({atom for answer in self.answers for atom in answer}, key=str))


class Subscription:
    """A bounded, thread-safe queue of one query's results."""

    def __init__(self, query_key: str, capacity: int = DEFAULT_SUBSCRIPTION_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.query_key = query_key
        self._results: Deque[QueryResult] = deque()
        self._capacity = capacity
        self._lock = threading.Lock()
        #: Results dropped because the subscriber stopped draining.
        self.dropped = 0
        #: Results ever delivered into this subscription.
        self.delivered = 0

    def publish(self, result: QueryResult) -> None:
        with self._lock:
            if len(self._results) >= self._capacity:
                self._results.popleft()
                self.dropped += 1
            self._results.append(result)
            self.delivered += 1

    def drain(self) -> List[QueryResult]:
        """Remove and return everything queued, oldest first."""
        with self._lock:
            drained = list(self._results)
            self._results.clear()
            return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)


class QueryRegistry:
    """Thread-safe register/unregister/list of standing queries."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._queries: Dict[str, StandingQuery] = {}
        self._subscriptions: Dict[str, Subscription] = {}

    def register(self, query: StandingQuery) -> Subscription:
        with self._lock:
            if query.key in self._queries:
                raise ValueError(f"standing query {query.key!r} is already registered")
            self._queries[query.key] = query
            subscription = Subscription(query.key)
            self._subscriptions[query.key] = subscription
            return subscription

    def unregister(self, key: str) -> StandingQuery:
        with self._lock:
            if key not in self._queries:
                raise KeyError(f"no standing query {key!r}")
            self._subscriptions.pop(key, None)
            return self._queries.pop(key)

    def get(self, key: str) -> StandingQuery:
        with self._lock:
            return self._queries[key]

    def subscription(self, key: str) -> Subscription:
        with self._lock:
            return self._subscriptions[key]

    def list_queries(self) -> List[StandingQuery]:
        """The registered queries in registration order."""
        with self._lock:
            return list(self._queries.values())

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._queries

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)
