"""The fairness scheduler apportioning the in-flight budget across tenants.

The query server has one bounded in-flight budget (the session's
``max_inflight``) and many tenants producing ready windows at different
rates.  Something has to decide whose window dispatches next; this module
is that something, kept deliberately free of clocks, threads, and I/O so
its behaviour is a deterministic function of the call sequence -- which is
what lets the hypothesis interleaving tests state real guarantees.

:class:`FairScheduler` implements weighted round-robin with three teeth:

*Credits (weighted shares).*  Every ``select`` round, each key with ready
work earns its ``weight`` in credits; the chosen key pays the whole round's
earnings back.  Over any busy stretch, dispatches converge to shares
proportional to the weights.

*Per-key quotas.*  No key may hold more than ``quota_fraction`` of the
budget's slots in flight at once (always at least one).  A greedy tenant
with a deep backlog can saturate its quota, never the whole pipeline.

*Starvation guard.*  A key passed over ``starvation_rounds`` consecutive
times while eligible is boosted to the front regardless of credits, so even
a weight-1 tenant among weight-100 neighbours is served within a bounded
number of rounds.  Boosts are counted (``boosts``) and exported by the
metrics endpoint -- a rising count is the ops signal that the configured
weights are starving someone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional, Tuple

__all__ = ["FairScheduler", "ScheduledKeyStats"]


@dataclass
class _KeyState:
    weight: float = 1.0
    pending: Deque[object] = field(default_factory=deque)
    in_flight: int = 0
    credits: float = 0.0
    skipped: int = 0
    dispatched: int = 0
    boosts: int = 0


@dataclass(frozen=True)
class ScheduledKeyStats:
    """Snapshot row of one scheduled key (see :meth:`FairScheduler.snapshot`)."""

    key: Hashable
    weight: float
    pending: int
    in_flight: int
    dispatched: int
    boosts: int
    credits: float


class FairScheduler:
    """Deterministic weighted round-robin with quotas and a starvation guard.

    Keys are opaque (the server schedules window *lanes*; a lane's weight is
    the sum of its member tenants' weights).  The protocol is::

        scheduler.configure(key, weight=2.0)   # (re)declare a key
        scheduler.enqueue(key, item)           # a window became ready
        picked = scheduler.select(budget)      # -> (key, item) or None
        ...                                    # dispatch the item
        scheduler.complete(key)                # its evaluation finished

    ``select`` returns ``None`` when nothing is ready or every ready key is
    at its quota -- the caller gathers a finished window (freeing a slot)
    and retries.  The class is not thread-safe by itself; the query server
    serializes calls under its own lock.
    """

    def __init__(self, *, quota_fraction: float = 0.5, starvation_rounds: int = 8):
        if not 0.0 < quota_fraction <= 1.0:
            raise ValueError("quota_fraction must be in (0, 1]")
        if starvation_rounds < 1:
            raise ValueError("starvation_rounds must be at least 1")
        self.quota_fraction = quota_fraction
        self.starvation_rounds = starvation_rounds
        self._keys: "Dict[Hashable, _KeyState]" = {}

    # ------------------------------------------------------------------ #
    # Key management
    # ------------------------------------------------------------------ #
    def configure(self, key: Hashable, weight: float = 1.0) -> None:
        """Declare ``key`` (or update its weight; queue state is kept)."""
        if weight <= 0.0:
            raise ValueError("weight must be positive")
        state = self._keys.setdefault(key, _KeyState())
        state.weight = weight

    def remove(self, key: Hashable) -> List[object]:
        """Forget ``key``; returns its still-pending items (never dispatched)."""
        state = self._keys.pop(key, None)
        return list(state.pending) if state is not None else []

    def keys(self) -> List[Hashable]:
        return list(self._keys)

    # ------------------------------------------------------------------ #
    # The scheduling cycle
    # ------------------------------------------------------------------ #
    def enqueue(self, key: Hashable, item: object) -> None:
        """A window of ``key`` became ready for dispatch."""
        if key not in self._keys:
            self.configure(key)
        self._keys[key].pending.append(item)

    def has_pending(self) -> bool:
        return any(state.pending for state in self._keys.values())

    def pending_count(self, key: Optional[Hashable] = None) -> int:
        if key is not None:
            state = self._keys.get(key)
            return len(state.pending) if state is not None else 0
        return sum(len(state.pending) for state in self._keys.values())

    def in_flight_count(self, key: Hashable) -> int:
        state = self._keys.get(key)
        return state.in_flight if state is not None else 0

    def quota(self, budget: int) -> int:
        """Most in-flight slots one key may hold out of ``budget``."""
        return max(1, int(budget * self.quota_fraction))

    def select(self, budget: int) -> Optional[Tuple[Hashable, object]]:
        """Pick the next (key, item) to dispatch, or ``None``.

        ``budget`` is the total in-flight bound the caller is working under;
        it parameterizes the per-key quota.  The caller is responsible for
        not calling ``select`` when it has no free slot at all.
        """
        ready = [(key, state) for key, state in self._keys.items() if state.pending]
        if not ready:
            return None
        quota = self.quota(budget)
        eligible = [(key, state) for key, state in ready if state.in_flight < quota]
        if not eligible:
            return None

        # Everyone with ready work earns this round; the winner pays the
        # round's total back, so long-run shares track the weights.
        round_weight = sum(state.weight for _, state in ready)
        for _, state in ready:
            state.credits += state.weight

        starving = [
            (key, state) for key, state in eligible if state.skipped >= self.starvation_rounds
        ]
        if starving:
            chosen_key, chosen = max(starving, key=lambda pair: (pair[1].skipped, pair[1].credits))
            chosen.boosts += 1
        else:
            chosen_key, chosen = max(eligible, key=lambda pair: pair[1].credits)

        chosen.credits -= round_weight
        # Bound the credit drift so a key idle at its quota for a long
        # stretch cannot bank unbounded priority (or debt).
        bound = round_weight * (self.starvation_rounds + 1)
        for _, state in ready:
            state.credits = max(-bound, min(bound, state.credits))
        for key, state in eligible:
            state.skipped = 0 if key == chosen_key else state.skipped + 1

        chosen.in_flight += 1
        chosen.dispatched += 1
        return chosen_key, chosen.pending.popleft()

    def complete(self, key: Hashable) -> None:
        """One of ``key``'s dispatched windows finished evaluation."""
        state = self._keys.get(key)
        if state is not None and state.in_flight > 0:
            state.in_flight -= 1

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def snapshot(self) -> List[ScheduledKeyStats]:
        return [
            ScheduledKeyStats(
                key=key,
                weight=state.weight,
                pending=len(state.pending),
                in_flight=state.in_flight,
                dispatched=state.dispatched,
                boosts=state.boosts,
                credits=state.credits,
            )
            for key, state in self._keys.items()
        ]
