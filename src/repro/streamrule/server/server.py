"""The multi-tenant :class:`QueryServer`.

One server hosts many named standing queries over a single shared
:class:`~repro.streamrule.backends.ExecutionBackend`.  The moving parts:

*Union program over shared tracks.*  All registered queries are normalized
(:mod:`~repro.streamrule.server.subprogram`), their distinct rules merged
into one union program, and a single internal
:class:`~repro.streamrule.session.StreamSession` evaluates that program --
so a rule shared by N tenants is grounded and solved once per window on a
shared :class:`~repro.asp.grounding.grounder.GroundingCache` /
:class:`~repro.asp.solving.incremental.SolverCache` track, not N times in N
isolated sessions.  Each tenant's answers are projected out of the combined
answer sets onto its output predicates; registration rejects query
combinations for which that projection would not be semantics-preserving
(:func:`~repro.streamrule.server.subprogram.union_conflicts`).

*Window lanes.*  Queries agreeing on (window policy, input filter) share a
*lane*: the lane windows the shared stream once, each completed window is
evaluated once, and the result fans out to every member query.  Every lane
owns a disjoint track range (``lane_id * track_stride``) via the session's
``push_window(track_base=...)`` seam, so lanes never collide their
per-track delta-grounding / incremental-solver states.

*Fairness.*  Ready windows do not dispatch in arrival order but through a
:class:`~repro.streamrule.server.scheduler.FairScheduler`: weighted
round-robin over lanes (a lane weighs the sum of its member tenants'
weights) with per-lane quotas on the bounded in-flight budget and a
starvation guard.  The budget itself adapts to the backend's observed
``queue_depth()`` -- a congested fleet halves the dispatch budget until it
drains.

*Ops.*  :meth:`QueryServer.metric_families` assembles per-tenant counters
(:class:`~repro.streamrule.metrics.TenantStats`), the session's
:class:`~repro.streamrule.metrics.IngestionStats`, backend queue/transport
statistics, and both cache statistics; :meth:`QueryServer.serve_metrics`
exposes them over the Prometheus text format (see
:mod:`~repro.streamrule.server.metrics_export`).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

from repro.asp.grounding.grounder import GroundingCache
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.program import Program
from repro.core.partitioner import Partitioner
from repro.streaming.triples import Triple
from repro.streaming.window import CountWindowStepper
from repro.streamrule.backends import ExecutionBackend, InlineBackend
from repro.streamrule.metrics import TenantStats
from repro.streamrule.reasoner import Reasoner
from repro.streamrule.server.metrics_export import MetricFamily, MetricsEndpoint
from repro.streamrule.server.registry import (
    QueryRegistry,
    QueryResult,
    StandingQuery,
    Subscription,
)
from repro.streamrule.server.scheduler import FairScheduler
from repro.streamrule.server.subprogram import (
    ProgramSignature,
    program_signature,
    shared_fraction,
    union_conflicts,
)
from repro.streamrule.session import StreamSession, WindowSolution

__all__ = ["QueryConflictError", "QueryServer"]

StreamItem = Union[Triple, Atom]

#: Tracks reserved per lane: lane ``i`` dispatches partition ``t`` as cache
#: track ``i * stride + t``, so lanes never collide their delta states as
#: long as the partitioner stays under ``stride`` partitions.
DEFAULT_TRACK_STRIDE = 64

_METRIC_TOKEN = re.compile(r"[^a-zA-Z0-9_]")


class QueryConflictError(ValueError):
    """Registering this query would change some registered query's meaning."""

    def __init__(self, conflicts: List[str]):
        self.conflicts = conflicts
        super().__init__(
            "query union would not preserve per-query semantics:\n  - " + "\n  - ".join(conflicts)
        )


@dataclass
class _Lane:
    """Queries agreeing on (window policy, input filter) share one lane."""

    lane_id: int
    key: Hashable
    window: object  # CountWindow
    input_filter: Optional[frozenset]
    stepper: CountWindowStepper
    members: List[str] = field(default_factory=list)
    windows_ready: int = 0
    windows_evaluated: int = 0

    def accepts(self, item: StreamItem) -> bool:
        return self.input_filter is None or item.predicate in self.input_filter


class QueryServer:
    """Host many standing queries over one shared execution backend.

    Typical use::

        server = QueryServer(backend=TcpBackend(endpoints))
        inbox = server.register(StandingQuery(
            tenant="city", name="jams", program=traffic_program(),
            window=CountWindow(size=300, slide=75, emit_partial=False),
            input_predicates=INPUT_PREDICATES,
            output_predicates=EVENT_PREDICATES,
        ))
        server.push(stream)                # feed everyone's items, mixed
        server.finish()
        for result in inbox.drain():       # per-query projected answers
            ...
        server.close()

    Not thread-safe for concurrent pushes; one ingest thread drives the
    server (subscriptions may be drained from any thread).
    """

    def __init__(
        self,
        *,
        backend: Optional[ExecutionBackend] = None,
        partitioner: Optional[Partitioner] = None,
        grounding_cache: Optional[GroundingCache] = None,
        solver_cache=None,
        scheduler: Optional[FairScheduler] = None,
        max_inflight: Union[int, str, None] = None,
        max_models: Optional[int] = None,
        max_combinations: Optional[int] = 64,
        track_stride: int = DEFAULT_TRACK_STRIDE,
    ):
        if track_stride < 1:
            raise ValueError("track_stride must be at least 1")
        self.backend: ExecutionBackend = backend if backend is not None else InlineBackend()
        self.partitioner = partitioner
        # Shared grounding is the point of the server: default to a real
        # cache so overlapping queries share tracks out of the box.
        self.grounding_cache = grounding_cache if grounding_cache is not None else GroundingCache()
        self.solver_cache = solver_cache
        self.scheduler = scheduler if scheduler is not None else FairScheduler()
        self.max_inflight = max_inflight
        self.max_models = max_models
        self.max_combinations = max_combinations
        self.track_stride = track_stride

        self.registry = QueryRegistry()
        self.tenant_stats: Dict[str, TenantStats] = {}
        #: Ready windows the adaptive budget refused to dispatch immediately
        #: because the backend's queue ran deep (they dispatch later).
        self.budget_trims = 0
        #: Solutions whose lane disappeared before gather (late unregister).
        self.orphaned_windows = 0

        self._lock = threading.RLock()
        self._signatures: Dict[str, ProgramSignature] = {}
        self._lanes: Dict[Hashable, _Lane] = {}
        self._session: Optional[StreamSession] = None
        self._active_fingerprints: Optional[frozenset] = None
        self._program_version = 0
        self._next_lane_id = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, query: StandingQuery) -> Subscription:
        """Add a standing query; returns its result subscription.

        Raises :class:`QueryConflictError` when evaluating the query jointly
        with the already-registered ones could change anyone's answers --
        the fix is namespacing the colliding derived predicates.  Mid-stream
        registration is allowed: the query's lane starts windowing at the
        next pushed item.
        """
        with self._lock:
            self._require_open()
            signature = program_signature(query.program, name=query.key)
            candidate = dict(self._signatures)
            candidate[query.key] = signature
            conflicts = union_conflicts(candidate)
            if conflicts:
                raise QueryConflictError(conflicts)
            subscription = self.registry.register(query)
            self._signatures[query.key] = signature
            self.tenant_stats.setdefault(query.tenant, TenantStats(tenant=query.tenant))
            self._join_lane(query)
            self._refresh_program()
            return subscription

    def unregister(self, key: str) -> StandingQuery:
        """Remove a standing query mid-stream.

        Its lane's still-pending windows are dropped for that query (other
        members keep them); the union program shrinks -- and the session is
        rolled -- only when the query owned rules nobody else shares.
        """
        with self._lock:
            self._require_open()
            query = self.registry.unregister(key)
            self._signatures.pop(key, None)
            self._leave_lane(query)
            self._refresh_program()
            return query

    def queries(self) -> List[StandingQuery]:
        return self.registry.list_queries()

    def subscription(self, key: str) -> Subscription:
        return self.registry.subscription(key)

    # ------------------------------------------------------------------ #
    # Lanes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lane_key(query: StandingQuery) -> Hashable:
        window = query.window
        inputs = query.effective_inputs()
        return (
            window.size,
            window.slide,
            window.emit_partial,
            tuple(sorted(inputs)) if inputs is not None else None,
        )

    def _join_lane(self, query: StandingQuery) -> None:
        key = self._lane_key(query)
        lane = self._lanes.get(key)
        if lane is None:
            lane = _Lane(
                lane_id=self._next_lane_id,
                key=key,
                window=query.window,
                input_filter=query.effective_inputs(),
                stepper=query.window.stepper(),
            )
            self._next_lane_id += 1
            self._lanes[key] = lane
            label = f"lane{lane.lane_id}:{query.key}"
            if hasattr(self.grounding_cache, "label_track"):
                self.grounding_cache.label_track(lane.lane_id * self.track_stride, label)
            if self.solver_cache is not None and hasattr(self.solver_cache, "label_track"):
                self.solver_cache.label_track(lane.lane_id * self.track_stride, label)
        lane.members.append(query.key)
        self.scheduler.configure(key, weight=self._lane_weight(lane))

    def _leave_lane(self, query: StandingQuery) -> None:
        key = self._lane_key(query)
        lane = self._lanes.get(key)
        if lane is None:
            return
        if query.key in lane.members:
            lane.members.remove(query.key)
        if lane.members:
            self.scheduler.configure(key, weight=self._lane_weight(lane))
            return
        self.scheduler.remove(key)
        del self._lanes[key]

    def _lane_weight(self, lane: _Lane) -> float:
        total = 0.0
        for member in lane.members:
            if member in self.registry:
                total += self.registry.get(member).weight
        return total or 1.0

    # ------------------------------------------------------------------ #
    # The union program and the shared session
    # ------------------------------------------------------------------ #
    def _refresh_program(self) -> None:
        """Rebuild the combined session iff the effective rule set changed."""
        fingerprints = frozenset(
            fingerprint for signature in self._signatures.values() for fingerprint in signature.fingerprints
        )
        if fingerprints == self._active_fingerprints:
            return
        if self._session is not None:
            # Gather (and route) everything in flight under the old program
            # before the reasoner changes underneath the backend.
            self._drain_session()
            self._session.close(drain=False)
            self._session = None
        self._active_fingerprints = fingerprints
        if not self._signatures:
            return
        self._program_version += 1
        rules: Dict[str, object] = {}
        for signature in self._signatures.values():
            for fingerprint, rule in signature.rules.items():
                rules.setdefault(fingerprint, rule)
        program = Program(tuple(rules.values()), name=f"union_v{self._program_version}")
        inputs: set = set()
        outputs: set = set()
        for query in self.registry.list_queries():
            filter_ = query.effective_inputs()
            inputs.update(filter_ if filter_ is not None else query.program.edb_predicates())
            outputs.update(query.effective_outputs())
        reasoner = Reasoner(
            program,
            input_predicates=tuple(sorted(inputs)) or None,
            output_predicates=tuple(sorted(outputs)) or None,
            max_models=self.max_models,
            grounding_cache=self.grounding_cache,
            solver_cache=self.solver_cache,
        )
        self._session = StreamSession(
            reasoner,
            window=None,
            backend=self.backend,
            partitioner=self.partitioner,
            max_inflight=self.max_inflight,
            max_combinations=self.max_combinations,
            owns_backend=False,
        )

    @property
    def program_version(self) -> int:
        """How many times the union program has been (re)built."""
        return self._program_version

    @property
    def combined_program(self) -> Optional[Program]:
        return self._session.reasoner.program if self._session is not None else None

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def push(self, items: Union[StreamItem, Iterable[StreamItem]]) -> int:
        """Feed shared-stream items to every lane; dispatch what completes.

        Returns the number of lane windows that became ready.  Dispatch
        order is the fairness scheduler's, not arrival order; results land
        in the member queries' subscriptions as evaluations gather.
        """
        batch = [items] if isinstance(items, (Triple, Atom)) else list(items)
        ready = 0
        with self._lock:
            self._require_open()
            for item in batch:
                for lane in self._lanes.values():
                    if not lane.accepts(item):
                        continue
                    delta = lane.stepper.feed(item)
                    if delta is not None:
                        lane.windows_ready += 1
                        ready += 1
                        self.scheduler.enqueue(lane.key, delta)
            self._pump(block=False)
        return ready

    def finish(self) -> None:
        """Flush lane tails, dispatch everything pending, route all results.

        The server stays usable; lanes restart windowing fresh on the next
        push (their window indexes restart at 0), exactly like
        :meth:`StreamSession.finish`.
        """
        with self._lock:
            self._require_open()
            for lane in self._lanes.values():
                tail = lane.stepper.flush()
                if tail is not None:
                    lane.windows_ready += 1
                    self.scheduler.enqueue(lane.key, tail)
                lane.stepper = lane.window.stepper()
            self._pump(block=True)

    def _budget(self) -> int:
        """The dispatch budget this round, trimmed under backend congestion."""
        assert self._session is not None
        budget = self._session.effective_max_inflight()
        if self.backend.queue_depth() >= 2 * budget and budget > 1:
            self.budget_trims += 1
            return max(1, budget // 2)
        return budget

    def _pump(self, block: bool) -> None:
        """Move ready windows into the backend and route finished ones out."""
        if self._session is None:
            # No queries registered: drop any stray ready work defensively.
            while self.scheduler.has_pending():
                picked = self.scheduler.select(1)
                if picked is None:
                    break
                self.scheduler.complete(picked[0])
            return
        session = self._session
        while True:
            self._route_ready()
            if not self.scheduler.has_pending() and (not block or session.inflight_count == 0):
                return
            budget = self._budget()
            if session.inflight_count < budget:
                picked = self.scheduler.select(budget)
                if picked is not None:
                    self._dispatch(picked[0], picked[1])
                    continue
                if not self.scheduler.has_pending():
                    continue  # loop back to drain/route in-flight
            if not block:
                return
            if session.inflight_count:
                self._gather_one()
                continue
            # Pending work, an empty pipeline, and nothing selectable: the
            # scheduler's in-flight bookkeeping has desynchronized.
            raise RuntimeError("query server stalled: pending windows but nothing dispatchable")

    def _dispatch(self, lane_key: Hashable, delta) -> None:
        lane = self._lanes.get(lane_key)
        if lane is None:
            self.scheduler.complete(lane_key)
            return
        assert self._session is not None
        lane.windows_evaluated += 1
        for member in lane.members:
            if member in self.registry:
                stats = self.tenant_stats[self.registry.get(member).tenant]
                stats.windows_dispatched += 1
        self._session.push_window(
            list(delta.window),
            delta=delta,
            index=delta.index,
            tag=lane_key,
            track_base=lane.lane_id * self.track_stride,
        )

    def _route_ready(self) -> None:
        assert self._session is not None
        for solution in self._session.results(wait=False):
            self._route(solution)

    def _gather_one(self) -> None:
        assert self._session is not None
        for solution in self._session.results(wait=True):
            self._route(solution)
            return

    def _drain_session(self) -> None:
        if self._session is None:
            return
        for solution in self._session.results(wait=True):
            self._route(solution)

    def _route(self, solution: WindowSolution) -> None:
        """Fan one evaluated lane window out to its member subscriptions."""
        lane_key = solution.tag
        self.scheduler.complete(lane_key)
        lane = self._lanes.get(lane_key)
        members = [key for key in (lane.members if lane is not None else []) if key in self.registry]
        if not members:
            self.orphaned_windows += 1
            return
        for key in members:
            query = self.registry.get(key)
            outputs = query.effective_outputs()
            projected: Dict[frozenset, None] = {}
            for answer in solution.answers:
                projected.setdefault(frozenset(atom for atom in answer if atom.predicate in outputs))
            answers = tuple(projected)
            result = QueryResult(
                query_key=key,
                tenant=query.tenant,
                window_index=solution.window_index,
                window_size=solution.window_size,
                answers=answers,
                solution_triples=tuple(
                    triple for triple in solution.solution_triples if triple.predicate in outputs
                ),
                latency_seconds=solution.metrics.latency_seconds,
                shared_with=len(members),
                metrics=solution.metrics,
            )
            self.registry.subscription(key).publish(result)
            stats = self.tenant_stats[query.tenant]
            stats.windows_completed += 1
            if len(members) > 1:
                stats.windows_shared += 1
            stats.answer_sets += len(answers)
            stats.observe_latency(solution.metrics.latency_seconds)

    # ------------------------------------------------------------------ #
    # Sharing introspection
    # ------------------------------------------------------------------ #
    def sharing_summary(self) -> Dict[str, float]:
        """How much grounding the union program saves over isolation."""
        with self._lock:
            per_query = [len(signature.fingerprints) for signature in self._signatures.values()]
            combined = frozenset(
                fingerprint
                for signature in self._signatures.values()
                for fingerprint in signature.fingerprints
            )
            seen: Dict[str, int] = {}
            for signature in self._signatures.values():
                for fingerprint in signature.fingerprints:
                    seen[fingerprint] = seen.get(fingerprint, 0) + 1
            shared = sum(1 for count in seen.values() if count > 1)
            return {
                "queries": float(len(per_query)),
                "total_rules": float(sum(per_query)),
                "combined_rules": float(len(combined)),
                "shared_rules": float(shared),
                "lanes": float(len(self._lanes)),
            }

    def overlap_matrix(self) -> Dict[Tuple[str, str], float]:
        """Pairwise shared-rule fractions between registered queries."""
        with self._lock:
            keys = list(self._signatures)
            matrix: Dict[Tuple[str, str], float] = {}
            for i, first in enumerate(keys):
                for second in keys[i + 1 :]:
                    matrix[(first, second)] = shared_fraction(
                        self._signatures[first].fingerprints, self._signatures[second].fingerprints
                    )
            return matrix

    # ------------------------------------------------------------------ #
    # Ops: metric families and the HTTP endpoint
    # ------------------------------------------------------------------ #
    def metric_families(self) -> List[MetricFamily]:
        """Everything the ops endpoint exports, as live values."""
        with self._lock:
            families: List[MetricFamily] = []

            tenant_counters = (
                ("windows_dispatched", "streamrule_tenant_windows_dispatched_total",
                 "Lane windows dispatched on behalf of the tenant's queries"),
                ("windows_completed", "streamrule_tenant_windows_completed_total",
                 "Lane windows whose results were delivered to the tenant"),
                ("windows_shared", "streamrule_tenant_windows_shared_total",
                 "Completed windows whose evaluation also served other tenants"),
                ("answer_sets", "streamrule_tenant_answer_sets_total",
                 "Projected answer sets delivered to the tenant's subscriptions"),
                ("scheduler_boosts", "streamrule_tenant_scheduler_boosts_total",
                 "Starvation-guard boosts credited to the tenant's lanes"),
            )
            for attribute, name, help_text in tenant_counters:
                family = MetricFamily(name, "counter", help_text)
                for tenant, stats in self.tenant_stats.items():
                    family.add(float(getattr(stats, attribute)), tenant=tenant)
                families.append(family)
            latency = MetricFamily(
                "streamrule_tenant_latency_seconds",
                "gauge",
                "Per-tenant window latency percentiles over the recent reservoir",
            )
            for tenant, stats in self.tenant_stats.items():
                latency.add(stats.p50_latency_seconds, tenant=tenant, quantile="0.5")
                latency.add(stats.p95_latency_seconds, tenant=tenant, quantile="0.95")
            families.append(latency)

            registered = MetricFamily(
                "streamrule_queries_registered", "gauge", "Standing queries currently registered"
            )
            registered.add(float(len(self.registry)))
            families.append(registered)
            lanes = MetricFamily(
                "streamrule_lanes_active", "gauge", "Distinct (window, filter) lanes currently active"
            )
            lanes.add(float(len(self._lanes)))
            families.append(lanes)
            pending = MetricFamily(
                "streamrule_lane_windows_pending", "gauge", "Ready windows awaiting fair dispatch, per lane"
            )
            evaluated = MetricFamily(
                "streamrule_lane_windows_evaluated_total", "counter",
                "Windows evaluated per lane (each fans out to all lane members)",
            )
            for lane in self._lanes.values():
                label = f"lane{lane.lane_id}"
                pending.add(float(self.scheduler.pending_count(lane.key)), lane=label)
                evaluated.add(float(lane.windows_evaluated), lane=label)
            families.append(pending)
            families.append(evaluated)
            trims = MetricFamily(
                "streamrule_scheduler_budget_trims_total", "counter",
                "Dispatch rounds the in-flight budget was halved under backend congestion",
            )
            trims.add(float(self.budget_trims))
            families.append(trims)

            if self._session is not None:
                ingestion = self._session.ingestion.as_dict()
                session_kinds = {
                    "windows_dispatched": "counter",
                    "windows_gathered": "counter",
                    "inflight_high_water": "gauge",
                    "dispatched_ahead": "counter",
                    "backpressure_stalls": "counter",
                    "backpressure_wait_seconds": "counter",
                    "inflight_target": "gauge",
                    "aimd_increases": "counter",
                    "aimd_backoffs": "counter",
                }
                for stat, value in ingestion.items():
                    families.append(
                        MetricFamily(
                            f"streamrule_session_{stat}",
                            session_kinds.get(stat, "gauge"),
                            f"Session ingestion statistic {stat}",
                        ).add(value)
                    )
                families.append(
                    MetricFamily(
                        "streamrule_session_inline_fallbacks_total", "counter",
                        "Partition evaluations degraded to inline after a backend connection loss",
                    ).add(float(self._session.fallbacks))
                )

            families.append(
                MetricFamily(
                    "streamrule_backend_queue_depth", "gauge",
                    "Work items submitted to the backend but not yet finished",
                ).add(float(self.backend.queue_depth()))
            )
            families.append(
                MetricFamily(
                    "streamrule_backend_queue_high_water", "gauge",
                    "Most work items ever simultaneously in flight on the backend",
                ).add(float(self.backend.queue_high_water))
            )
            for stat, value in sorted(self.backend.transport_statistics().items()):
                token = _METRIC_TOKEN.sub("_", stat)
                families.append(
                    MetricFamily(
                        f"streamrule_wire_{token}", "gauge",
                        f"Backend transport statistic {stat}",
                    ).add(float(value))
                )

            for prefix, statistics in (
                (
                    "streamrule_grounding_cache",
                    self.grounding_cache.statistics() if self.grounding_cache is not None else {},
                ),
                (
                    "streamrule_solver_cache",
                    self.solver_cache.statistics() if self.solver_cache is not None else {},
                ),
            ):
                for stat, value in sorted(statistics.items()):
                    token = _METRIC_TOKEN.sub("_", stat)
                    families.append(
                        MetricFamily(f"{prefix}_{token}", "gauge", f"Cache statistic {stat}").add(float(value))
                    )
            return families

    def health(self) -> Dict[str, object]:
        with self._lock:
            return {
                "status": "ok",
                "queries": len(self.registry),
                "lanes": len(self._lanes),
                "program_version": self._program_version,
            }

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0) -> MetricsEndpoint:
        """Start the ops HTTP endpoint (``/metrics``, ``/healthz``)."""
        return MetricsEndpoint(self.metric_families, health=self.health, host=host, port=port).start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Finish outstanding work (``drain=True``) and close the backend."""
        with self._lock:
            if self._closed:
                return
            try:
                if drain and self._session is not None:
                    self._pump(block=True)
                if self._session is not None:
                    self._session.close(drain=drain)
                    self._session = None
            finally:
                self._closed = True
                self.backend.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=exc_info[0] is None)

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("query server is closed")
