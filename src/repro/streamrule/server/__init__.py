"""The multi-tenant query server: many standing queries, one shared fleet.

See :mod:`repro.streamrule.server.server` for the architecture overview and
``docs/query-server.md`` for the operator's guide.
"""

from repro.streamrule.server.metrics_export import (
    MetricFamily,
    MetricsEndpoint,
    render_prometheus,
)
from repro.streamrule.server.registry import (
    QueryRegistry,
    QueryResult,
    StandingQuery,
    Subscription,
)
from repro.streamrule.server.scheduler import FairScheduler, ScheduledKeyStats
from repro.streamrule.server.server import QueryConflictError, QueryServer
from repro.streamrule.server.subprogram import (
    ProgramSignature,
    normalize_rule,
    program_signature,
    rule_fingerprint,
    shared_fraction,
    union_conflicts,
)

__all__ = [
    "FairScheduler",
    "MetricFamily",
    "MetricsEndpoint",
    "ProgramSignature",
    "QueryConflictError",
    "QueryRegistry",
    "QueryResult",
    "QueryServer",
    "ScheduledKeyStats",
    "StandingQuery",
    "Subscription",
    "normalize_rule",
    "program_signature",
    "render_prometheus",
    "rule_fingerprint",
    "shared_fraction",
    "union_conflicts",
]
