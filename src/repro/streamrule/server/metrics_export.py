"""Prometheus-text-format export of the server's counters.

Two halves, kept separable on purpose:

* a tiny renderer -- :class:`MetricFamily` plus :func:`render_prometheus`
  -- producing the text exposition format (version 0.0.4: ``# HELP`` /
  ``# TYPE`` headers, escaped label values) from plain Python values, and
* :class:`MetricsEndpoint`, a stdlib ``ThreadingHTTPServer`` serving
  ``GET /metrics`` (the rendered families) and ``GET /healthz`` (a JSON
  liveness probe) on a daemon thread.

No third-party client library: the exposition format is a few lines of
escaping rules, and the scrape path must not import anything the worker
containers do not already have.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["MetricFamily", "MetricsEndpoint", "render_prometheus"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass
class MetricFamily:
    """One exported metric: name, kind, help text, labelled samples."""

    name: str
    kind: str  # "counter" | "gauge"
    help: str
    samples: List[Tuple[Mapping[str, str], float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not _METRIC_NAME.match(self.name):
            raise ValueError(f"invalid metric name {self.name!r}")
        if self.kind not in ("counter", "gauge"):
            raise ValueError(f"unsupported metric kind {self.kind!r}")

    def add(self, value: float, **labels: str) -> "MetricFamily":
        self.samples.append((labels, float(value)))
        return self


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(families: List[MetricFamily]) -> str:
    """Render metric families in the text exposition format (0.0.4)."""
    lines: List[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, value in family.samples:
            for label in labels:
                if not _LABEL_NAME.match(label):
                    raise ValueError(f"invalid label name {label!r} on {family.name}")
            if labels:
                rendered = ",".join(
                    f'{label}="{_escape_label_value(str(labels[label]))}"' for label in sorted(labels)
                )
                lines.append(f"{family.name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{family.name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    # The endpoint is scraped, not browsed: keep request logging quiet.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        endpoint: "MetricsEndpoint" = self.server.endpoint  # type: ignore[attr-defined]
        if self.path.split("?", 1)[0] == "/metrics":
            try:
                body = render_prometheus(endpoint.collect()).encode("utf-8")
            except Exception as error:  # pragma: no cover - defensive
                self._respond(500, "text/plain", f"collection failed: {error}".encode("utf-8"))
                return
            self._respond(200, "text/plain; version=0.0.4; charset=utf-8", body)
            return
        if self.path.split("?", 1)[0] == "/healthz":
            body = json.dumps(endpoint.health()).encode("utf-8")
            self._respond(200, "application/json", body)
            return
        self._respond(404, "text/plain", b"not found (try /metrics or /healthz)")

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class MetricsEndpoint:
    """A daemon-threaded HTTP server around a metric-family collector.

    ``collect`` is called per scrape (so the numbers are live), ``health``
    per ``/healthz`` probe.  ``port=0`` binds an ephemeral port; read
    :attr:`port` / :attr:`url` after :meth:`start`.
    """

    def __init__(
        self,
        collect: Callable[[], List[MetricFamily]],
        *,
        health: Optional[Callable[[], Dict[str, object]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.collect = collect
        self.health = health or (lambda: {"status": "ok"})
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsEndpoint":
        if self._server is not None:
            return self
        server = ThreadingHTTPServer((self._host, self._requested_port), _Handler)
        server.daemon_threads = True
        server.endpoint = self  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, name="metrics-endpoint", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("endpoint is not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
