"""Common-subprogram detection for the multi-tenant query server.

Many standing queries over the same streams tend to share rules -- every
tenant monitoring traffic wants ``traffic_jam``, every fraud desk wants the
same transfer-chain closure.  Hosting each query in its own session grounds
and solves those shared rules once *per tenant per window*.  The query
server instead evaluates the **union program** of all registered queries
and projects each tenant's answers out of the combined answer sets, so a
rule shared by N queries is grounded once per window, on one shared
grounding-cache track.

That is only sound when the union preserves each query's semantics.  Two
ingredients make it checkable:

*Rule normalization.*  :func:`normalize_rule` rewrites a rule into a
practical normal form -- body elements ordered by their variable-blind
structure, variables renamed ``V0, V1, ...`` in order of first occurrence
-- so that alpha-variants and body reorderings of the same rule render
identically and hash to the same :func:`rule_fingerprint`.  The fingerprint
sets of two programs then expose their shared subprogram directly
(:func:`shared_fraction`).

*Definition-closure compatibility.*  Projection onto a query's output
predicates is semantics-preserving when, for every predicate the query
mentions, the union program defines it by exactly the query's own rules
(the splitting-set argument: the query's program is then a module of the
union, and extra modules can only add atoms over predicates the query never
reads).  :func:`union_conflicts` checks this pairwise at registration time;
tenants whose derived predicates collide with different definitions are
rejected with an explanation (the fix is namespacing: ``acme_alert`` rather
than ``alert``).  Constraints have no head to anchor the check, so a
constraint is required to be present in every query whose predicates it
touches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.asp.syntax.program import Program
from repro.asp.syntax.rules import BodyElement, Rule
from repro.asp.syntax.terms import Variable

__all__ = [
    "ProgramSignature",
    "normalize_rule",
    "program_signature",
    "rule_fingerprint",
    "shared_fraction",
    "union_conflicts",
]


def _structure_key(element: BodyElement) -> str:
    """Render a body element with every variable blanked (a sort key)."""
    blank = {variable: Variable("_") for variable in element.variables()}
    return str(element.substitute(blank))


def _alpha_rename(rule: Rule) -> Rule:
    """Rename variables ``V0, V1, ...`` in order of first occurrence."""
    mapping: Dict[Variable, Variable] = {}
    for atom in rule.head:
        for variable in atom.variables():
            if variable not in mapping:
                mapping[variable] = Variable(f"V{len(mapping)}")
    for element in rule.body:
        for variable in element.variables():
            if variable not in mapping:
                mapping[variable] = Variable(f"V{len(mapping)}")
    if not mapping:
        return rule
    return rule.substitute(mapping)


def normalize_rule(rule: Rule) -> Rule:
    """The practical normal form: canonical body order + alpha-renaming.

    Body elements are ordered by their variable-blind structure (ties broken
    by the rendered text after renaming), then variables are renamed in
    first-occurrence order.  The result is invariant under alpha-renaming
    and under reordering of structurally distinct body elements -- the two
    ways independently-authored copies of the same rule actually differ.
    It is not a full graph canonicalization (structurally identical body
    atoms whose variables interleave elsewhere can in principle still order
    differently), which is fine for sharing detection: a missed match costs
    a duplicate rule in the union, never wrong answers.
    """
    body = tuple(sorted(rule.body, key=_structure_key))
    renamed = _alpha_rename(Rule(rule.head, body))
    body = tuple(sorted(renamed.body, key=lambda element: (_structure_key(element), str(element))))
    return _alpha_rename(Rule(renamed.head, body))


def rule_fingerprint(rule: Rule) -> str:
    """Content hash of the rule's normal form."""
    return hashlib.sha256(str(normalize_rule(rule)).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ProgramSignature:
    """A program's sharing-relevant shape, computed once at registration.

    ``rules`` maps fingerprint -> normalized rule (the canonical
    representative used when building the union program, so the union is
    identical whichever tenant registered first); ``definitions`` maps each
    head predicate to the fingerprints of its defining rules;
    ``constraints`` holds the fingerprints of headless rules together with
    the predicates they touch; ``mentioned`` is every predicate occurring
    anywhere in the program.
    """

    name: str
    rules: Mapping[str, Rule]
    definitions: Mapping[str, FrozenSet[str]]
    constraints: Tuple[Tuple[str, FrozenSet[str]], ...]
    mentioned: FrozenSet[str]

    @property
    def fingerprints(self) -> FrozenSet[str]:
        return frozenset(self.rules)


def program_signature(program: Program, name: str = "") -> ProgramSignature:
    """Normalize and fingerprint every rule of ``program``."""
    rules: Dict[str, Rule] = {}
    definitions: Dict[str, set] = {}
    constraints: List[Tuple[str, FrozenSet[str]]] = []
    mentioned: set = set()
    for rule in program.rules:
        normalized = normalize_rule(rule)
        fingerprint = hashlib.sha256(str(normalized).encode("utf-8")).hexdigest()[:16]
        rules[fingerprint] = normalized
        mentioned.update(rule.predicates())
        if rule.is_constraint:
            constraints.append((fingerprint, frozenset(rule.predicates())))
            continue
        for predicate in rule.head_predicates():
            definitions.setdefault(predicate, set()).add(fingerprint)
    return ProgramSignature(
        name=name or program.name or "",
        rules=rules,
        definitions={predicate: frozenset(prints) for predicate, prints in definitions.items()},
        constraints=tuple(constraints),
        mentioned=frozenset(mentioned),
    )


def shared_fraction(first: Iterable[str], second: Iterable[str]) -> float:
    """|A ∩ B| / min(|A|, |B|) over two fingerprint sets (0.0 when empty)."""
    first_set, second_set = frozenset(first), frozenset(second)
    smaller = min(len(first_set), len(second_set))
    if not smaller:
        return 0.0
    return len(first_set & second_set) / smaller


def union_conflicts(signatures: Mapping[str, ProgramSignature]) -> List[str]:
    """Why the union of these programs would change some member's meaning.

    Returns a human-readable reason per violation (empty list = the union
    program preserves every member query's semantics under projection):

    * a predicate mentioned by query A is defined by query B with a rule A
      does not itself contain, or
    * a constraint of query B touches predicates query A mentions without A
      containing that constraint.
    """
    conflicts: List[str] = []
    items = list(signatures.items())
    for key, signature in items:
        for other_key, other in items:
            if other_key == key:
                continue
            for predicate, defining in other.definitions.items():
                if predicate not in signature.mentioned:
                    continue
                foreign = defining - signature.fingerprints
                if foreign:
                    conflicts.append(
                        f"{key!r} mentions predicate {predicate!r}, which {other_key!r} defines "
                        f"with {len(foreign)} rule(s) {key!r} does not contain -- namespace the "
                        "derived predicates of one of the two queries"
                    )
            for fingerprint, touched in other.constraints:
                if touched & signature.mentioned and fingerprint not in signature.fingerprints:
                    conflicts.append(
                        f"{other_key!r} has a constraint over {sorted(touched & signature.mentioned)} "
                        f"that {key!r} mentions but does not share -- constraints must be common to "
                        "every query whose predicates they touch"
                    )
    return conflicts
