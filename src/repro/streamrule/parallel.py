"""The parallel reasoner ``PR``: legacy facade over :class:`StreamSession`.

This is the grey box of Figure 6.  One call to :meth:`ParallelReasoner.reason`
performs, for an input window ``W``:

1. *partitioning handler* -- split ``W`` into sub-windows with the configured
   partitioner (Algorithm 1 for dependency-based splitting, or the random
   baseline),
2. *reasoner pool* -- evaluate every non-empty sub-window against a full copy
   of the program with the reasoner ``R``,
3. *combining handler* -- union one answer set per partition
   (``Ans_P(W) = { U ans_i }``).

Since the backend redesign this class is a thin deprecated shim: the actual
partition/dispatch/combine engine lives in
:class:`~repro.streamrule.session.StreamSession`, and *where* the partitions
run is decided by a pluggable
:class:`~repro.streamrule.backends.ExecutionBackend` (inline, thread pool,
pinned process pool, loopback socket) instead of the old
:class:`~repro.streamrule.backends.ExecutionMode` switch.  Existing call
sites keep working unchanged -- constructing with ``mode=`` maps the mode to
its backend (and warns once); new call sites should pass ``backend=``
directly or use the session::

    with ParallelReasoner(reasoner, partitioner, backend=ProcessPoolBackend(4)) as pr:
        for window in windows:
            pr.reason(window)

The canonical migration table (every shim, every replacement) is
``docs/migration.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.partitioner import Partitioner
from repro.streaming.window import WindowDelta
from repro.streamrule.backends import ExecutionBackend, ExecutionMode, backend_for_mode
from repro.streamrule.compat import warn_once
from repro.streamrule.reasoner import Reasoner, WindowInput
from repro.streamrule.session import ParallelResult, StreamSession

__all__ = ["ExecutionMode", "ParallelReasoner", "ParallelResult"]


class ParallelReasoner:
    """The reasoner ``PR`` of the extended StreamRule (deprecated shim).

    When its backend owns workers (process pool, loopback sockets) the
    instance is a context manager::

        with ParallelReasoner(reasoner, partitioner, mode=ExecutionMode.PROCESSES) as pr:
            for window in windows:
                pr.reason(window)
    """

    def __init__(
        self,
        reasoner: Reasoner,
        partitioner: Partitioner,
        mode: Optional[ExecutionMode] = None,
        max_workers: Optional[int] = None,
        max_combinations: Optional[int] = 64,
        backend: Optional[ExecutionBackend] = None,
    ):
        if backend is not None and mode is not None:
            raise ValueError("pass either a backend or a (deprecated) mode, not both")
        if backend is not None and max_workers is not None:
            raise ValueError(
                "max_workers only applies when a mode is mapped to a backend; "
                "size the passed backend directly (e.g. ProcessPoolBackend(max_workers=4))"
            )
        if backend is None:
            if mode is not None:
                warn_once(
                    "execution-mode",
                    "ExecutionMode is deprecated; construct the equivalent ExecutionBackend "
                    "(InlineBackend/ThreadPoolBackend/ProcessPoolBackend/LoopbackSocketBackend) "
                    "and pass it as backend= (or drive a StreamSession directly).",
                )
            backend = backend_for_mode(mode or ExecutionMode.SIMULATED_PARALLEL, max_workers)
        self.reasoner = reasoner
        self.partitioner = partitioner
        self.mode = mode
        self.max_workers = max_workers
        self.max_combinations = max_combinations
        self._session = StreamSession(
            reasoner,
            partitioner=partitioner,
            backend=backend,
            max_combinations=max_combinations,
        )

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend evaluating this reasoner's partitions."""
        return self._session.backend

    @property
    def session(self) -> StreamSession:
        """The session this shim delegates to."""
        return self._session

    @property
    def _process_pools(self):
        """Legacy introspection: the pinned executor list of a process backend."""
        return getattr(self._session.backend, "pools", None)

    # ------------------------------------------------------------------ #
    # Worker-pool lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ParallelReasoner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the backend's workers (no-op when none are running).

        Idempotent; a later window lazily restarts the backend with the
        reasoner's state at that moment.
        """
        self._session.close()

    # ------------------------------------------------------------------ #
    def reason(self, window: WindowInput, *, delta: Optional[WindowDelta] = None) -> ParallelResult:
        """Partition, evaluate on the backend, and combine one input window.

        Deprecated shim over :meth:`StreamSession.evaluate_window` (see that
        method for the delta semantics); prefer driving a session, which
        also takes care of windowing and output translation.
        """
        warn_once(
            "parallel-reason",
            "ParallelReasoner.reason is deprecated; use StreamSession.evaluate_window "
            "(or the session's push/results facade) instead.",
        )
        return self._session.evaluate_window(window, delta=delta)
