"""The parallel reasoner ``PR``: partitioning handler, reasoner pool, combining handler.

This is the grey box of Figure 6.  One call to :meth:`ParallelReasoner.reason`
performs, for an input window ``W``:

1. *partitioning handler* -- split ``W`` into sub-windows with the configured
   partitioner (Algorithm 1 for dependency-based splitting, or the random
   baseline),
2. *reasoner pool* -- evaluate every non-empty sub-window against a full copy
   of the program with the reasoner ``R``,
3. *combining handler* -- union one answer set per partition
   (``Ans_P(W) = { U ans_i }``).

Empty sub-windows are filtered out before evaluation: they contribute only
the program's own consequences, which every other partition already derives,
and for non-monotonic programs they would multiply the combination product
with spurious picks.  When *every* sub-window is empty (an empty window, or a
plan that matches none of the window's predicates) one empty partition is
evaluated so ``Ans_P(W)`` degenerates to the answer sets of the program
itself -- exactly what the unpartitioned reasoner returns for that window.

Execution modes
---------------
The paper runs the partition reasoners concurrently on an 8-core machine, so
the reported latency for ``PR`` is essentially::

    partitioning + max_i(latency of partition i) + combining

Four execution modes are offered; all return identical answer sets and
differ only in how the partitions are evaluated and how latency is reported:

* ``ExecutionMode.SIMULATED_PARALLEL`` (default) -- evaluate the partitions
  sequentially but report the latency formula above, i.e. the latency an
  ideally parallel deployment (the paper's) would observe.  All answers are
  exact; only the reported latency models the concurrency.
* ``ExecutionMode.THREADS`` -- a real thread pool (useful when the solver
  releases the GIL or for I/O-bound format processing); latency is the
  measured wall-clock of the evaluation phase.  Python's GIL prevents
  genuine thread-level speed-up for the pure-Python CPU-bound solver.
* ``ExecutionMode.PROCESSES`` -- true multi-core execution on a persistent
  pool of worker processes.  Workers are initialized once with the pickled
  reasoner (program, predicate sets, format processor) and reused across
  windows; each window's partitions are dispatched as atom batches.  Workers
  inherit the reasoner's grounding-cache configuration (a cached reasoner
  yields one private cache per worker; an uncached one stays uncached,
  keeping the modes comparable).  The pool is organised as one
  single-worker :class:`~concurrent.futures.ProcessPoolExecutor` per slot
  and partition ``i`` is always dispatched to slot ``i % workers`` --
  *worker pinning*: consecutive windows of the same partition track land in
  the same process, so that worker's grounding cache sees the track's
  previous instantiation and can serve exact hits or delta repairs from the
  first recurrence (the ROADMAP's per-worker scheduling item).  Latency is
  the measured wall-clock of the evaluation phase.  The pool is created
  lazily on the first ``PROCESSES`` window and bound to the reasoner at
  that moment; call :meth:`ParallelReasoner.close` (or use the reasoner as
  a context manager) to release the workers.
* ``ExecutionMode.SERIAL`` -- plain sequential evaluation with summed
  latency (the pessimistic bound; useful for ablations).
"""

from __future__ import annotations

import enum
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.asp.syntax.atoms import Atom
from repro.core.combining import combine_answer_sets
from repro.core.partitioner import Partitioner
from repro.streaming.triples import Triple
from repro.streaming.window import WindowDelta
from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics, Timer
from repro.streamrule.reasoner import (
    Reasoner,
    ReasonerResult,
    WindowInput,
    initialize_worker_reasoner,
    ping_worker,
    reason_partition_task,
)

__all__ = ["ExecutionMode", "ParallelReasoner", "ParallelResult"]

AnswerSet = FrozenSet[Atom]


class ExecutionMode(enum.Enum):
    """How the partition reasoners are executed and how latency is reported."""

    SIMULATED_PARALLEL = "simulated_parallel"
    THREADS = "threads"
    PROCESSES = "processes"
    SERIAL = "serial"


#: Modes whose reported latency is the measured wall-clock of the evaluation.
_WALL_CLOCK_MODES = frozenset({ExecutionMode.THREADS, ExecutionMode.PROCESSES})


@dataclass(frozen=True)
class ParallelResult:
    """Combined answers of one window plus the evaluation record."""

    answers: Tuple[AnswerSet, ...]
    metrics: ReasonerMetrics
    partition_results: Tuple[ReasonerResult, ...]

    @property
    def satisfiable(self) -> bool:
        return bool(self.answers)


class ParallelReasoner:
    """The reasoner ``PR`` of the extended StreamRule.

    In ``ExecutionMode.PROCESSES`` the instance owns a persistent worker
    pool; it is a context manager, so the idiomatic form is::

        with ParallelReasoner(reasoner, partitioner, mode=ExecutionMode.PROCESSES) as pr:
            for window in windows:
                pr.reason(window)
    """

    def __init__(
        self,
        reasoner: Reasoner,
        partitioner: Partitioner,
        mode: ExecutionMode = ExecutionMode.SIMULATED_PARALLEL,
        max_workers: Optional[int] = None,
        max_combinations: Optional[int] = 64,
    ):
        self.reasoner = reasoner
        self.partitioner = partitioner
        self.mode = mode
        self.max_workers = max_workers
        self.max_combinations = max_combinations
        # One single-worker executor per slot; partition track i is pinned to
        # slot i % workers so worker-local grounding caches keep seeing the
        # same track (exact hits and delta repairs survive across windows).
        self._process_pools: Optional[List[ProcessPoolExecutor]] = None

    # ------------------------------------------------------------------ #
    # Worker-pool lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ParallelReasoner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (no-op unless PROCESSES ran).

        Idempotent; a later ``PROCESSES`` window lazily recreates the pool
        with the reasoner's state at that moment.
        """
        if self._process_pools is not None:
            for pool in self._process_pools:
                pool.shutdown(wait=True)
            self._process_pools = None

    def _ensure_process_pools(self) -> List[ProcessPoolExecutor]:
        """Create the persistent pinned worker pools on first use.

        Every worker is initialized exactly once with the pickled reasoner
        (see :func:`initialize_worker_reasoner`), so per-window dispatch only
        ships the partition's atom batch and receives the partition result.
        One single-worker executor per slot makes the pinning deterministic:
        submitting to slot ``s`` always runs in slot ``s``'s process.
        """
        if self._process_pools is None:
            workers = self.max_workers or os.cpu_count() or 1
            payload = pickle.dumps(self.reasoner)
            pools = [
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=initialize_worker_reasoner,
                    initargs=(payload,),
                )
                for _ in range(workers)
            ]
            # Executors fork their worker lazily on the first submit; ping
            # every slot so all spawns + reasoner unpickling happen here
            # (pool setup) rather than inside the first window's measured
            # evaluation.
            pings = [pool.submit(ping_worker) for pool in pools]
            for ping in pings:
                ping.result()
            self._process_pools = pools
        return self._process_pools

    # ------------------------------------------------------------------ #
    def reason(self, window: WindowInput, *, delta: Optional[WindowDelta] = None) -> ParallelResult:
        """Partition, evaluate in parallel, and combine one input window.

        Following Figure 6, the partitioning handler splits the *filtered
        stream* directly (triples and atoms both expose their predicate), and
        each partition's reasoner performs its own data format translation --
        so the transformation cost is parallelised along with the solving.

        ``delta`` signals that this window is the next slide of an
        overlapping stream.  When the partitioner is *deterministic* (the
        same item always lands in the same partitions), window-to-window
        continuity holds per partition as well, so every partition reasoner
        is evaluated incrementally on its own track: partition ``i``'s
        grounding delta-repairs partition ``i``'s previous instantiation.
        Non-deterministic partitioners (the random baseline) ignore the
        hint -- their layouts reshuffle every window, so there is no
        continuity to exploit.
        """
        if self.mode is ExecutionMode.PROCESSES:
            # One-time pool setup (pickling the reasoner, spawning workers)
            # must not be billed to the first window's evaluation phase.
            self._ensure_process_pools()

        incremental = (
            delta is not None
            and delta.carries_over
            and getattr(self.partitioner, "deterministic", False)
        )

        with Timer() as partitioning_timer:
            partitions = self.partitioner.partition(window)

        with Timer() as evaluation_timer:
            partition_results = self._evaluate_partitions(partitions, incremental)

        with Timer() as combining_timer:
            combined = combine_answer_sets(
                [result.answers for result in partition_results],
                max_combinations=self.max_combinations,
            )

        breakdown = self._latency(partition_results)
        breakdown.partitioning_seconds += partitioning_timer.seconds
        breakdown.combining_seconds += combining_timer.seconds

        if self.mode in _WALL_CLOCK_MODES:
            # The docstring promise for THREADS/PROCESSES: latency is what a
            # stopwatch around the evaluation phase actually measured.
            latency_seconds = partitioning_timer.seconds + evaluation_timer.seconds + combining_timer.seconds
        else:
            latency_seconds = breakdown.total_seconds

        metrics = ReasonerMetrics(
            window_size=len(window),
            latency_seconds=latency_seconds,
            breakdown=breakdown,
            partition_sizes=[len(partition) for partition in partitions],
            answer_count=len(combined),
            duplication_ratio=(
                (sum(len(partition) for partition in partitions) - len(window)) / len(window) if window else 0.0
            ),
            cache_hits=sum(result.metrics.cache_hits for result in partition_results),
            cache_misses=sum(result.metrics.cache_misses for result in partition_results),
            delta_repairs=sum(result.metrics.delta_repairs for result in partition_results),
            repair_size=sum(result.metrics.repair_size for result in partition_results),
            repair_rules_changed=sum(result.metrics.repair_rules_changed for result in partition_results),
            evaluation_wall_seconds=evaluation_timer.seconds,
            worker_wall_seconds=[result.metrics.latency_seconds for result in partition_results],
        )
        return ParallelResult(
            answers=tuple(combined),
            metrics=metrics,
            partition_results=tuple(partition_results),
        )

    # ------------------------------------------------------------------ #
    def _evaluate_partitions(
        self, partitions: Sequence[Sequence[Atom]], incremental: bool = False
    ) -> List[ReasonerResult]:
        """Evaluate the non-empty partitions according to the execution mode.

        All modes evaluate the same batch list, which is what makes them
        answer-set-equivalent; they differ only in *where* the batches run.
        Each batch keeps its partition index as its *track*: the stable
        identity under which the grounding caches store per-partition delta
        states (and, in PROCESSES mode, the pinning key choosing the worker
        slot).
        """
        batches = [(index, list(partition)) for index, partition in enumerate(partitions) if partition]
        if not batches:
            # Degenerate window: evaluate the program alone (see module
            # docstring) so Ans_P matches the unpartitioned reasoner.
            batches = [(0, [])]
        if self.mode is ExecutionMode.THREADS:
            workers = min(self.max_workers or len(batches), len(batches))

            def evaluate(entry: Tuple[int, List[Atom]]) -> ReasonerResult:
                track, batch = entry
                return self.reasoner.reason(batch, incremental=incremental, track=track)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(evaluate, batches))
        if self.mode is ExecutionMode.PROCESSES:
            pools = self._ensure_process_pools()
            futures = [
                pools[track % len(pools)].submit(reason_partition_task, batch, incremental, track)
                for track, batch in batches
            ]
            return [future.result() for future in futures]
        return [self.reasoner.reason(batch, incremental=incremental, track=track) for track, batch in batches]

    def _latency(self, partition_results: Sequence[ReasonerResult]) -> LatencyBreakdown:
        """Aggregate the partition latencies according to the execution mode."""
        if not partition_results:
            return LatencyBreakdown()
        if self.mode is ExecutionMode.SERIAL:
            merged = LatencyBreakdown()
            for result in partition_results:
                merged = merged.merged_with(result.metrics.breakdown)
            return merged
        # Concurrent modes: the per-stage breakdown is bounded by the slowest
        # partition (they run -- actually or notionally -- at the same time).
        slowest = max(partition_results, key=lambda result: result.metrics.breakdown.total_seconds)
        breakdown = slowest.metrics.breakdown
        return LatencyBreakdown(
            transformation_seconds=breakdown.transformation_seconds,
            grounding_seconds=breakdown.grounding_seconds,
            solving_seconds=breakdown.solving_seconds,
        )
