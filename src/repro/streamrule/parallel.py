"""The parallel reasoner ``PR``: partitioning handler, reasoner pool, combining handler.

This is the grey box of Figure 6.  One call to :meth:`ParallelReasoner.reason`
performs, for an input window ``W``:

1. *partitioning handler* -- split ``W`` into sub-windows with the configured
   partitioner (Algorithm 1 for dependency-based splitting, or the random
   baseline),
2. *reasoner pool* -- evaluate every sub-window against a full copy of the
   program with the reasoner ``R``,
3. *combining handler* -- union one answer set per partition
   (``Ans_P(W) = { U ans_i }``).

Execution modes
---------------
The paper runs the partition reasoners concurrently on an 8-core machine, so
the reported latency for ``PR`` is essentially::

    partitioning + max_i(latency of partition i) + combining

Python's GIL prevents genuine thread-level speed-up for a CPU-bound solver,
so three execution modes are offered:

* ``ExecutionMode.SIMULATED_PARALLEL`` (default) -- evaluate the partitions
  sequentially but report the latency formula above, i.e. the latency an
  ideally parallel deployment (the paper's) would observe.  All answers are
  exact; only the reported latency models the concurrency.
* ``ExecutionMode.THREADS`` -- a real thread pool (useful when the solver
  releases the GIL or for I/O-bound format processing); latency is measured
  wall-clock.
* ``ExecutionMode.SERIAL`` -- plain sequential evaluation with summed
  latency (the pessimistic bound; useful for ablations).
"""

from __future__ import annotations

import enum
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.asp.syntax.atoms import Atom
from repro.core.combining import combine_answer_sets
from repro.core.partitioner import Partitioner
from repro.streaming.triples import Triple
from repro.streamrule.metrics import LatencyBreakdown, ReasonerMetrics, Timer
from repro.streamrule.reasoner import Reasoner, ReasonerResult, WindowInput

__all__ = ["ExecutionMode", "ParallelReasoner", "ParallelResult"]

AnswerSet = FrozenSet[Atom]


class ExecutionMode(enum.Enum):
    """How the partition reasoners are executed and how latency is reported."""

    SIMULATED_PARALLEL = "simulated_parallel"
    THREADS = "threads"
    SERIAL = "serial"


@dataclass(frozen=True)
class ParallelResult:
    """Combined answers of one window plus the evaluation record."""

    answers: Tuple[AnswerSet, ...]
    metrics: ReasonerMetrics
    partition_results: Tuple[ReasonerResult, ...]

    @property
    def satisfiable(self) -> bool:
        return bool(self.answers)


class ParallelReasoner:
    """The reasoner ``PR`` of the extended StreamRule."""

    def __init__(
        self,
        reasoner: Reasoner,
        partitioner: Partitioner,
        mode: ExecutionMode = ExecutionMode.SIMULATED_PARALLEL,
        max_workers: Optional[int] = None,
        max_combinations: Optional[int] = 64,
    ):
        self.reasoner = reasoner
        self.partitioner = partitioner
        self.mode = mode
        self.max_workers = max_workers
        self.max_combinations = max_combinations

    # ------------------------------------------------------------------ #
    def reason(self, window: WindowInput) -> ParallelResult:
        """Partition, evaluate in parallel, and combine one input window.

        Following Figure 6, the partitioning handler splits the *filtered
        stream* directly (triples and atoms both expose their predicate), and
        each partition's reasoner performs its own data format translation --
        so the transformation cost is parallelised along with the solving.
        """
        with Timer() as partitioning_timer:
            partitions = self.partitioner.partition(window)

        partition_results = self._evaluate_partitions(partitions)

        with Timer() as combining_timer:
            combined = combine_answer_sets(
                [result.answers for result in partition_results],
                max_combinations=self.max_combinations,
            )

        breakdown = self._latency(partition_results)
        breakdown.partitioning_seconds += partitioning_timer.seconds
        breakdown.combining_seconds += combining_timer.seconds

        metrics = ReasonerMetrics(
            window_size=len(window),
            latency_seconds=breakdown.total_seconds,
            breakdown=breakdown,
            partition_sizes=[len(partition) for partition in partitions],
            answer_count=len(combined),
            duplication_ratio=(
                (sum(len(partition) for partition in partitions) - len(window)) / len(window) if window else 0.0
            ),
        )
        return ParallelResult(
            answers=tuple(combined),
            metrics=metrics,
            partition_results=tuple(partition_results),
        )

    # ------------------------------------------------------------------ #
    def _evaluate_partitions(self, partitions: Sequence[Sequence[Atom]]) -> List[ReasonerResult]:
        non_empty = [list(partition) for partition in partitions]
        if self.mode is ExecutionMode.THREADS:
            workers = self.max_workers or max(1, len(non_empty))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(self.reasoner.reason, non_empty))
        return [self.reasoner.reason(partition) for partition in non_empty]

    def _latency(self, partition_results: Sequence[ReasonerResult]) -> LatencyBreakdown:
        """Aggregate the partition latencies according to the execution mode."""
        if not partition_results:
            return LatencyBreakdown()
        if self.mode is ExecutionMode.SERIAL:
            merged = LatencyBreakdown()
            for result in partition_results:
                merged = merged.merged_with(result.metrics.breakdown)
            return merged
        # SIMULATED_PARALLEL and THREADS: the window's latency is bounded by
        # the slowest partition (they run concurrently).
        slowest = max(partition_results, key=lambda result: result.metrics.breakdown.total_seconds)
        breakdown = slowest.metrics.breakdown
        return LatencyBreakdown(
            transformation_seconds=breakdown.transformation_seconds,
            grounding_seconds=breakdown.grounding_seconds,
            solving_seconds=breakdown.solving_seconds,
        )
