"""repro -- reproduction of "Towards Scalable Non-Monotonic Stream Reasoning
via Input Dependency Analysis" (Pham, Mileo, Ali; ICDE 2017).

Subpackages
-----------
``repro.asp``
    Pure-Python ASP engine (parser, grounder, stable-model solver) standing
    in for Clingo 4.3.0.
``repro.graph``
    Graph substrate: undirected/directed graphs and Louvain modularity.
``repro.core``
    The paper's contribution: extended/input dependency graphs, the
    decomposing (duplication) process, Algorithm 1 partitioning, the
    combining handler, and the accuracy metric.
``repro.streaming``
    RDF triples, synthetic stream generators, windows, the CQELS stand-in
    and the data format processor.
``repro.streamrule``
    The (extended) StreamRule framework: reasoner ``R``, parallel reasoner
    ``PR`` and the end-to-end pipeline.
``repro.programs``
    The paper's traffic programs ``P`` and ``P'``.
``repro.experiments``
    Drivers regenerating the paper's figures and additional ablations.

Quickstart
----------
>>> from repro.programs import traffic_program, INPUT_PREDICATES
>>> from repro.core import build_input_dependency_graph, decompose, DependencyPartitioner
>>> from repro.streamrule import Reasoner, ParallelReasoner
>>> program = traffic_program()
>>> graph = build_input_dependency_graph(program, INPUT_PREDICATES)
>>> plan = decompose(graph).plan
>>> reasoner = ParallelReasoner(Reasoner(program, INPUT_PREDICATES), DependencyPartitioner(plan))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
