"""A simple directed graph with reachability queries."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

__all__ = ["DirectedGraph"]

Node = Hashable


class DirectedGraph:
    """Directed graph (successor/predecessor adjacency sets)."""

    def __init__(self) -> None:
        self._successors: Dict[Node, Set[Node]] = {}
        self._predecessors: Dict[Node, Set[Node]] = {}

    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> None:
        self._successors.setdefault(node, set())
        self._predecessors.setdefault(node, set())

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, source: Node, target: Node) -> None:
        self.add_node(source)
        self.add_node(target)
        self._successors[source].add(target)
        self._predecessors[target].add(source)

    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[Node]:
        return list(self._successors)

    def __contains__(self, node: Node) -> bool:
        return node in self._successors

    def __len__(self) -> int:
        return len(self._successors)

    def has_edge(self, source: Node, target: Node) -> bool:
        return target in self._successors.get(source, set())

    def successors(self, node: Node) -> Set[Node]:
        return set(self._successors.get(node, set()))

    def predecessors(self, node: Node) -> Set[Node]:
        return set(self._predecessors.get(node, set()))

    def edges(self) -> List[Tuple[Node, Node]]:
        return [(source, target) for source, targets in self._successors.items() for target in targets]

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._successors.values())

    # ------------------------------------------------------------------ #
    def descendants(self, node: Node, include_self: bool = False) -> Set[Node]:
        """Nodes reachable from ``node`` via directed edges."""
        reached: Set[Node] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for successor in self._successors.get(current, set()):
                if successor not in reached:
                    reached.add(successor)
                    frontier.append(successor)
        if include_self:
            reached.add(node)
        return reached

    def ancestors(self, node: Node, include_self: bool = False) -> Set[Node]:
        """Nodes from which ``node`` is reachable."""
        reached: Set[Node] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for predecessor in self._predecessors.get(current, set()):
                if predecessor not in reached:
                    reached.add(predecessor)
                    frontier.append(predecessor)
        if include_self:
            reached.add(node)
        return reached

    def has_path(self, source: Node, target: Node) -> bool:
        """True when a (possibly empty) directed path connects source to target."""
        if source == target:
            return True
        return target in self.descendants(source)

    def __repr__(self) -> str:
        return f"DirectedGraph(nodes={len(self)}, edges={self.edge_count()})"
