"""A simple undirected graph with optional edge weights and self-loops."""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

__all__ = ["UndirectedGraph"]

Node = Hashable


class UndirectedGraph:
    """Undirected graph (adjacency-set representation).

    Supports self-loops, which the input dependency graph uses to mark
    predicates whose ground atoms depend on each other (Definition 2,
    condition iii of the paper).
    """

    def __init__(self) -> None:
        self._adjacency: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> None:
        self._adjacency.setdefault(node, {})

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, first: Node, second: Node, weight: float = 1.0) -> None:
        """Add an undirected edge (or a self-loop when ``first == second``)."""
        self.add_node(first)
        self.add_node(second)
        self._adjacency[first][second] = weight
        self._adjacency[second][first] = weight

    def remove_edge(self, first: Node, second: Node) -> None:
        self._adjacency.get(first, {}).pop(second, None)
        self._adjacency.get(second, {}).pop(first, None)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[Node]:
        return list(self._adjacency)

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def has_edge(self, first: Node, second: Node) -> bool:
        return second in self._adjacency.get(first, {})

    def has_self_loop(self, node: Node) -> bool:
        return self.has_edge(node, node)

    def weight(self, first: Node, second: Node) -> float:
        return self._adjacency.get(first, {}).get(second, 0.0)

    def neighbors(self, node: Node) -> Set[Node]:
        return set(self._adjacency.get(node, {}))

    def degree(self, node: Node, weighted: bool = False) -> float:
        """Degree of ``node``; a self-loop counts twice, as usual."""
        adjacency = self._adjacency.get(node, {})
        if weighted:
            total = sum(adjacency.values())
            if node in adjacency:
                total += adjacency[node]
            return total
        return len(adjacency) + (1 if node in adjacency else 0)

    def edges(self) -> List[Tuple[Node, Node, float]]:
        """Each undirected edge exactly once (self-loops included)."""
        seen: Set[FrozenSet[Node]] = set()
        result: List[Tuple[Node, Node, float]] = []
        for first, adjacency in self._adjacency.items():
            for second, weight in adjacency.items():
                key = frozenset((first, second))
                if key in seen:
                    continue
                seen.add(key)
                result.append((first, second, weight))
        return result

    def edge_count(self) -> int:
        return len(self.edges())

    def total_weight(self) -> float:
        """Sum of edge weights (each edge once)."""
        return sum(weight for _, _, weight in self.edges())

    # ------------------------------------------------------------------ #
    # Algorithms
    # ------------------------------------------------------------------ #
    def connected_components(self) -> List[Set[Node]]:
        """Connected components, each as a set of nodes (deterministic order)."""
        visited: Set[Node] = set()
        components: List[Set[Node]] = []
        for start in self._adjacency:
            if start in visited:
                continue
            component: Set[Node] = set()
            frontier = [start]
            while frontier:
                node = frontier.pop()
                if node in component:
                    continue
                component.add(node)
                frontier.extend(neighbor for neighbor in self._adjacency[node] if neighbor not in component)
            visited.update(component)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True when every pair of nodes is joined by a path (empty graph counts as connected)."""
        components = self.connected_components()
        return len(components) <= 1

    def subgraph(self, nodes: Iterable[Node]) -> "UndirectedGraph":
        wanted = set(nodes)
        result = UndirectedGraph()
        for node in wanted:
            if node in self._adjacency:
                result.add_node(node)
        for first, second, weight in self.edges():
            if first in wanted and second in wanted:
                result.add_edge(first, second, weight)
        return result

    def copy(self) -> "UndirectedGraph":
        return self.subgraph(self.nodes)

    def edges_between(self, first_group: Iterable[Node], second_group: Iterable[Node]) -> List[Tuple[Node, Node]]:
        """Edges with one endpoint in each group (used by the duplication step)."""
        first_set, second_set = set(first_group), set(second_group)
        result: List[Tuple[Node, Node]] = []
        for first, second, _ in self.edges():
            if first in first_set and second in second_set:
                result.append((first, second))
            elif second in first_set and first in second_set:
                result.append((second, first))
        return result

    def __repr__(self) -> str:
        return f"UndirectedGraph(nodes={len(self)}, edges={self.edge_count()})"
