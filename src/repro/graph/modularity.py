"""Community detection by modularity maximisation (Louvain method).

Step 1 of the paper's decomposing process (Section II-B) "uses the
modularity algorithm [4] to decompose the input dependency graph into
disjoint subgraphs (communities)", with resolution 1.0 (footnote 8, citing
Lambiotte et al. for the resolution parameter).  This module provides:

* :func:`modularity` -- the (resolution-parameterised) Newman modularity of
  a partition, and
* :func:`louvain_communities` -- the two-phase Louvain heuristic of Blondel
  et al. 2008, made deterministic by visiting nodes in sorted order.

For the tiny predicate graphs of the paper (a handful of nodes) Louvain is
exact enough; tests cross-check results against ``networkx``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.graph.undirected import UndirectedGraph

__all__ = ["louvain_communities", "modularity"]

Node = Hashable


def modularity(graph: UndirectedGraph, communities: Sequence[Set[Node]], resolution: float = 1.0) -> float:
    """Newman modularity ``Q`` of a partition, with a resolution parameter.

    ``Q = sum_c [ L_c / m  -  resolution * (d_c / (2 m))^2 ]`` where ``L_c``
    is the weight of intra-community edges, ``d_c`` the total degree of the
    community and ``m`` the total edge weight.  Self-loops contribute weight
    once to ``L_c`` and twice to degrees, matching networkx conventions.
    """
    total_weight = graph.total_weight()
    if total_weight <= 0:
        return 0.0
    community_of: Dict[Node, int] = {}
    for index, community in enumerate(communities):
        for node in community:
            community_of[node] = index

    intra: Dict[int, float] = {index: 0.0 for index in range(len(communities))}
    degree: Dict[int, float] = {index: 0.0 for index in range(len(communities))}
    for first, second, weight in graph.edges():
        first_community = community_of.get(first)
        second_community = community_of.get(second)
        if first_community is None or second_community is None:
            continue
        if first_community == second_community:
            intra[first_community] += weight
    for node in graph.nodes:
        community = community_of.get(node)
        if community is None:
            continue
        degree[community] += graph.degree(node, weighted=True)

    quality = 0.0
    for index in range(len(communities)):
        quality += intra[index] / total_weight
        quality -= resolution * (degree[index] / (2.0 * total_weight)) ** 2
    return quality


def louvain_communities(
    graph: UndirectedGraph,
    resolution: float = 1.0,
    max_levels: int = 20,
) -> List[Set[Node]]:
    """Louvain community detection (deterministic node order).

    Returns a partition of the graph's nodes into communities.  Isolated
    nodes each form their own community.  An empty graph yields ``[]``.
    """
    if len(graph) == 0:
        return []

    # Current mapping original node -> community label across levels.
    membership: Dict[Node, int] = {node: index for index, node in enumerate(sorted(graph.nodes, key=str))}

    working_graph = _as_weighted(graph)
    node_to_original: Dict[int, Set[Node]] = {
        membership[node]: {node} for node in graph.nodes
    }

    for _ in range(max_levels):
        local = _one_level(working_graph, resolution)
        improved = local.improved
        # Re-label communities densely.
        communities = sorted({community for community in local.community_of.values()})
        relabel = {community: index for index, community in enumerate(communities)}
        community_of = {node: relabel[community] for node, community in local.community_of.items()}

        # Update original-node membership.
        new_node_to_original: Dict[int, Set[Node]] = {}
        for node, community in community_of.items():
            new_node_to_original.setdefault(community, set()).update(node_to_original[node])
        node_to_original = new_node_to_original

        if not improved:
            break
        working_graph = _aggregate(working_graph, community_of)

    return [node_to_original[community] for community in sorted(node_to_original)]


# --------------------------------------------------------------------------- #
# Internal helpers
# --------------------------------------------------------------------------- #
class _WeightedGraph:
    """Internal weighted graph over integer nodes with self-loop weights."""

    def __init__(self) -> None:
        self.adjacency: Dict[int, Dict[int, float]] = {}
        self.self_loops: Dict[int, float] = {}

    def add_node(self, node: int) -> None:
        self.adjacency.setdefault(node, {})
        self.self_loops.setdefault(node, 0.0)

    def add_edge(self, first: int, second: int, weight: float) -> None:
        self.add_node(first)
        self.add_node(second)
        if first == second:
            self.self_loops[first] += weight
            return
        self.adjacency[first][second] = self.adjacency[first].get(second, 0.0) + weight
        self.adjacency[second][first] = self.adjacency[second].get(first, 0.0) + weight

    def degree(self, node: int) -> float:
        return sum(self.adjacency[node].values()) + 2.0 * self.self_loops[node]

    def total_weight(self) -> float:
        inter = sum(sum(weights.values()) for weights in self.adjacency.values()) / 2.0
        return inter + sum(self.self_loops.values())

    @property
    def nodes(self) -> List[int]:
        return list(self.adjacency)


class _LevelResult:
    def __init__(self, community_of: Dict[int, int], improved: bool):
        self.community_of = community_of
        self.improved = improved


def _as_weighted(graph: UndirectedGraph) -> _WeightedGraph:
    ordered = sorted(graph.nodes, key=str)
    index_of = {node: index for index, node in enumerate(ordered)}
    weighted = _WeightedGraph()
    for node in ordered:
        weighted.add_node(index_of[node])
    for first, second, weight in graph.edges():
        weighted.add_edge(index_of[first], index_of[second], weight)
    return weighted


def _one_level(graph: _WeightedGraph, resolution: float) -> _LevelResult:
    """Louvain local-moving phase on ``graph``."""
    total_weight = graph.total_weight()
    community_of: Dict[int, int] = {node: node for node in graph.nodes}
    community_degree: Dict[int, float] = {node: graph.degree(node) for node in graph.nodes}
    node_degree: Dict[int, float] = {node: graph.degree(node) for node in graph.nodes}

    if total_weight <= 0:
        return _LevelResult(community_of, improved=False)

    improved = False
    moved = True
    sweep_limit = 2 * len(graph.nodes) + 10
    sweeps = 0
    while moved and sweeps < sweep_limit:
        moved = False
        sweeps += 1
        for node in sorted(graph.nodes):
            current_community = community_of[node]
            # Weights from node to each neighbouring community.
            neighbour_weights: Dict[int, float] = {}
            for neighbor, weight in graph.adjacency[node].items():
                neighbour_weights.setdefault(community_of[neighbor], 0.0)
                neighbour_weights[community_of[neighbor]] += weight

            # Remove node from its community.
            community_degree[current_community] -= node_degree[node]

            best_community = current_community
            best_gain = 0.0
            candidates = set(neighbour_weights) | {current_community}
            for candidate in sorted(candidates):
                gain = neighbour_weights.get(candidate, 0.0) - resolution * community_degree[candidate] * node_degree[
                    node
                ] / (2.0 * total_weight)
                baseline = neighbour_weights.get(current_community, 0.0) - resolution * community_degree[
                    current_community
                ] * node_degree[node] / (2.0 * total_weight)
                relative_gain = gain - baseline
                if relative_gain > best_gain + 1e-12:
                    best_gain = relative_gain
                    best_community = candidate

            community_degree[best_community] += node_degree[node]
            if best_community != current_community:
                community_of[node] = best_community
                moved = True
                improved = True
    return _LevelResult(community_of, improved)


def _aggregate(graph: _WeightedGraph, community_of: Dict[int, int]) -> _WeightedGraph:
    """Build the coarse graph whose nodes are the communities."""
    aggregated = _WeightedGraph()
    for community in set(community_of.values()):
        aggregated.add_node(community)
    for node, loop_weight in graph.self_loops.items():
        if loop_weight:
            aggregated.add_edge(community_of[node], community_of[node], loop_weight)
    seen: Set[Tuple[int, int]] = set()
    for first, weights in graph.adjacency.items():
        for second, weight in weights.items():
            if (second, first) in seen:
                continue
            seen.add((first, second))
            aggregated.add_edge(community_of[first], community_of[second], weight)
    return aggregated
