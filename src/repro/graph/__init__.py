"""Lightweight graph substrate used by the dependency analysis.

The paper relies on two classical graph tools:

* connected components of an undirected graph (to split the input dependency
  graph into natural partitions), and
* the Louvain modularity algorithm of Blondel et al. 2008 with the
  resolution parameter of Lambiotte et al. (to decompose a *connected*
  input dependency graph into communities before duplication).

Both are implemented here without external dependencies; tests cross-check
the modularity implementation against networkx.
"""

from repro.graph.digraph import DirectedGraph
from repro.graph.modularity import louvain_communities, modularity
from repro.graph.undirected import UndirectedGraph

__all__ = [
    "DirectedGraph",
    "UndirectedGraph",
    "louvain_communities",
    "modularity",
]
