"""The extended dependency graph ``G_P`` (Definition 1).

For a logic program ``P`` the graph has one node per predicate in
``pre(P)`` and two edge sets:

* ``E_P1`` -- *undirected* edges between any two predicates occurring
  together in the body of some rule, plus a self-loop on every predicate
  that occurs in a *negative* body literal;
* ``E_P2`` -- *directed* edges from every body predicate to every head
  predicate of the same rule.

This extends the classical dependency graph of Calimeri et al. [6] (IDB
head/body edges only) with EDB-EDB relations and negative literals, which is
what makes it suitable for analysing relations between *input* data items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple

from repro.asp.syntax.program import Program
from repro.graph.digraph import DirectedGraph
from repro.graph.undirected import UndirectedGraph

__all__ = ["ExtendedDependencyGraph"]


@dataclass
class ExtendedDependencyGraph:
    """The extended dependency graph of a program (Definition 1)."""

    nodes: Set[str] = field(default_factory=set)
    #: Undirected body-body edges (E_P1), stored as frozensets of size 1 (self-loop) or 2.
    body_edges: Set[FrozenSet[str]] = field(default_factory=set)
    #: Directed body-to-head edges (E_P2).
    head_edges: Set[Tuple[str, str]] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_program(cls, program: Program) -> "ExtendedDependencyGraph":
        """Build ``G_P`` by one pass over the rules of ``P``."""
        graph = cls()
        graph.nodes.update(program.predicates())
        for rule in program.rules:
            body_predicates = [literal.predicate for literal in rule.body_literals]
            # E_P1: every unordered pair of body predicates.
            for index, first in enumerate(body_predicates):
                for second in body_predicates[index + 1 :]:
                    if first != second:
                        graph.body_edges.add(frozenset((first, second)))
            # E_P1 self-loops for negatively occurring predicates.
            for literal in rule.negative_body:
                graph.body_edges.add(frozenset((literal.predicate,)))
            # E_P2: body -> head.
            for head_predicate in rule.head_predicates():
                for body_predicate in set(body_predicates):
                    graph.head_edges.add((body_predicate, head_predicate))
        return graph

    # ------------------------------------------------------------------ #
    # Edge queries
    # ------------------------------------------------------------------ #
    def has_body_edge(self, first: str, second: str) -> bool:
        """True when ``(first, second)`` (or the self-loop) is in ``E_P1``."""
        if first == second:
            return frozenset((first,)) in self.body_edges
        return frozenset((first, second)) in self.body_edges

    def has_self_loop(self, predicate: str) -> bool:
        return frozenset((predicate,)) in self.body_edges

    def has_head_edge(self, source: str, target: str) -> bool:
        return (source, target) in self.head_edges

    def body_edge_pairs(self) -> List[Tuple[str, str]]:
        """E_P1 edges as ordered pairs (self-loops as ``(p, p)``)."""
        pairs: List[Tuple[str, str]] = []
        for edge in self.body_edges:
            members = sorted(edge)
            if len(members) == 1:
                pairs.append((members[0], members[0]))
            else:
                pairs.append((members[0], members[1]))
        return sorted(pairs)

    def self_loops(self) -> Set[str]:
        return {next(iter(edge)) for edge in self.body_edges if len(edge) == 1}

    # ------------------------------------------------------------------ #
    # Derived graph views
    # ------------------------------------------------------------------ #
    def directed_view(self) -> DirectedGraph:
        """The E_P2 edges as a :class:`DirectedGraph` (for reachability)."""
        directed = DirectedGraph()
        directed.add_nodes(self.nodes)
        for source, target in self.head_edges:
            directed.add_edge(source, target)
        return directed

    def undirected_view(self) -> UndirectedGraph:
        """The E_P1 edges as an :class:`UndirectedGraph` (self-loops included)."""
        undirected = UndirectedGraph()
        undirected.add_nodes(self.nodes)
        for edge in self.body_edges:
            members = sorted(edge)
            if len(members) == 1:
                undirected.add_edge(members[0], members[0])
            else:
                undirected.add_edge(members[0], members[1])
        return undirected

    def reaches(self, source: str, target: str) -> bool:
        """True when a (possibly empty) directed E_P2 path runs from source to target."""
        if source == target:
            return True
        return self.directed_view().has_path(source, target)

    def __repr__(self) -> str:
        return (
            f"ExtendedDependencyGraph(nodes={len(self.nodes)}, "
            f"body_edges={len(self.body_edges)}, head_edges={len(self.head_edges)})"
        )
