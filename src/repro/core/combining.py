"""The combining handler semantics.

For a window ``W`` split into partitions ``W_1 .. W_n`` the answers of the
parallel reasoner are (Section III)::

    Ans_P(W) = { ans_1 U ... U ans_n  :  ans_i in Ans_P(W_i) }

i.e. every way of picking one answer set per partition, unioned.  Because a
non-monotonic program may have several answer sets per partition, the number
of combinations can grow multiplicatively; ``max_combinations`` caps the
enumeration (the paper's evaluation programs have a single answer set per
partition, so the cap never binds there).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.asp.syntax.atoms import Atom

__all__ = ["combine_answer_sets"]

AnswerSet = FrozenSet[Atom]


def combine_answer_sets(
    per_partition_answers: Sequence[Sequence[Iterable[Atom]]],
    max_combinations: Optional[int] = 64,
) -> List[AnswerSet]:
    """Union one answer set from every partition, in all combinations.

    Parameters
    ----------
    per_partition_answers:
        For each partition, the list of its answer sets.  A partition with
        *no* answer set (inconsistent sub-program) contributes nothing and is
        skipped -- its data cannot invalidate the other partitions under the
        paper's union semantics.
    max_combinations:
        Upper bound on the number of produced combinations (``None`` for no
        bound).

    Returns
    -------
    list of frozensets of atoms, duplicates removed, deterministic order.
    """
    contributing = [list(answers) for answers in per_partition_answers if list(answers)]
    if not contributing:
        return []

    combined: List[AnswerSet] = []
    seen: Set[AnswerSet] = set()
    for combination in itertools.product(*contributing):
        union: Set[Atom] = set()
        for answer in combination:
            union.update(answer)
        frozen = frozenset(union)
        if frozen not in seen:
            seen.add(frozen)
            combined.append(frozen)
        if max_combinations is not None and len(combined) >= max_combinations:
            break
    return combined
