"""The input dependency graph ``G_P^{inpre(P)}`` (Definitions 2 and 3).

The input dependency graph is an *undirected* graph over the input
predicates ``inpre(P)``.  Two input predicates ``p`` and ``q`` are connected
when (Definition 2):

i.   ``(p, q)`` is a body-body edge of the extended dependency graph
     (they co-occur in some rule body), or
ii.  there is a single body-body edge ``(p_i, p_{i+1})`` such that ``p``
     reaches ``p_i`` and ``q`` reaches ``p_{i+1}`` along directed body->head
     edges -- i.e. two derivation chains starting from ``p`` and ``q`` meet
     inside one rule body, so ``p``-atoms and ``q``-atoms can jointly fire a
     chain of rules, or
iii. ``p = q`` and some predicate ``u`` with a self-loop (a negatively
     occurring predicate) has a direct edge ``<p, u>`` in ``E_P2`` -- the
     self-loop is inherited downwards to the input predicate feeding ``u``.

Predicates connected by an edge *depend on each other* (Definition 3) and
must be kept in the same partition so that rules fire properly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.asp.syntax.program import Program
from repro.core.extended_dependency import ExtendedDependencyGraph
from repro.graph.undirected import UndirectedGraph

__all__ = ["InputDependencyGraph", "build_input_dependency_graph"]


@dataclass
class InputDependencyGraph:
    """Undirected dependency graph over the input predicates of a program."""

    input_predicates: FrozenSet[str]
    graph: UndirectedGraph = field(default_factory=UndirectedGraph)
    #: Which Definition 2 condition introduced each edge (for explanation).
    edge_conditions: Dict[FrozenSet[str], Set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def has_edge(self, first: str, second: str) -> bool:
        return self.graph.has_edge(first, second)

    def depend_on_each_other(self, first: str, second: str) -> bool:
        """Definition 3: predicates depend on each other iff an edge joins them."""
        return self.has_edge(first, second)

    def has_self_loop(self, predicate: str) -> bool:
        return self.graph.has_self_loop(predicate)

    def self_loops(self) -> Set[str]:
        return {predicate for predicate in self.graph.nodes if self.graph.has_self_loop(predicate)}

    @property
    def nodes(self) -> List[str]:
        return self.graph.nodes

    def edges(self) -> List[Tuple[str, str]]:
        return [(first, second) for first, second, _ in self.graph.edges()]

    def is_connected(self) -> bool:
        return self.graph.is_connected()

    def connected_components(self) -> List[Set[str]]:
        """Natural subdivision of ``inpre(P)`` when the graph is disconnected."""
        return self.graph.connected_components()

    def conditions_for(self, first: str, second: str) -> Set[str]:
        """Which of Definition 2's conditions (i/ii/iii) created the edge."""
        return set(self.edge_conditions.get(frozenset((first, second)), set()))

    def __repr__(self) -> str:
        return (
            f"InputDependencyGraph(nodes={len(self.graph)}, edges={self.graph.edge_count()}, "
            f"connected={self.is_connected()})"
        )


def build_input_dependency_graph(
    program: Program,
    input_predicates: Iterable[str],
    extended: Optional[ExtendedDependencyGraph] = None,
) -> InputDependencyGraph:
    """Build ``G_P^{inpre(P)}`` for ``program`` and the given input predicates.

    Input predicates that do not occur in the program at all become isolated
    nodes (they can be partitioned freely).
    """
    inpre = frozenset(input_predicates)
    extended_graph = extended if extended is not None else ExtendedDependencyGraph.from_program(program)
    directed = extended_graph.directed_view()

    result = InputDependencyGraph(input_predicates=inpre)
    result.graph.add_nodes(sorted(inpre))

    def note_edge(first: str, second: str, condition: str) -> None:
        result.graph.add_edge(first, second)
        result.edge_conditions.setdefault(frozenset((first, second)), set()).add(condition)

    # Reachability cache: predicate -> set of nodes reachable via E_P2.
    reachable: Dict[str, Set[str]] = {}

    def reaches(source: str, target: str) -> bool:
        if source == target:
            return True
        if source not in reachable:
            reachable[source] = directed.descendants(source)
        return target in reachable[source]

    body_pairs = extended_graph.body_edge_pairs()

    ordered_inputs = sorted(inpre)
    for index, p in enumerate(ordered_inputs):
        for q in ordered_inputs[index:]:
            # Condition (i): direct co-occurrence in a rule body.
            if extended_graph.has_body_edge(p, q):
                note_edge(p, q, "i")
            # Condition (ii): derivation chains from p and q meet at a body edge.
            for left, right in body_pairs:
                if left == right:
                    continue  # self-loops are handled by conditions (i) and (iii)
                if (reaches(p, left) and reaches(q, right)) or (reaches(p, right) and reaches(q, left)):
                    if (p, q) != (left, right) and (p, q) != (right, left):
                        note_edge(p, q, "ii")
                    elif not extended_graph.has_body_edge(p, q):
                        note_edge(p, q, "ii")
                    break

    # Condition (iii): inherited self-loops.
    for predicate in ordered_inputs:
        for looped in extended_graph.self_loops():
            if extended_graph.has_head_edge(predicate, looped):
                note_edge(predicate, predicate, "iii")
                break

    return result
