"""Static validation of partitioning plans (towards the paper's correctness proof).

The paper's conclusions state: "we believe that due to the definition of the
input dependency graph, the accuracy of the answers can be guaranteed.
Therefore, providing a proof of correctness of answers is also in our next
step."  This module implements the checkable sufficient condition behind
that belief:

    a partitioning plan is *dependency-safe* for an input dependency graph
    when every edge of the graph (including self-loops) lies entirely inside
    at least one community.

If the plan is dependency-safe, any two input predicates that can jointly
fire a (chain of) rule(s) are always co-located in some partition, so every
rule instance derivable from the whole window is derivable in at least one
partition, and the combining handler's union recovers the unpartitioned
answers (for programs with a single answer set this gives accuracy 1.0;
tests exercise this empirically).

Plans produced by :func:`repro.core.decomposition.decompose` are
dependency-safe by construction for disconnected graphs (connected
components) and remain safe after duplication only when the duplicated
boundary covers every cross-community edge -- which :func:`validate_plan`
verifies rather than assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.input_dependency import InputDependencyGraph
from repro.core.plan import PartitioningPlan

__all__ = ["PlanValidationReport", "validate_plan"]


@dataclass(frozen=True)
class PlanValidationReport:
    """Outcome of validating a plan against an input dependency graph."""

    is_dependency_safe: bool
    #: Edges of the graph that no single community covers (empty when safe).
    violated_edges: Tuple[Tuple[str, str], ...]
    #: Input predicates missing from the plan entirely (covered only through
    #: the plan's unknown-predicate policy).
    unassigned_predicates: Tuple[str, ...]
    #: Predicates copied into more than one community.
    duplicated_predicates: Tuple[str, ...]

    def describe(self) -> str:
        """Human-readable summary."""
        lines = [
            "dependency-safe" if self.is_dependency_safe else "NOT dependency-safe",
        ]
        if self.violated_edges:
            rendered = ", ".join(f"({first}, {second})" for first, second in self.violated_edges)
            lines.append(f"  split dependency edges: {rendered}")
        if self.unassigned_predicates:
            lines.append("  unassigned input predicates: " + ", ".join(self.unassigned_predicates))
        if self.duplicated_predicates:
            lines.append("  duplicated predicates: " + ", ".join(self.duplicated_predicates))
        return "\n".join(lines)


def validate_plan(graph: InputDependencyGraph, plan: PartitioningPlan) -> PlanValidationReport:
    """Check whether ``plan`` keeps every dependency of ``graph`` together.

    An edge ``(p, q)`` is *covered* when some community receives both ``p``
    and ``q`` (for broadcast-policy plans, predicates absent from the plan
    are treated as belonging to every community, which trivially covers
    them).  Self-loops are always covered by predicate-level partitioning --
    the atoms of one predicate are never split -- and are therefore not
    flagged.
    """
    violated: List[Tuple[str, str]] = []
    for first, second in sorted(graph.edges()):
        if first == second:
            continue  # self-loops are kept together by predicate-level plans
        first_communities = plan.find_communities(first)
        second_communities = plan.find_communities(second)
        if not (first_communities & second_communities):
            violated.append((first, second))

    unassigned = tuple(
        sorted(predicate for predicate in graph.nodes if predicate not in plan.predicates)
    )
    return PlanValidationReport(
        is_dependency_safe=not violated,
        violated_edges=tuple(violated),
        unassigned_predicates=unassigned,
        duplicated_predicates=tuple(sorted(plan.duplicated_predicates)),
    )
