"""Input dependency analysis -- the paper's primary contribution.

The package follows Section II and III of the paper:

* :mod:`repro.core.extended_dependency` -- the extended dependency graph
  ``G_P`` (Definition 1) over *all* predicates of a program, with undirected
  body-body edges (``E_P1``) and directed body-head edges (``E_P2``).
* :mod:`repro.core.input_dependency` -- the input dependency graph
  ``G_P^{inpre(P)}`` (Definitions 2 and 3) over the input predicates only.
* :mod:`repro.core.decomposition` -- the decomposing (duplication) process
  that turns the input dependency graph into a :class:`PartitioningPlan`,
  using connected components when the graph is disconnected and Louvain
  modularity plus boundary-node duplication otherwise.
* :mod:`repro.core.plan` -- the partitioning plan data structure (predicate
  -> community ids).
* :mod:`repro.core.partitioner` -- Algorithm 1 (dependency-aware window
  partitioning) and the random-partitioning baseline of [12].
* :mod:`repro.core.combining` -- the combining handler semantics
  ``Ans_P(W) = { U ans_i }``.
* :mod:`repro.core.accuracy` -- the non-monotonic accuracy metric of
  Section III.
"""

from repro.core.accuracy import accuracy_of_answer, accuracy_of_answers, mean_accuracy
from repro.core.combining import combine_answer_sets
from repro.core.decomposition import DecompositionResult, decompose
from repro.core.extended_dependency import ExtendedDependencyGraph
from repro.core.input_dependency import InputDependencyGraph, build_input_dependency_graph
from repro.core.partitioner import (
    DependencyPartitioner,
    HashPartitioner,
    Partitioner,
    RandomPartitioner,
    SinglePartitioner,
)
from repro.core.plan import PartitioningPlan
from repro.core.validation import PlanValidationReport, validate_plan

__all__ = [
    "PlanValidationReport",
    "validate_plan",
    "DecompositionResult",
    "DependencyPartitioner",
    "ExtendedDependencyGraph",
    "HashPartitioner",
    "InputDependencyGraph",
    "PartitioningPlan",
    "Partitioner",
    "RandomPartitioner",
    "SinglePartitioner",
    "accuracy_of_answer",
    "accuracy_of_answers",
    "build_input_dependency_graph",
    "combine_answer_sets",
    "decompose",
    "mean_accuracy",
]
