"""Window partitioners: Algorithm 1 and the random baseline.

A partitioner splits an input window ``W`` (a sequence of ground atoms) into
sub-windows ``W_1 .. W_n`` that the parallel reasoner ``PR`` evaluates with
independent copies of the program.

* :class:`DependencyPartitioner` -- the paper's Algorithm 1: group the items
  by predicate, look up each group's communities in the partitioning plan,
  and copy the group's items into every matching partition (so duplicated
  predicates land in several partitions).
* :class:`RandomPartitioner` -- the baseline of Germano et al. [12]: assign
  every item to one of ``k`` chunks uniformly at random, ignoring
  dependencies.
* :class:`HashPartitioner` -- a deterministic variant of random partitioning
  (hash of the ground atom modulo ``k``); useful for reproducible ablations.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Sequence

from repro.asp.syntax.atoms import Atom
from repro.core.plan import PartitioningPlan

__all__ = [
    "DependencyPartitioner",
    "HashPartitioner",
    "Partitioner",
    "RandomPartitioner",
    "SinglePartitioner",
]

#: A window is a sequence of data items; both ASP ground atoms and RDF
#: triples qualify (the partitioners only need the item's ``predicate``).
Window = Sequence[Atom]


class Partitioner(abc.ABC):
    """Interface of every window partitioner."""

    #: Whether the partitioner is a deterministic function of each item: the
    #: same item always lands in the same partition(s), independent of the
    #: rest of the window.  Deterministic layouts preserve window-to-window
    #: continuity per partition, which is what lets the parallel reasoner
    #: propagate sliding-window deltas down to per-partition delta-grounding.
    deterministic: bool = False

    @abc.abstractmethod
    def partition(self, window: Window) -> List[List[Atom]]:
        """Split ``window`` into sub-windows (some may be empty)."""

    @property
    @abc.abstractmethod
    def partition_count(self) -> int:
        """Number of sub-windows produced."""

    def duplication_ratio(self, window: Window) -> float:
        """Fraction of extra items introduced by duplication (0.0 = none)."""
        if not window:
            return 0.0
        total = sum(len(part) for part in self.partition(window))
        return max(0.0, (total - len(window)) / len(window))


class SinglePartitioner(Partitioner):
    """The trivial layout: the whole window as one partition.

    This is how the unpartitioned reasoner ``R`` fits the partition/combine
    machinery -- a :class:`~repro.streamrule.session.StreamSession` without a
    partitioner degenerates to exactly ``R``'s answers.
    """

    deterministic = True  # every item always lands in partition 0

    @property
    def partition_count(self) -> int:
        return 1

    def partition(self, window: Window) -> List[List[Atom]]:
        return [list(window)]


class DependencyPartitioner(Partitioner):
    """Algorithm 1: dependency-directed partitioning using a plan."""

    deterministic = True  # predicate -> communities is a fixed mapping

    def __init__(self, plan: PartitioningPlan):
        self._plan = plan

    @property
    def plan(self) -> PartitioningPlan:
        return self._plan

    @property
    def partition_count(self) -> int:
        return self._plan.community_count

    def partition(self, window: Window) -> List[List[Atom]]:
        partitions: List[List[Atom]] = [[] for _ in range(self._plan.community_count)]
        # Line 3 of Algorithm 1: group items by predicate.
        groups = self.group(window)
        for predicate, items in groups.items():
            # Line 5: find the communities of this predicate group.
            communities = self._plan.find_communities(predicate)
            # Lines 6-8: add the whole group to every matching partition.
            for community in communities:
                partitions[community].extend(items)
        return partitions

    @staticmethod
    def group(window: Window) -> Dict[str, List[Atom]]:
        """Group window items by predicate (``group()`` in Algorithm 1)."""
        groups: Dict[str, List[Atom]] = {}
        for atom in window:
            groups.setdefault(atom.predicate, []).append(atom)
        return groups


class RandomPartitioner(Partitioner):
    """The baseline of [12]: split the window into ``k`` random chunks."""

    def __init__(self, partitions: int, seed: Optional[int] = None):
        if partitions < 1:
            raise ValueError("the number of partitions must be at least 1")
        self._partitions = partitions
        self._random = random.Random(seed)

    @property
    def partition_count(self) -> int:
        return self._partitions

    def partition(self, window: Window) -> List[List[Atom]]:
        partitions: List[List[Atom]] = [[] for _ in range(self._partitions)]
        for atom in window:
            partitions[self._random.randrange(self._partitions)].append(atom)
        return partitions


class HashPartitioner(Partitioner):
    """Deterministic random-like partitioning by hashing the ground atom.

    Deterministic per process: ``hash(str(atom))`` is stable within one
    interpreter (including forked workers), which is all the delta path
    needs -- the partition layout of a recurring item never changes
    mid-stream.
    """

    deterministic = True

    def __init__(self, partitions: int):
        if partitions < 1:
            raise ValueError("the number of partitions must be at least 1")
        self._partitions = partitions

    @property
    def partition_count(self) -> int:
        return self._partitions

    def partition(self, window: Window) -> List[List[Atom]]:
        partitions: List[List[Atom]] = [[] for _ in range(self._partitions)]
        for atom in window:
            partitions[hash(str(atom)) % self._partitions].append(atom)
        return partitions
