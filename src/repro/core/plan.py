"""The partitioning plan: output of the decomposing process.

A plan maps every input predicate to the set of communities (partitions)
whose sub-window must receive its ground atoms.  Predicates mapped to more
than one community are the *duplicated* predicates of the paper's
decomposing process (their data items are copied into several partitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set

__all__ = ["PartitioningPlan"]


@dataclass(frozen=True)
class PartitioningPlan:
    """Mapping from input predicates to community identifiers."""

    #: predicate -> community ids whose partitions receive the predicate's atoms.
    assignments: Mapping[str, FrozenSet[int]]
    #: number of communities (partitions); community ids are 0..community_count-1.
    community_count: int
    #: policy for predicates absent from ``assignments``:
    #: "broadcast" copies them into every partition (safe default),
    #: "first" routes them to community 0.
    unknown_policy: str = "broadcast"

    def __post_init__(self) -> None:
        if self.unknown_policy not in ("broadcast", "first"):
            raise ValueError(f"unknown_policy must be 'broadcast' or 'first', got {self.unknown_policy!r}")
        if self.community_count < 1:
            raise ValueError("a partitioning plan needs at least one community")
        frozen: Dict[str, FrozenSet[int]] = {}
        for predicate, communities in dict(self.assignments).items():
            ids = frozenset(int(community) for community in communities)
            if not ids:
                raise ValueError(f"predicate {predicate!r} is assigned to no community")
            if any(community < 0 or community >= self.community_count for community in ids):
                raise ValueError(f"predicate {predicate!r} assigned to out-of-range community in {sorted(ids)}")
            frozen[predicate] = ids
        object.__setattr__(self, "assignments", frozen)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_communities(
        cls,
        communities: Sequence[Iterable[str]],
        unknown_policy: str = "broadcast",
    ) -> "PartitioningPlan":
        """Build a plan from a list of predicate groups (index = community id)."""
        assignments: Dict[str, Set[int]] = {}
        for community_id, predicates in enumerate(communities):
            for predicate in predicates:
                assignments.setdefault(predicate, set()).add(community_id)
        return cls(
            assignments={predicate: frozenset(ids) for predicate, ids in assignments.items()},
            community_count=max(1, len(communities)),
            unknown_policy=unknown_policy,
        )

    @classmethod
    def single_partition(cls, predicates: Iterable[str]) -> "PartitioningPlan":
        """Degenerate plan keeping everything together (no parallelism)."""
        return cls.from_communities([list(predicates)])

    # ------------------------------------------------------------------ #
    def find_communities(self, predicate: str) -> FrozenSet[int]:
        """Algorithm 1's ``findCommunities``: partitions receiving ``predicate``."""
        assigned = self.assignments.get(predicate)
        if assigned is not None:
            return assigned
        if self.unknown_policy == "first":
            return frozenset({0})
        return frozenset(range(self.community_count))

    @property
    def predicates(self) -> Set[str]:
        return set(self.assignments)

    @property
    def duplicated_predicates(self) -> Set[str]:
        """Predicates copied into more than one partition."""
        return {predicate for predicate, ids in self.assignments.items() if len(ids) > 1}

    def community_members(self, community_id: int) -> Set[str]:
        """All predicates routed to a given community."""
        return {predicate for predicate, ids in self.assignments.items() if community_id in ids}

    def communities(self) -> List[Set[str]]:
        return [self.community_members(community_id) for community_id in range(self.community_count)]

    def __len__(self) -> int:
        return self.community_count

    def describe(self) -> str:
        """Human-readable summary of the plan."""
        lines = [f"partitioning plan with {self.community_count} communities"]
        for community_id in range(self.community_count):
            members = sorted(self.community_members(community_id))
            lines.append(f"  community {community_id}: {', '.join(members) if members else '(empty)'}")
        duplicated = sorted(self.duplicated_predicates)
        if duplicated:
            lines.append(f"  duplicated predicates: {', '.join(duplicated)}")
        return "\n".join(lines)
