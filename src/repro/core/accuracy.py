"""Accuracy of partitioned answers (Section III).

The accuracy of one answer ``ans_i`` produced by the parallel reasoner
``PR`` against the reference answers ``Ans_R`` of the unpartitioned reasoner
``R`` is::

    accuracy(ans_i) = max over ans_j in Ans_R of |ans_i  intersect  ans_j| / |ans_j|

i.e. the best recall of ``ans_i`` against any reference answer set; this is
the adaptation the paper gives for non-monotonic reasoners that may return
several answer sets for the same input.  When both reasoners return a single
answer set this reduces to the ordinary ratio the paper states first.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.asp.syntax.atoms import Atom

__all__ = ["accuracy_of_answer", "accuracy_of_answers", "mean_accuracy"]


def accuracy_of_answer(answer: Iterable[Atom], reference_answers: Sequence[Iterable[Atom]]) -> float:
    """Accuracy of one partitioned answer against the reference answers.

    Edge cases: with no reference answers the accuracy is defined as 0.0
    (the reference reasoner found the input inconsistent, the partitioned
    one did not); an *empty* reference answer set is matched perfectly by
    any answer (ratio 1.0), mirroring the limit of the formula.
    """
    answer_set = set(answer)
    references = [set(reference) for reference in reference_answers]
    if not references:
        return 0.0
    best = 0.0
    for reference in references:
        if not reference:
            best = max(best, 1.0)
            continue
        overlap = len(answer_set & reference) / len(reference)
        best = max(best, overlap)
    return best


def accuracy_of_answers(
    answers: Sequence[Iterable[Atom]],
    reference_answers: Sequence[Iterable[Atom]],
) -> List[float]:
    """Per-answer accuracies of all partitioned answers."""
    return [accuracy_of_answer(answer, reference_answers) for answer in answers]


def mean_accuracy(
    answers: Sequence[Iterable[Atom]],
    reference_answers: Sequence[Iterable[Atom]],
) -> float:
    """Average accuracy over the partitioned answers (0.0 when there are none)."""
    scores = accuracy_of_answers(answers, reference_answers)
    if not scores:
        return 0.0
    return sum(scores) / len(scores)
