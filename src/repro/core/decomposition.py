"""The decomposing (duplication) process of Section II-B.

Given an input dependency graph, produce a partitioning plan:

* **Disconnected graph** -- the connected components of the graph are the
  partitions (the "natural subdivision of inpre(P)").
* **Connected graph** -- the paper's three-step duplication process:

  1. run the Louvain modularity algorithm (resolution 1.0) to split the
     graph into communities,
  2. for every pair of communities ``C1``, ``C2`` identify the boundary
     nodes ``exnodes(C1)`` (nodes of C1 with a link into C2) and
     ``exnodes(C2)``,
  3. duplicate the smaller of the two boundary sets into both communities.

The result records the communities, the duplicated predicates and the final
:class:`~repro.core.plan.PartitioningPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.core.input_dependency import InputDependencyGraph
from repro.core.plan import PartitioningPlan
from repro.graph.modularity import louvain_communities
from repro.graph.undirected import UndirectedGraph

__all__ = ["DecompositionResult", "decompose"]


@dataclass(frozen=True)
class DecompositionResult:
    """Outcome of decomposing an input dependency graph."""

    plan: PartitioningPlan
    communities: Tuple[FrozenSet[str], ...]
    duplicated_predicates: FrozenSet[str]
    used_modularity: bool
    resolution: float

    @property
    def community_count(self) -> int:
        return len(self.communities)


def decompose(
    dependency_graph: InputDependencyGraph,
    resolution: float = 1.0,
    max_communities: Optional[int] = None,
    unknown_policy: str = "broadcast",
) -> DecompositionResult:
    """Run the decomposing process on an input dependency graph.

    Parameters
    ----------
    dependency_graph:
        The input dependency graph of a program w.r.t. its input predicates.
    resolution:
        Resolution parameter of the modularity algorithm (the paper uses 1.0).
    max_communities:
        Optional cap on the number of partitions; extra communities are merged
        into the largest ones (useful for ablations; the paper does not cap).
    unknown_policy:
        How the resulting plan routes predicates it has never seen.
    """
    graph = dependency_graph.graph
    nodes = sorted(graph.nodes)
    if not nodes:
        plan = PartitioningPlan.from_communities([[]], unknown_policy=unknown_policy)
        return DecompositionResult(
            plan=plan,
            communities=(frozenset(),),
            duplicated_predicates=frozenset(),
            used_modularity=False,
            resolution=resolution,
        )

    components = [set(component) for component in graph.connected_components()]
    if len(components) > 1:
        # Natural subdivision: one partition per connected component.
        communities = _cap_communities([set(component) for component in components], max_communities)
        ordered = sorted(communities, key=lambda community: sorted(community))
        plan = PartitioningPlan.from_communities([sorted(community) for community in ordered], unknown_policy=unknown_policy)
        return DecompositionResult(
            plan=plan,
            communities=tuple(frozenset(community) for community in ordered),
            duplicated_predicates=frozenset(),
            used_modularity=False,
            resolution=resolution,
        )

    # Connected graph: modularity decomposition plus boundary duplication.
    detected = louvain_communities(graph, resolution=resolution)
    detected = [set(community) for community in detected if community]
    detected = _cap_communities(detected, max_communities)
    if len(detected) <= 1:
        # Modularity found no split; fall back to a single partition.
        plan = PartitioningPlan.from_communities([nodes], unknown_policy=unknown_policy)
        return DecompositionResult(
            plan=plan,
            communities=(frozenset(nodes),),
            duplicated_predicates=frozenset(),
            used_modularity=True,
            resolution=resolution,
        )

    ordered = sorted(detected, key=lambda community: sorted(community))
    augmented: List[Set[str]] = [set(community) for community in ordered]
    duplicated: Set[str] = set()

    for first_index in range(len(ordered)):
        for second_index in range(first_index + 1, len(ordered)):
            first_community = ordered[first_index]
            second_community = ordered[second_index]
            first_boundary = _exnodes(graph, first_community, second_community)
            second_boundary = _exnodes(graph, second_community, first_community)
            if not first_boundary and not second_boundary:
                continue
            chosen = _choose_duplication_set(first_boundary, second_boundary)
            duplicated.update(chosen)
            # Duplicated nodes belong to both communities.
            augmented[first_index].update(chosen)
            augmented[second_index].update(chosen)

    plan = PartitioningPlan.from_communities(
        [sorted(community) for community in augmented], unknown_policy=unknown_policy
    )
    return DecompositionResult(
        plan=plan,
        communities=tuple(frozenset(community) for community in augmented),
        duplicated_predicates=frozenset(duplicated),
        used_modularity=True,
        resolution=resolution,
    )


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _exnodes(graph: UndirectedGraph, community: Set[str], other: Set[str]) -> Set[str]:
    """Boundary nodes of ``community`` having at least one link into ``other``."""
    boundary: Set[str] = set()
    for node in community:
        if any(neighbor in other for neighbor in graph.neighbors(node)):
            boundary.add(node)
    return boundary


def _choose_duplication_set(first_boundary: Set[str], second_boundary: Set[str]) -> Set[str]:
    """Pick the smaller boundary set (deterministic tie-break on names)."""
    if not first_boundary:
        return set(second_boundary)
    if not second_boundary:
        return set(first_boundary)
    if len(first_boundary) < len(second_boundary):
        return set(first_boundary)
    if len(second_boundary) < len(first_boundary):
        return set(second_boundary)
    return set(min((sorted(first_boundary), sorted(second_boundary))))


def _cap_communities(communities: List[Set[str]], max_communities: Optional[int]) -> List[Set[str]]:
    """Merge the smallest communities until at most ``max_communities`` remain."""
    if max_communities is None or max_communities < 1 or len(communities) <= max_communities:
        return communities
    merged = sorted(communities, key=lambda community: (-len(community), sorted(community)))
    while len(merged) > max_communities:
        smallest = merged.pop()
        merged[-1] = merged[-1] | smallest
    return merged
