"""An IoT anomaly-detection scenario program for the query server.

The third standing-query workload (besides traffic and fraud), chosen for
yet another profile: *no* recursion, but negation stacked over **derived**
predicates -- ``silent`` negates the derived ``reporting``, and ``overheat``
negates both an input (``ventilated``) and a derived (``faulty``) predicate,
so the program has two strata of negation where traffic has one and fraud
negates only inputs.  Sensor telemetry reads naturally in *tumbling*
windows (each reporting interval judged on its own), where fraud slides.

``IOT_PROGRAM_EXTENDED_TEXT`` adds maintenance triage with only new head
predicates, so base and extended monitors can share a query server.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.program import Program

__all__ = [
    "ANOMALY_PREDICATES",
    "DERIVED_PREDICATES",
    "EXTENDED_ANOMALY_PREDICATES",
    "INPUT_PREDICATES",
    "IOT_PROGRAM_EXTENDED_TEXT",
    "IOT_PROGRAM_TEXT",
    "SAMPLE_WINDOW_TEXT",
    "iot_program",
    "iot_program_extended",
    "sample_window",
]

#: The base anomaly-monitor rules.
IOT_PROGRAM_TEXT = """\
% extreme readings
high_reading(S) :- reading(S, V), V > 90.
low_reading(S) :- reading(S, V), V < 10.
% a sensor swinging between extremes in one window is broken
faulty(S) :- high_reading(S), low_reading(S).
% a sensor that produced any reading this window
reporting(S) :- reading(S, V).
% a registered sensor that said nothing (negation over a derived predicate)
silent(S) :- registered(S), not reporting(S).
% a hot zone without ventilation, discounting broken sensors
overheat(Z) :- located(S, Z), high_reading(S), not faulty(S), not ventilated(Z).
% a zone whose sensor went dark
blind_spot(Z) :- located(S, Z), silent(S).
% either condition is an anomaly
anomaly(Z) :- overheat(Z).
anomaly(Z) :- blind_spot(Z).
"""

#: Maintenance triage on top of the base rules; only new head predicates,
#: so the extended monitor can share a server with the base one.
IOT_PROGRAM_EXTENDED_TEXT = IOT_PROGRAM_TEXT + """\
% broken or dark sensors go on the maintenance list
maintenance_ticket(S) :- faulty(S).
maintenance_ticket(S) :- silent(S).
"""

INPUT_PREDICATES: Tuple[str, ...] = (
    "reading",
    "located",
    "ventilated",
    "registered",
)

DERIVED_PREDICATES: Tuple[str, ...] = (
    "high_reading",
    "low_reading",
    "faulty",
    "reporting",
    "silent",
    "overheat",
    "blind_spot",
    "anomaly",
)

#: What the base monitor subscribes to.
ANOMALY_PREDICATES: Tuple[str, ...] = ("anomaly", "overheat", "blind_spot")

#: What the extended monitor subscribes to.
EXTENDED_ANOMALY_PREDICATES: Tuple[str, ...] = ANOMALY_PREDICATES + ("maintenance_ticket",)

#: A hand-written window where both anomaly paths fire: zone_a overheats
#: (s1 reads hot, not ventilated), s3 is registered but silent so zone_c is
#: a blind spot, and s2 is faulty (both extremes) so zone_b stays quiet.
SAMPLE_WINDOW_TEXT = """\
reading(s1, 95).
located(s1, zone_a).
reading(s2, 99).
reading(s2, 5).
located(s2, zone_b).
registered(s3).
located(s3, zone_c).
registered(s1).
registered(s2).
ventilated(zone_b).
"""


def iot_program() -> Program:
    """The base anomaly-monitor program."""
    return parse_program(IOT_PROGRAM_TEXT, name="iot")


def iot_program_extended() -> Program:
    """The base program plus maintenance triage."""
    return parse_program(IOT_PROGRAM_EXTENDED_TEXT, name="iot_extended")


def sample_window() -> List[Atom]:
    """The hand-written sample window, as ground atoms."""
    return [rule.head[0] for rule in parse_program(SAMPLE_WINDOW_TEXT).rules]
