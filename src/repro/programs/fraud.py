"""A fraud-detection scenario program for the multi-tenant query server.

A second standing-query workload besides the paper's traffic programs
(:mod:`repro.programs.traffic`), with a deliberately different profile:
transfer chains make the program *recursive* (``chain`` is a transitive
closure, something the traffic rules never exercise), and the cash-out rule
uses negation over an *input* predicate (``not verified``).  The natural
window shape is sliding (a laundering chain straddles window boundaries),
where the IoT workload (:mod:`repro.programs.iot`) tumbles.

``FRAUD_PROGRAM_EXTENDED_TEXT`` adds round-trip detection on top, defining
only new predicates -- so the base and extended desks can co-register on a
query server sharing every base rule (their shared fraction is 1.0 relative
to the smaller program).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.program import Program

__all__ = [
    "ALERT_PREDICATES",
    "DERIVED_PREDICATES",
    "EXTENDED_ALERT_PREDICATES",
    "FRAUD_PROGRAM_EXTENDED_TEXT",
    "FRAUD_PROGRAM_TEXT",
    "INPUT_PREDICATES",
    "SAMPLE_WINDOW_TEXT",
    "fraud_program",
    "fraud_program_extended",
    "sample_window",
]

#: The base fraud-desk rules.
FRAUD_PROGRAM_TEXT = """\
% a transaction moving serious money
big_txn(T) :- amount(T, X), X > 500.
% accounts linked by a big transfer
linked(A, B) :- sent(A, T), received(B, T), big_txn(T).
% the transitive closure of transfers (recursive!)
chain(A, B) :- linked(A, B).
chain(A, C) :- chain(A, B), linked(B, C).
% money reachable into a blacklisted account
laundering(A) :- chain(A, B), blacklisted(B).
% a big cash withdrawal by an account nobody vetted
cashout_risk(A) :- sent(A, T), big_txn(T), withdrawal(T), not verified(A).
% either pattern raises an alert
fraud_alert(A) :- laundering(A).
fraud_alert(A) :- cashout_risk(A).
"""

#: Round-trip detection on top of the base rules.  Only *new* head
#: predicates, so the extended desk can share a query server with the base
#: desk (the union-program compatibility check requires exactly this).
FRAUD_PROGRAM_EXTENDED_TEXT = FRAUD_PROGRAM_TEXT + """\
% money that comes back to its source went in a circle
round_trip(A) :- chain(A, B), chain(B, A).
structuring_alert(A) :- round_trip(A).
"""

INPUT_PREDICATES: Tuple[str, ...] = (
    "sent",
    "received",
    "amount",
    "withdrawal",
    "blacklisted",
    "verified",
)

DERIVED_PREDICATES: Tuple[str, ...] = (
    "big_txn",
    "linked",
    "chain",
    "laundering",
    "cashout_risk",
    "fraud_alert",
)

#: What the base fraud desk subscribes to.
ALERT_PREDICATES: Tuple[str, ...] = ("fraud_alert", "laundering", "cashout_risk")

#: What the extended desk subscribes to.
EXTENDED_ALERT_PREDICATES: Tuple[str, ...] = ALERT_PREDICATES + ("structuring_alert",)

#: A hand-written window where both alert paths fire: acc1 -> acc2 -> acc3
#: (blacklisted) is a laundering chain, and acc4 cashes out unverified.
SAMPLE_WINDOW_TEXT = """\
sent(acc1, t1).
received(acc2, t1).
amount(t1, 900).
sent(acc2, t2).
received(acc3, t2).
amount(t2, 800).
blacklisted(acc3).
sent(acc4, t3).
amount(t3, 700).
withdrawal(t3).
verified(acc1).
"""


def fraud_program() -> Program:
    """The base fraud-desk program."""
    return parse_program(FRAUD_PROGRAM_TEXT, name="fraud")


def fraud_program_extended() -> Program:
    """The base program plus round-trip (structuring) detection."""
    return parse_program(FRAUD_PROGRAM_EXTENDED_TEXT, name="fraud_extended")


def sample_window() -> List[Atom]:
    """The hand-written sample window, as ground atoms."""
    return [rule.head[0] for rule in parse_program(SAMPLE_WINDOW_TEXT).rules]
