"""The traffic event-detection programs of the paper.

``P`` is Listing 1 (rules r1-r6): detect traffic jams and car fires and
trigger notifications.  ``P'`` is ``P`` plus rule r7
(``traffic_jam(X) :- car_fire(X), many_cars(X).``), which connects the input
dependency graph and therefore exercises the duplication step of the
decomposing process.

``inpre(P) = inpre(P') = {average_speed, car_number, traffic_light,
car_in_smoke, car_speed, car_location}``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.program import Program

__all__ = [
    "INPUT_PREDICATES",
    "DERIVED_PREDICATES",
    "EVENT_PREDICATES",
    "OUTPUT_PREDICATES",
    "MOTIVATING_WINDOW_TEXT",
    "PROGRAM_P_TEXT",
    "PROGRAM_P_PRIME_TEXT",
    "motivating_example_window",
    "traffic_program",
    "traffic_program_prime",
]

#: Listing 1 of the paper (rules r1-r6).
PROGRAM_P_TEXT = """\
% (r1) slow traffic on a road segment
very_slow_speed(X) :- average_speed(X, Y), Y < 20.
% (r2) crowded road segment
many_cars(X) :- car_number(X, Y), Y > 40.
% (r3) a traffic jam is slow, crowded traffic not explained by a traffic light
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
% (r4) a stopped, smoking car is on fire at its location
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
% (r5, r6) both events trigger a notification
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
"""

#: Rule r7 from Section II-B, which connects the input dependency graph.
RULE_R7_TEXT = "traffic_jam(X) :- car_fire(X), many_cars(X).\n"

#: P' = P + r7.
PROGRAM_P_PRIME_TEXT = PROGRAM_P_TEXT + "% (r7) a car fire on a crowded segment also causes a jam\n" + RULE_R7_TEXT

#: inpre(P) as given in Section II-A.
INPUT_PREDICATES: Tuple[str, ...] = (
    "average_speed",
    "car_number",
    "traffic_light",
    "car_in_smoke",
    "car_speed",
    "car_location",
)

#: All derived (IDB) predicates of the programs.
DERIVED_PREDICATES: Tuple[str, ...] = (
    "very_slow_speed",
    "many_cars",
    "traffic_jam",
    "car_fire",
    "give_notification",
)

#: The events/actions of interest the city manager subscribes to (Section
#: II-A); these are what StreamRule streams out as solutions and what the
#: evaluation's accuracy is computed over.
EVENT_PREDICATES: Tuple[str, ...] = (
    "traffic_jam",
    "car_fire",
    "give_notification",
)

#: Kept for backwards compatibility with the examples: the reasoner's output
#: projection defaults to the events of interest.
OUTPUT_PREDICATES: Tuple[str, ...] = EVENT_PREDICATES

#: The window W of the motivating example in Section II-A.
MOTIVATING_WINDOW_TEXT = """\
average_speed(newcastle, 10).
car_number(newcastle, 55).
traffic_light(newcastle).
car_in_smoke(car1, high).
car_speed(car1, 0).
car_location(car1, dangan).
"""


def traffic_program() -> Program:
    """Program ``P`` (Listing 1)."""
    return parse_program(PROGRAM_P_TEXT, name="P")


def traffic_program_prime() -> Program:
    """Program ``P'`` (Listing 1 plus rule r7)."""
    return parse_program(PROGRAM_P_PRIME_TEXT, name="P_prime")


def motivating_example_window() -> List[Atom]:
    """The input window W of the motivating example, as ground atoms."""
    return [rule.head[0] for rule in parse_program(MOTIVATING_WINDOW_TEXT).rules]
