"""The paper's example logic programs and their metadata."""

from repro.programs.traffic import (
    DERIVED_PREDICATES,
    EVENT_PREDICATES,
    INPUT_PREDICATES,
    MOTIVATING_WINDOW_TEXT,
    OUTPUT_PREDICATES,
    PROGRAM_P_TEXT,
    PROGRAM_P_PRIME_TEXT,
    motivating_example_window,
    traffic_program,
    traffic_program_prime,
)

__all__ = [
    "DERIVED_PREDICATES",
    "EVENT_PREDICATES",
    "INPUT_PREDICATES",
    "MOTIVATING_WINDOW_TEXT",
    "OUTPUT_PREDICATES",
    "PROGRAM_P_TEXT",
    "PROGRAM_P_PRIME_TEXT",
    "motivating_example_window",
    "traffic_program",
    "traffic_program_prime",
]
