"""The paper's example logic programs and their metadata.

:mod:`repro.programs.traffic` is the paper's own workload (Listing 1);
:mod:`repro.programs.fraud` and :mod:`repro.programs.iot` are additional
standing-query scenarios for the multi-tenant query server, with distinct
window/recursion/negation profiles.  The scenario modules share constant
names (``INPUT_PREDICATES`` and friends) -- import those from the modules
themselves; this package re-exports only the unambiguous program builders.
"""

from repro.programs.fraud import fraud_program, fraud_program_extended
from repro.programs.iot import iot_program, iot_program_extended
from repro.programs.traffic import (
    DERIVED_PREDICATES,
    EVENT_PREDICATES,
    INPUT_PREDICATES,
    MOTIVATING_WINDOW_TEXT,
    OUTPUT_PREDICATES,
    PROGRAM_P_TEXT,
    PROGRAM_P_PRIME_TEXT,
    motivating_example_window,
    traffic_program,
    traffic_program_prime,
)

__all__ = [
    "DERIVED_PREDICATES",
    "EVENT_PREDICATES",
    "INPUT_PREDICATES",
    "MOTIVATING_WINDOW_TEXT",
    "OUTPUT_PREDICATES",
    "PROGRAM_P_TEXT",
    "PROGRAM_P_PRIME_TEXT",
    "fraud_program",
    "fraud_program_extended",
    "iot_program",
    "iot_program_extended",
    "motivating_example_window",
    "traffic_program",
    "traffic_program_prime",
]
