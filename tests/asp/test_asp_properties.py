"""Property-based tests for the ASP engine (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.asp.control import solve_program
from repro.asp.grounding.grounder import ground_program
from repro.asp.solving.solver import stable_models
from repro.asp.solving.unfounded import is_founded
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.terms import Constant
from repro.programs.traffic import traffic_program


def atom(predicate, *arguments):
    return Atom(predicate, tuple(Constant(argument) for argument in arguments))


# Strategy: small random EDB databases for a fixed rule schema.
locations = st.integers(min_value=0, max_value=5)
speeds = st.integers(min_value=0, max_value=60)
counts = st.integers(min_value=0, max_value=80)


speed_facts = st.lists(st.tuples(locations, speeds), max_size=8)
count_facts = st.lists(st.tuples(locations, counts), max_size=8)
light_facts = st.lists(locations, max_size=4)


@st.composite
def traffic_windows(draw):
    window = []
    for location, speed in draw(speed_facts):
        window.append(atom("average_speed", f"seg_{location}", speed))
    for location, count in draw(count_facts):
        window.append(atom("car_number", f"seg_{location}", count))
    for location in draw(light_facts):
        window.append(atom("traffic_light", f"seg_{location}"))
    return window


@settings(max_examples=40, deadline=None)
@given(traffic_windows())
def test_traffic_program_has_exactly_one_answer_set(window):
    """The stratified traffic program always has exactly one answer set."""
    result = solve_program(traffic_program(), facts=window)
    assert len(result.models) == 1


@settings(max_examples=40, deadline=None)
@given(traffic_windows())
def test_answer_set_semantics_of_traffic_rules(window):
    """The unique answer set contains exactly the events licensed by the rules."""
    result = solve_program(traffic_program(), facts=window)
    model = set(result.models[0].atoms)
    window_set = set(window)

    slow = {a.arguments[0] for a in window_set if a.predicate == "average_speed" and a.arguments[1].value < 20}
    crowded = {a.arguments[0] for a in window_set if a.predicate == "car_number" and a.arguments[1].value > 40}
    lights = {a.arguments[0] for a in window_set if a.predicate == "traffic_light"}
    expected_jams = {Atom("traffic_jam", (location,)) for location in (slow & crowded) - lights}
    actual_jams = {a for a in model if a.predicate == "traffic_jam"}
    assert actual_jams == expected_jams


@settings(max_examples=40, deadline=None)
@given(traffic_windows())
def test_every_stable_model_is_founded(window):
    """Stable models never contain unfounded atoms (external support invariant)."""
    ground = ground_program(traffic_program().with_facts(window))
    for model in stable_models(ground):
        assert is_founded(ground, set(model))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=0, max_size=12),
)
def test_transitive_closure_matches_reference(edges):
    """The engine's transitive closure equals a hand-rolled fixpoint."""
    program_text = "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)."
    facts = [atom("edge", f"n{a}", f"n{b}") for a, b in edges]
    result = solve_program(parse_program(program_text), facts=facts)
    model = result.models[0] if result.models else frozenset()
    derived_paths = {(a.arguments[0].value, a.arguments[1].value) for a in model if a.predicate == "path"}

    # Reference: Warshall-style closure over the edge relation.
    reference = {(f"n{a}", f"n{b}") for a, b in edges}
    changed = True
    while changed:
        changed = False
        for (a, b) in list(reference):
            for (c, d) in list(reference):
                if b == c and (a, d) not in reference:
                    reference.add((a, d))
                    changed = True
    assert derived_paths == reference


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=4, unique=True))
def test_facts_always_belong_to_every_answer_set(fact_names):
    """EDB facts are contained in every answer set (monotone part invariant)."""
    program = parse_program("p :- not q. q :- not p.")
    facts = [atom(name) for name in fact_names]
    result = solve_program(program, facts=facts)
    assert len(result.models) == 2
    for model in result.models:
        assert set(facts) <= set(model.atoms)
