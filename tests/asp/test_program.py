"""Unit tests for the Program container and predicate metadata."""


from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.programs.traffic import INPUT_PREDICATES


class TestProgramConstruction:
    def test_add_fact_and_len(self):
        program = parse_program("a :- b.")
        program.add_fact(Atom("b"))
        assert len(program) == 2
        assert len(program.facts) == 1

    def test_with_facts_does_not_mutate_original(self):
        program = parse_program("a :- b.")
        extended = program.with_facts([Atom("b")])
        assert len(program) == 1
        assert len(extended) == 2

    def test_extend_appends_rules(self):
        first = parse_program("a :- b.")
        second = parse_program("c :- d.")
        first.extend(second)
        assert len(first) == 2

    def test_copy_is_independent(self):
        program = parse_program("a :- b.")
        duplicate = program.copy()
        duplicate.add_fact(Atom("b"))
        assert len(program) == 1
        assert len(duplicate) == 2


class TestPredicateMetadata:
    def test_pre_p_of_traffic_program(self, program_p):
        expected = set(INPUT_PREDICATES) | {
            "very_slow_speed",
            "many_cars",
            "traffic_jam",
            "car_fire",
            "give_notification",
        }
        assert program_p.predicates() == expected

    def test_idb_predicates_of_traffic_program(self, program_p):
        assert program_p.idb_predicates() == {
            "very_slow_speed",
            "many_cars",
            "traffic_jam",
            "car_fire",
            "give_notification",
        }

    def test_edb_predicates_of_traffic_program(self, program_p):
        assert program_p.edb_predicates() == set(INPUT_PREDICATES)

    def test_fact_only_predicate_is_edb(self):
        program = parse_program("p(1). q(X) :- p(X).")
        assert program.edb_predicates() == {"p"}
        assert program.idb_predicates() == {"q"}

    def test_rules_defining_and_using(self, program_p):
        assert len(program_p.rules_defining("give_notification")) == 2
        assert len(program_p.rules_using("car_fire")) == 1

    def test_has_negation_and_disjunction_flags(self, program_p):
        assert program_p.has_negation
        assert not program_p.has_disjunction
        disjunctive = parse_program("a | b :- c.")
        assert disjunctive.has_disjunction


class TestProgramRendering:
    def test_round_trip_through_text(self, program_p):
        text = program_p.to_text()
        reparsed = parse_program(text)
        assert len(reparsed) == len(program_p)
        assert reparsed.predicates() == program_p.predicates()

    def test_repr_mentions_rule_count(self, program_p):
        assert "rules=6" in repr(program_p)

    def test_constraints_view(self):
        program = parse_program("a :- b. :- a, c.")
        assert len(program.constraints) == 1
        assert len(program.proper_rules) == 2
