"""Unit tests for the Clark completion encoding."""

from repro.asp.grounding.grounder import ground_program
from repro.asp.solving.completion import build_completion
from repro.asp.solving.sat import Satisfiability
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.terms import Constant


def atom(predicate, *arguments):
    return Atom(predicate, tuple(Constant(argument) for argument in arguments))


def completion_models(text, max_models=20):
    ground = ground_program(parse_program(text))
    encoding = build_completion(ground)
    models = []
    while len(models) < max_models:
        status, assignment = encoding.solver.solve()
        if status is Satisfiability.UNSATISFIABLE:
            break
        true_atoms = encoding.atoms_of_model(assignment)
        models.append(true_atoms)
        encoding.block_model(true_atoms)
    return models


class TestCompletion:
    def test_facts_are_forced_true(self):
        models = completion_models("p(1).")
        assert models == [{atom("p", 1)}]

    def test_unsupported_atom_is_false(self):
        models = completion_models("p(1). q(2) :- r(2).")
        assert models == [{atom("p", 1)}]

    def test_supported_atom_is_true(self):
        models = completion_models("p(1). q(X) :- p(X).")
        assert models == [{atom("p", 1), atom("q", 1)}]

    def test_even_negative_loop_has_two_completion_models(self):
        models = completion_models("a :- not b. b :- not a.")
        as_sets = {frozenset(str(a) for a in model) for model in models}
        assert as_sets == {frozenset({"a"}), frozenset({"b"})}

    def test_positive_loop_unreachable_atoms_are_pruned_by_grounding(self):
        # Intelligent grounding removes the unreachable loop {a :- b. b :- a.}
        # entirely, so the completion's only model is empty (the stable model).
        models = completion_models("a :- b. b :- a.")
        assert {frozenset(model) for model in models} == {frozenset()}

    def test_positive_loop_completion_admits_unsupported_classical_model(self):
        # Built directly (bypassing grounder simplification) the completion of
        # {a :- b. b :- a.} has the classical model {a, b}, which is *not*
        # stable -- exactly what the unfounded-set check filters out later.
        from repro.asp.grounding.grounder import GroundProgram, GroundRule

        loop = GroundProgram(
            facts=set(),
            rules=[
                GroundRule(head=(atom("a"),), positive_body=(atom("b"),), negative_body=()),
                GroundRule(head=(atom("b"),), positive_body=(atom("a"),), negative_body=()),
            ],
            possible_atoms={atom("a"), atom("b")},
        )
        encoding = build_completion(loop)
        models = []
        while True:
            status, assignment = encoding.solver.solve()
            if status is Satisfiability.UNSATISFIABLE:
                break
            true_atoms = encoding.atoms_of_model(assignment)
            models.append(frozenset(true_atoms))
            encoding.block_model(true_atoms)
        assert set(models) == {frozenset(), frozenset({atom("a"), atom("b")})}

    def test_constraint_excludes_models(self):
        models = completion_models("a :- not b. b :- not a. :- a.")
        assert [{str(x) for x in model} for model in models] == [{"b"}]

    def test_block_model_prevents_repetition(self):
        ground = ground_program(parse_program("a :- not b. b :- not a."))
        encoding = build_completion(ground)
        status, assignment = encoding.solver.solve()
        assert status is Satisfiability.SATISFIABLE
        first = encoding.atoms_of_model(assignment)
        encoding.block_model(first)
        status, assignment = encoding.solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert encoding.atoms_of_model(assignment) != first

    def test_variable_mapping_is_bijective(self):
        ground = ground_program(parse_program("p(1). q(X) :- p(X)."))
        encoding = build_completion(ground)
        assert len(encoding.atom_to_variable) == len(encoding.variable_to_atom)
        for mapped_atom, variable in encoding.atom_to_variable.items():
            assert encoding.variable_to_atom[variable] == mapped_atom
