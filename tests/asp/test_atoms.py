"""Unit tests for atoms, literals and comparisons."""

import pytest

from repro.asp.errors import GroundingError
from repro.asp.syntax.atoms import Atom, Comparison, Literal
from repro.asp.syntax.terms import Constant, Variable


class TestAtom:
    def test_hash_is_cached_and_consistent(self):
        atom = Atom("p", (Constant(1), Constant("a")))
        assert hash(atom) == hash(Atom("p", (Constant(1), Constant("a"))))
        assert atom in {Atom("p", (Constant(1), Constant("a")))}

    def test_pickle_does_not_ship_cached_hash(self):
        # String hashing is randomized per interpreter: a cached hash carried
        # across a pickle boundary would disagree with hashes computed in a
        # spawn-started worker, silently breaking set membership there.
        import pickle

        atom = Atom("p", (Constant(1),))
        hash(atom)  # populate the cache
        clone = pickle.loads(pickle.dumps(atom))
        assert clone._hash == 0  # recomputed lazily in the target interpreter
        assert clone == atom and hash(clone) == hash(atom)

    def test_reduce_goes_through_the_constructor(self):
        # __reduce__ must rebuild via Atom(predicate, arguments) -- not via
        # state restoration -- so __post_init__ validation runs on unpickle.
        atom = Atom("p", (Constant(1), Constant("a")))
        hash(atom)
        callable_, args = atom.__reduce__()
        assert callable_ is Atom
        assert args == ("p", (Constant(1), Constant("a")))  # no cached hash shipped

    def test_cached_hash_invariant_across_hash_seeds(self):
        # The end-to-end PYTHONHASHSEED regression: a pickled atom must keep
        # working as a set member in an interpreter with a different hash
        # seed (the spawn-started worker scenario).
        import os
        import pickle
        import subprocess
        import sys

        atom = Atom("p", (Constant(1), Constant("abc")))
        hash(atom)  # populate the cache before pickling
        payload = pickle.dumps({atom: True})
        probe = (
            "import pickle, sys\n"
            "mapping = pickle.loads(sys.stdin.buffer.read())\n"
            "from repro.asp.syntax.atoms import Atom\n"
            "from repro.asp.syntax.terms import Constant\n"
            "atom = Atom('p', (Constant(1), Constant('abc')))\n"
            "assert mapping[atom] is True\n"
            "print('ok')\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        completed = subprocess.run(
            [sys.executable, "-c", probe], input=payload, capture_output=True, env=env
        )
        assert completed.returncode == 0, completed.stderr.decode()
        assert completed.stdout.strip() == b"ok"

    def test_signature(self):
        atom = Atom("average_speed", (Constant("newcastle"), Constant(10)))
        assert atom.signature == ("average_speed", 2)
        assert atom.arity == 2

    def test_propositional_atom(self):
        atom = Atom("alarm")
        assert atom.arity == 0
        assert atom.is_ground()
        assert str(atom) == "alarm"

    def test_groundness(self):
        assert Atom("p", (Constant(1),)).is_ground()
        assert not Atom("p", (Variable("X"),)).is_ground()

    def test_substitute(self):
        atom = Atom("p", (Variable("X"), Constant(2)))
        ground = atom.substitute({Variable("X"): Constant(1)})
        assert str(ground) == "p(1,2)"

    def test_variables(self):
        atom = Atom("p", (Variable("X"), Variable("Y"), Variable("X")))
        assert [variable.name for variable in atom.variables()] == ["X", "Y", "X"]

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_equality_and_hash(self):
        first = Atom("p", (Constant(1),))
        second = Atom("p", (Constant(1),))
        assert first == second
        assert hash(first) == hash(second)


class TestLiteral:
    def test_positive_literal(self):
        literal = Literal(Atom("p", (Constant(1),)))
        assert literal.positive
        assert not literal.negative
        assert str(literal) == "p(1)"

    def test_negative_literal(self):
        literal = Literal(Atom("traffic_light", (Variable("X"),)), positive=False)
        assert literal.negative
        assert str(literal) == "not traffic_light(X)"

    def test_negate_flips_sign(self):
        literal = Literal(Atom("p"))
        assert literal.negate().negative
        assert literal.negate().negate() == literal

    def test_predicate_and_signature_delegate(self):
        literal = Literal(Atom("p", (Constant(1), Constant(2))))
        assert literal.predicate == "p"
        assert literal.signature == ("p", 2)

    def test_substitute_preserves_sign(self):
        literal = Literal(Atom("p", (Variable("X"),)), positive=False)
        ground = literal.substitute({Variable("X"): Constant(7)})
        assert ground.negative
        assert str(ground) == "not p(7)"


class TestComparison:
    def test_less_than_integers(self):
        assert Comparison("<", Constant(10), Constant(20)).evaluate()
        assert not Comparison("<", Constant(30), Constant(20)).evaluate()

    def test_all_operators(self):
        assert Comparison("<=", Constant(5), Constant(5)).evaluate()
        assert Comparison(">=", Constant(5), Constant(5)).evaluate()
        assert Comparison(">", Constant(6), Constant(5)).evaluate()
        assert Comparison("=", Constant("a"), Constant("a")).evaluate()
        assert Comparison("!=", Constant("a"), Constant("b")).evaluate()

    def test_operator_aliases_are_canonicalised(self):
        assert Comparison("==", Constant(1), Constant(1)).operator == "="
        assert Comparison("<>", Constant(1), Constant(2)).operator == "!="

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("~", Constant(1), Constant(2))

    def test_non_ground_comparison_cannot_be_evaluated(self):
        comparison = Comparison("<", Variable("Y"), Constant(20))
        assert not comparison.is_ground()
        with pytest.raises(GroundingError):
            comparison.evaluate()

    def test_substitute_then_evaluate(self):
        comparison = Comparison("<", Variable("Y"), Constant(20))
        assert comparison.substitute({Variable("Y"): Constant(10)}).evaluate()
        assert not comparison.substitute({Variable("Y"): Constant(25)}).evaluate()

    def test_mixed_type_comparison_uses_total_order(self):
        # Integers sort before symbolic constants, so this is well-defined.
        assert Comparison("<", Constant(100), Constant("abc")).evaluate()
        assert not Comparison("<", Constant("abc"), Constant(100)).evaluate()

    def test_variables_of_comparison(self):
        comparison = Comparison("<", Variable("X"), Variable("Y"))
        assert sorted(variable.name for variable in comparison.variables()) == ["X", "Y"]
