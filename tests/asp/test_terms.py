"""Unit tests for ASP terms."""

import pytest

from repro.asp.syntax.terms import Constant, FunctionTerm, Variable


class TestConstant:
    def test_integer_constant_is_ground(self):
        constant = Constant(42)
        assert constant.is_ground()
        assert constant.is_integer
        assert str(constant) == "42"

    def test_symbolic_constant(self):
        constant = Constant("newcastle")
        assert constant.is_ground()
        assert not constant.is_integer
        assert str(constant) == "newcastle"

    def test_quoted_string_rendering(self):
        constant = Constant('say "hi"', quoted=True)
        assert str(constant) == '"say \\"hi\\""'

    def test_equality_and_hash(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")
        assert hash(Constant("a")) == hash(Constant("a"))

    def test_substitute_is_identity(self):
        constant = Constant(3)
        assert constant.substitute({Variable("X"): Constant(9)}) is constant

    def test_rejects_bool_and_other_types(self):
        with pytest.raises(TypeError):
            Constant(True)
        with pytest.raises(TypeError):
            Constant(3.5)

    def test_total_order_integers_before_symbols(self):
        assert Constant(99) < Constant("alpha")
        assert Constant(1) < Constant(2)
        assert Constant("a") < Constant("b")

    def test_variables_iterator_empty(self):
        assert list(Constant(1).variables()) == []


class TestVariable:
    def test_variable_is_not_ground(self):
        variable = Variable("X")
        assert not variable.is_ground()
        assert str(variable) == "X"

    def test_variables_yields_self(self):
        variable = Variable("Speed")
        assert list(variable.variables()) == [variable]

    def test_substitute_bound(self):
        variable = Variable("X")
        assert variable.substitute({variable: Constant(5)}) == Constant(5)

    def test_substitute_unbound_returns_self(self):
        variable = Variable("X")
        assert variable.substitute({Variable("Y"): Constant(5)}) is variable

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_anonymous_variables_are_distinct(self):
        assert Variable.anonymous() != Variable.anonymous()


class TestFunctionTerm:
    def test_ground_function_term(self):
        term = FunctionTerm("loc", (Constant(1), Constant(2)))
        assert term.is_ground()
        assert term.arity == 2
        assert str(term) == "loc(1,2)"

    def test_non_ground_function_term(self):
        term = FunctionTerm("loc", (Variable("X"), Constant(2)))
        assert not term.is_ground()
        assert [variable.name for variable in term.variables()] == ["X"]

    def test_substitute_recurses(self):
        term = FunctionTerm("f", (Variable("X"), FunctionTerm("g", (Variable("Y"),))))
        ground = term.substitute({Variable("X"): Constant(1), Variable("Y"): Constant(2)})
        assert str(ground) == "f(1,g(2))"
        assert ground.is_ground()

    def test_zero_arity_renders_as_name(self):
        assert str(FunctionTerm("f", ())) == "f"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            FunctionTerm("", (Constant(1),))

    def test_equality_is_structural(self):
        assert FunctionTerm("f", (Constant(1),)) == FunctionTerm("f", (Constant(1),))
        assert FunctionTerm("f", (Constant(1),)) != FunctionTerm("f", (Constant(2),))
