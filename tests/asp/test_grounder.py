"""Unit tests for the semi-naive grounder."""

import pytest

from repro.asp.errors import GroundingError, SafetyError
from repro.asp.grounding.grounder import GroundRule, ground_program
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.terms import Constant
from repro.programs.traffic import motivating_example_window, traffic_program


def atoms_of(ground, predicate):
    return {atom for atom in ground.possible_atoms if atom.predicate == predicate}


class TestBasicGrounding:
    def test_facts_become_certain(self):
        ground = ground_program(parse_program("p(1). p(2)."))
        assert len(ground.facts) == 2
        assert not ground.rules

    def test_simple_rule_instantiation(self):
        ground = ground_program(parse_program("p(1). p(2). q(X) :- p(X)."))
        assert atoms_of(ground, "q") == {Atom("q", (Constant(1),)), Atom("q", (Constant(2),))}
        # q atoms are definite consequences, so they are certain facts.
        assert Atom("q", (Constant(1),)) in ground.facts

    def test_comparison_filters_instances(self):
        ground = ground_program(parse_program("p(1). p(5). q(X) :- p(X), X < 3."))
        assert atoms_of(ground, "q") == {Atom("q", (Constant(1),))}

    def test_join_on_shared_variable(self):
        program = parse_program(
            "car_in_smoke(car1, high). car_speed(car1, 0). car_location(car1, dangan)."
            "car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X)."
        )
        ground = ground_program(program)
        assert atoms_of(ground, "car_fire") == {Atom("car_fire", (Constant("dangan"),))}

    def test_unsafe_program_rejected(self):
        with pytest.raises(SafetyError):
            ground_program(parse_program("p(X) :- q(Y)."))

    def test_non_ground_fact_rejected(self):
        # A non-ground fact is rejected: it is unsafe (head variable without a
        # positive body) and could not be finitely instantiated anyway.
        with pytest.raises((GroundingError, SafetyError)):
            ground_program(parse_program("p(X)."))

    def test_extra_facts_parameter(self):
        program = parse_program("q(X) :- p(X).")
        ground = ground_program(program, facts=[Atom("p", (Constant(7),))])
        assert Atom("q", (Constant(7),)) in ground.possible_atoms


class TestNegationAndSimplification:
    def test_negative_literal_over_underivable_atom_is_dropped(self):
        ground = ground_program(parse_program("p(1). q(X) :- p(X), not r(X)."))
        # r(1) can never be derived, so q(1) is a definite consequence.
        [rule] = [rule for rule in ground.rules if rule.head and rule.head[0].predicate == "q"] or [None]
        assert Atom("q", (Constant(1),)) in ground.possible_atoms
        if rule is not None:
            assert not rule.negative_body

    def test_negative_literal_over_certain_atom_kills_rule(self):
        ground = ground_program(parse_program("p(1). r(1). q(X) :- p(X), not r(X)."))
        assert Atom("q", (Constant(1),)) not in ground.possible_atoms

    def test_negative_literal_over_possible_atom_is_kept(self):
        program = parse_program("p(1). r(X) :- p(X), not s(X). s(X) :- p(X), not r(X).")
        ground = ground_program(program)
        kept = [rule for rule in ground.rules if rule.negative_body]
        assert kept, "choice-like rules must keep their negative bodies"

    def test_certain_positive_body_atoms_are_removed(self):
        ground = ground_program(parse_program("p(1). q(1) :- p(1), not r(1). r(1) :- s(1)."))
        [rule] = [rule for rule in ground.rules if rule.head[0].predicate == "q"]
        assert rule.positive_body == ()


class TestRecursionAndConstraints:
    def test_transitive_closure(self):
        program = parse_program(
            "edge(1,2). edge(2,3). edge(3,4)."
            "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)."
        )
        ground = ground_program(program)
        paths = atoms_of(ground, "path")
        assert len(paths) == 6  # all ordered pairs i<j over 1..4

    def test_cyclic_edges(self):
        program = parse_program(
            "edge(1,2). edge(2,1). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)."
        )
        ground = ground_program(program)
        assert len(atoms_of(ground, "path")) == 4  # (1,2) (2,1) (1,1) (2,2)

    def test_constraint_instantiation_over_derived_atoms(self):
        ground = ground_program(parse_program("p(1). p(2). q(X) :- p(X), not s(X). :- q(X), X > 1."))
        constraints = [rule for rule in ground.rules if rule.is_constraint]
        assert len(constraints) == 1
        assert constraints[0].positive_body == (Atom("q", (Constant(2),)),)

    def test_constraint_with_certainly_true_body_makes_program_inconsistent(self):
        from repro.asp.solving.solver import stable_models

        ground = ground_program(parse_program("p(1). p(2). :- p(X), X > 1."))
        constraints = [rule for rule in ground.rules if rule.is_constraint]
        assert len(constraints) == 1
        # The certainly-true body atom is simplified away, leaving an always
        # violated constraint -- the program has no answer set.
        assert stable_models(ground) == []

    def test_disjunctive_heads_are_possible_not_certain(self):
        ground = ground_program(parse_program("p(1). a(X) | b(X) :- p(X)."))
        assert Atom("a", (Constant(1),)) in ground.possible_atoms
        assert Atom("a", (Constant(1),)) not in ground.facts


class TestMotivatingExample:
    def test_grounding_of_motivating_window(self):
        program = traffic_program().with_facts(motivating_example_window())
        ground = ground_program(program)
        # car_fire(dangan) is a definite consequence of the window.
        assert Atom("car_fire", (Constant("dangan"),)) in ground.facts
        # traffic_jam(newcastle) can never be derived because of the traffic light.
        assert Atom("traffic_jam", (Constant("newcastle"),)) not in ground.possible_atoms

    def test_statistics(self):
        program = traffic_program().with_facts(motivating_example_window())
        stats = ground_program(program).statistics()
        assert stats["facts"] >= 6
        assert stats["possible_atoms"] >= stats["facts"]


class TestGroundRuleDataclass:
    def test_str_rendering(self):
        rule = GroundRule(
            head=(Atom("a", (Constant(1),)),),
            positive_body=(Atom("b", (Constant(1),)),),
            negative_body=(Atom("c", (Constant(1),)),),
        )
        assert str(rule) == "a(1) :- b(1), not c(1)."

    def test_flags(self):
        fact = GroundRule(head=(Atom("a"),), positive_body=(), negative_body=())
        assert fact.is_fact and not fact.is_constraint
        constraint = GroundRule(head=(), positive_body=(Atom("a"),), negative_body=())
        assert constraint.is_constraint
        disjunctive = GroundRule(head=(Atom("a"), Atom("b")), positive_body=(), negative_body=())
        assert disjunctive.is_disjunctive
