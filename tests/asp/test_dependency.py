"""Unit tests for the classical predicate dependency graph and stratification."""

from repro.asp.grounding.dependency import (
    PredicateDependencyGraph,
    stratify,
    strongly_connected_components,
)
from repro.asp.syntax.parser import parse_program


class TestPredicateDependencyGraph:
    def test_positive_and_negative_edges(self):
        program = parse_program("a(X) :- b(X), not c(X).")
        graph = PredicateDependencyGraph.from_program(program)
        assert ("b", "a") in graph.positive_edges
        assert ("c", "a") in graph.negative_edges
        assert graph.nodes == {"a", "b", "c"}

    def test_successors_and_predecessors(self):
        program = parse_program("a(X) :- b(X). c(X) :- a(X).")
        graph = PredicateDependencyGraph.from_program(program)
        assert graph.successors("a") == {"c"}
        assert graph.predecessors("a") == {"b"}

    def test_traffic_program_edges(self, program_p):
        graph = PredicateDependencyGraph.from_program(program_p)
        assert ("very_slow_speed", "traffic_jam") in graph.positive_edges
        assert ("traffic_light", "traffic_jam") in graph.negative_edges
        assert ("car_fire", "give_notification") in graph.positive_edges


class TestStronglyConnectedComponents:
    def test_acyclic_graph_has_singleton_components(self):
        adjacency = {"a": {"b"}, "b": {"c"}, "c": set()}
        components = strongly_connected_components(adjacency)
        assert all(len(component) == 1 for component in components)
        assert len(components) == 3

    def test_cycle_forms_one_component(self):
        adjacency = {"a": {"b"}, "b": {"a"}, "c": {"a"}}
        components = strongly_connected_components(adjacency)
        assert {"a", "b"} in components
        assert {"c"} in components

    def test_sinks_come_before_sources(self):
        # Tarjan emits sink components first; the grounder reverses this.
        adjacency = {"source": {"sink"}, "sink": set()}
        components = strongly_connected_components(adjacency)
        assert components[0] == {"sink"}
        assert components[1] == {"source"}


class TestStratification:
    def test_traffic_program_is_stratified(self, program_p, program_p_prime):
        assert stratify(program_p).is_stratified
        assert stratify(program_p_prime).is_stratified

    def test_negation_raises_stratum(self, program_p):
        result = stratify(program_p)
        assert result.strata["traffic_jam"] > result.strata["traffic_light"]

    def test_even_negative_loop_is_not_stratified(self):
        program = parse_program("a :- not b. b :- not a.")
        assert not stratify(program).is_stratified

    def test_positive_recursion_is_stratified(self):
        program = parse_program("path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).")
        assert stratify(program).is_stratified

    def test_negation_through_recursion_is_not_stratified(self):
        program = parse_program("p(X) :- q(X), not r(X). r(X) :- p(X).")
        assert not stratify(program).is_stratified

    def test_strata_order_groups_predicates(self, program_p):
        order = stratify(program_p).order
        flattened = [predicate for level in order for predicate in level]
        assert set(flattened) == program_p.predicates()
        # traffic_jam (uses negation) must appear strictly after traffic_light.
        assert flattened.index("traffic_jam") > flattened.index("traffic_light")
