"""Unit tests for substitutions and atom matching."""

from repro.asp.grounding.substitution import match_atom, match_term
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.terms import Constant, FunctionTerm, Variable


class TestMatchTerm:
    def test_variable_binds_to_constant(self):
        binding = match_term(Variable("X"), Constant(5), {})
        assert binding == {Variable("X"): Constant(5)}

    def test_bound_variable_must_agree(self):
        binding = {Variable("X"): Constant(5)}
        assert match_term(Variable("X"), Constant(5), binding) == binding
        assert match_term(Variable("X"), Constant(6), binding) is None

    def test_constant_matches_itself_only(self):
        assert match_term(Constant("a"), Constant("a"), {}) == {}
        assert match_term(Constant("a"), Constant("b"), {}) is None

    def test_function_term_structural_match(self):
        pattern = FunctionTerm("loc", (Variable("X"), Constant(2)))
        target = FunctionTerm("loc", (Constant(1), Constant(2)))
        assert match_term(pattern, target, {}) == {Variable("X"): Constant(1)}

    def test_function_term_name_mismatch(self):
        assert match_term(FunctionTerm("f", (Variable("X"),)), FunctionTerm("g", (Constant(1),)), {}) is None

    def test_input_binding_is_not_mutated(self):
        binding = {}
        match_term(Variable("X"), Constant(1), binding)
        assert binding == {}


class TestMatchAtom:
    def test_simple_match(self):
        pattern = Atom("average_speed", (Variable("X"), Variable("Y")))
        target = Atom("average_speed", (Constant("newcastle"), Constant(10)))
        binding = match_atom(pattern, target)
        assert binding == {Variable("X"): Constant("newcastle"), Variable("Y"): Constant(10)}

    def test_predicate_mismatch(self):
        assert match_atom(Atom("p", (Variable("X"),)), Atom("q", (Constant(1),))) is None

    def test_arity_mismatch(self):
        assert match_atom(Atom("p", (Variable("X"),)), Atom("p", (Constant(1), Constant(2)))) is None

    def test_repeated_variable_enforces_equality(self):
        pattern = Atom("edge", (Variable("X"), Variable("X")))
        assert match_atom(pattern, Atom("edge", (Constant(1), Constant(1)))) is not None
        assert match_atom(pattern, Atom("edge", (Constant(1), Constant(2)))) is None

    def test_existing_binding_constrains_match(self):
        pattern = Atom("car_location", (Variable("C"), Variable("X")))
        binding = {Variable("C"): Constant("car1")}
        assert match_atom(pattern, Atom("car_location", (Constant("car1"), Constant("dangan"))), binding)
        assert match_atom(pattern, Atom("car_location", (Constant("car2"), Constant("dangan"))), binding) is None
