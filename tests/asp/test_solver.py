"""Unit tests for stable-model computation (the solver layer)."""


from repro.asp.grounding.grounder import ground_program
from repro.asp.solving.completion import build_completion
from repro.asp.solving.sat import Satisfiability
from repro.asp.solving.solver import (
    StableModelSolver,
    seed_wellfounded_consequences,
    stable_models,
)
from repro.asp.solving.wellfounded import WellFoundedModel
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program


def models_of(text, limit=None):
    ground = ground_program(parse_program(text))
    return [frozenset(str(atom) for atom in model) for model in stable_models(ground, limit=limit)]


class TestStratifiedPrograms:
    def test_facts_only(self):
        assert models_of("p(1). p(2).") == [frozenset({"p(1)", "p(2)"})]

    def test_definite_rules(self):
        assert models_of("p(1). q(X) :- p(X).") == [frozenset({"p(1)", "q(1)"})]

    def test_stratified_negation_single_model(self):
        assert models_of("p(1). p(2). r(1). q(X) :- p(X), not r(X).") == [
            frozenset({"p(1)", "p(2)", "r(1)", "q(2)"})
        ]

    def test_violated_constraint_gives_no_model(self):
        assert models_of("a. :- a.") == []

    def test_satisfied_constraint_keeps_model(self):
        assert models_of("a. :- b.") == [frozenset({"a"})]

    def test_transitive_closure(self):
        [model] = models_of("edge(1,2). edge(2,3). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).")
        assert "path(1,3)" in model


class TestNonStratifiedPrograms:
    def test_even_loop_has_two_models(self):
        assert sorted(models_of("a :- not b. b :- not a.")) == [frozenset({"a"}), frozenset({"b"})]

    def test_odd_loop_has_no_model(self):
        assert models_of("a :- not a.") == []

    def test_odd_loop_with_escape(self):
        # a :- not a is satisfiable when a has independent support.
        assert models_of("a :- not a. a :- b. b.") == [frozenset({"a", "b"})]

    def test_positive_loop_is_not_self_supporting(self):
        assert models_of("a :- b. b :- a.") == [frozenset()]

    def test_choice_like_program_has_four_models(self):
        models = models_of("p(1). p(2). q(X) :- p(X), not r(X). r(X) :- p(X), not q(X).")
        assert len(models) == 4

    def test_constraint_prunes_choice_models(self):
        models = models_of(
            "p(1). p(2). q(X) :- p(X), not r(X). r(X) :- p(X), not q(X). :- r(1)."
        )
        assert len(models) == 2
        assert all("q(1)" in model for model in models)

    def test_limit_parameter(self):
        assert len(models_of("a :- not b. b :- not a.", limit=1)) == 1

    def test_first_model_helper(self):
        ground = ground_program(parse_program("a :- not b. b :- not a."))
        assert StableModelSolver(ground).first_model() is not None
        ground_unsat = ground_program(parse_program("a :- not a."))
        assert StableModelSolver(ground_unsat).first_model() is None


class TestDisjunctivePrograms:
    def test_plain_disjunction_has_two_minimal_models(self):
        assert set(models_of("a | b.")) == {frozenset({"a"}), frozenset({"b"})}

    def test_non_minimal_model_is_rejected(self):
        # {a, b} satisfies a | b classically but is not minimal.
        models = models_of("a | b.")
        assert frozenset({"a", "b"}) not in models

    def test_disjunction_with_constraint(self):
        assert models_of("a | b. :- a.") == [frozenset({"b"})]

    def test_head_shared_with_definite_support(self):
        models = set(models_of("a | b. a :- b."))
        # {b} is not a model: rule a :- b forces a, so the minimal models are {a}.
        assert models == {frozenset({"a"})}

    def test_disjunctive_rule_with_body(self):
        models = set(models_of("c. a | b :- c."))
        assert models == {frozenset({"a", "c"}), frozenset({"b", "c"})}

    def test_ground_disjunction_over_variables(self):
        models = models_of("p(1). p(2). in(X) | out(X) :- p(X).")
        assert len(models) == 4


class TestWellFoundedSeeding:
    def test_seeding_skips_atoms_absent_from_the_completion(self):
        # Regression: the true-polarity seeding used to look variables up
        # unguarded, so a well-founded-true atom outside the encoding's
        # variable table raised KeyError.  Both polarities must skip atoms
        # the completion does not know about.
        ground = ground_program(parse_program("a :- not b. b :- not a."))
        encoding = build_completion(ground)
        wf = WellFoundedModel(
            true=frozenset({Atom("outside_true", ())}),
            false=frozenset({Atom("outside_false", ())}),
            undefined=frozenset({Atom("a", ()), Atom("b", ())}),
        )
        seed_wellfounded_consequences(encoding, wf)
        assert encoding.solver.solve()[0] is Satisfiability.SATISFIABLE

    def test_seeding_pins_known_atoms_as_units(self):
        ground = ground_program(parse_program("a :- not b. b :- not a."))
        encoding = build_completion(ground)
        wf = WellFoundedModel(
            true=frozenset({Atom("a", ())}),
            false=frozenset({Atom("b", ())}),
            undefined=frozenset(),
        )
        seed_wellfounded_consequences(encoding, wf)
        status, assignment = encoding.solver.solve()
        assert status is Satisfiability.SATISFIABLE
        assert assignment[encoding.variable(Atom("a", ()))] is True
        assert assignment[encoding.variable(Atom("b", ()))] is False


class TestTrafficPrograms:
    def test_motivating_example(self, program_p, motivating_window):
        ground = ground_program(program_p.with_facts(motivating_window))
        [model] = stable_models(ground)
        rendered = {str(atom) for atom in model}
        assert "car_fire(dangan)" in rendered
        assert "give_notification(dangan)" in rendered
        assert "traffic_jam(newcastle)" not in rendered
        assert "give_notification(newcastle)" not in rendered

    def test_p_prime_r7_fires_when_fire_on_crowded_segment(self, program_p_prime):
        window_text = (
            "car_number(dangan, 50). car_in_smoke(car1, high). car_speed(car1, 0). car_location(car1, dangan)."
        )
        facts = [rule.head[0] for rule in parse_program(window_text).rules]
        ground = ground_program(program_p_prime.with_facts(facts))
        [model] = stable_models(ground)
        rendered = {str(atom) for atom in model}
        assert "car_fire(dangan)" in rendered
        assert "traffic_jam(dangan)" in rendered  # via rule r7
