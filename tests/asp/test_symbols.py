"""Unit and property tests for the symbol-interning layer."""

import os
import pickle
import subprocess
import sys
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.symbols import (
    SymbolDelta,
    SymbolSyncError,
    SymbolTable,
    pack_ids,
    unpack_ids,
)
from repro.asp.syntax.terms import Constant


class TestInterning:
    def test_ids_are_dense_and_stable(self):
        table = SymbolTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0  # idempotent
        assert len(table) == 2

    def test_resolve_inverts_intern(self):
        table = SymbolTable()
        symbols = ["x", ("tuple", 1), Atom("p", (Constant(3),))]
        ids = [table.intern(symbol) for symbol in symbols]
        assert [table.resolve(i) for i in ids] == symbols
        assert list(table.resolve_many(ids)) == symbols

    def test_intern_many_matches_individual_interning(self):
        table_a, table_b = SymbolTable(), SymbolTable()
        symbols = ["a", "b", "a", "c", "b"]
        assert list(table_a.intern_many(symbols)) == [table_b.intern(s) for s in symbols]

    def test_id_of_never_creates(self):
        table = SymbolTable()
        assert table.id_of("missing") is None
        table.intern("present")
        assert table.id_of("present") == 0
        assert len(table) == 1

    def test_contains_and_iter(self):
        table = SymbolTable()
        table.intern_many(["a", "b"])
        assert "a" in table and "z" not in table
        assert list(table) == ["a", "b"]

    def test_resolve_unknown_id_raises(self):
        with pytest.raises(IndexError):
            SymbolTable().resolve(0)


class TestSnapshotDiff:
    def test_diff_since_returns_the_appended_tail(self):
        table = SymbolTable()
        table.intern("a")
        snapshot = table.snapshot()
        table.intern_many(["b", "c"])
        delta = table.diff_since(snapshot)
        assert delta.start == 1
        assert delta.symbols == ("b", "c")
        assert delta.stop == 3 and len(delta) == 2 and bool(delta)

    def test_empty_diff_is_falsy(self):
        table = SymbolTable()
        table.intern("a")
        delta = table.diff_since(table.snapshot())
        assert not delta and len(delta) == 0

    def test_diff_since_rejects_out_of_range_snapshot(self):
        table = SymbolTable()
        with pytest.raises(SymbolSyncError):
            table.diff_since(5)
        with pytest.raises(SymbolSyncError):
            table.diff_since(-1)

    def test_apply_replays_a_diff_on_a_replica(self):
        master, replica = SymbolTable(), SymbolTable()
        master.intern_many(["a", "b"])
        assert replica.apply(master.diff_since(0)) == 2
        master.intern("c")
        assert replica.apply(master.diff_since(2)) == 1
        assert list(replica) == list(master)

    def test_apply_tolerates_idempotent_overlap(self):
        master, replica = SymbolTable(), SymbolTable()
        master.intern_many(["a", "b", "c"])
        replica.apply(master.diff_since(0))
        # Redelivering an already-applied prefix is a no-op.
        assert replica.apply(master.diff_since(1)) == 0

    def test_apply_rejects_a_gap(self):
        replica = SymbolTable()
        with pytest.raises(SymbolSyncError):
            replica.apply(SymbolDelta(start=2, symbols=("x",)))

    def test_apply_rejects_a_rebind(self):
        replica = SymbolTable()
        replica.intern("a")
        with pytest.raises(SymbolSyncError):
            replica.apply(SymbolDelta(start=0, symbols=("different",)))


class TestPackedIds:
    def test_round_trip(self):
        ids = (0, 1, 2, 4_000_000_000)
        assert unpack_ids(pack_ids(ids)) == ids

    def test_empty(self):
        assert pack_ids(()) == b""
        assert unpack_ids(b"") == ()

    def test_rejects_misaligned_payload(self):
        with pytest.raises(ValueError):
            unpack_ids(b"\x00\x01\x02")

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(OverflowError):
            pack_ids((2**32,))
        with pytest.raises(OverflowError):
            pack_ids((-1,))


class TestShipping:
    def test_reduce_ships_an_empty_table(self):
        # Like GroundingCache/SolverCache: pickling a table must not drag the
        # interned universe across a process boundary -- replicas resync
        # through SymbolDelta frames instead.
        table = SymbolTable()
        table.intern_many(["a", "b"])
        clone = pickle.loads(pickle.dumps(table))
        assert len(clone) == 0

    def test_delta_round_trips_through_pickle(self):
        master = SymbolTable()
        master.intern_many([Atom("p", (Constant(i),)) for i in range(4)])
        delta = pickle.loads(pickle.dumps(master.diff_since(0)))
        replica = SymbolTable()
        replica.apply(delta)
        assert list(replica) == list(master)


class TestConcurrency:
    def test_concurrent_interning_yields_one_id_per_symbol(self):
        table = SymbolTable()
        universe = [f"sym-{i}" for i in range(200)]
        results = []

        def worker():
            results.append([table.intern(symbol) for symbol in universe])

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(table) == len(universe)
        assert all(ids == results[0] for ids in results)
        assert [table.resolve(i) for i in results[0]] == universe


class TestCrossProcess:
    def test_spawned_replica_resolves_the_same_symbols(self):
        # The wire scenario: symbols interned here, shipped as a SymbolDelta,
        # applied in a spawn-started interpreter with a different hash seed.
        master = SymbolTable()
        atoms = [Atom("p", (Constant(i), Constant(f"c{i}"))) for i in range(10)]
        ids = list(master.intern_many(atoms))
        payload = pickle.dumps((master.diff_since(0), ids))
        probe = (
            "import pickle, sys\n"
            "from repro.asp.syntax.symbols import SymbolTable\n"
            "from repro.asp.syntax.atoms import Atom\n"
            "from repro.asp.syntax.terms import Constant\n"
            "delta, ids = pickle.loads(sys.stdin.buffer.read())\n"
            "replica = SymbolTable()\n"
            "replica.apply(delta)\n"
            "atoms = [Atom('p', (Constant(i), Constant(f'c{i}'))) for i in range(10)]\n"
            "assert [replica.intern(a) for a in atoms] == ids\n"
            "print('ok')\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="54321")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        completed = subprocess.run(
            [sys.executable, "-c", probe], input=payload, capture_output=True, env=env
        )
        assert completed.returncode == 0, completed.stderr.decode()
        assert completed.stdout.strip() == b"ok"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.one_of(st.text(max_size=8), st.integers(), st.tuples(st.text(max_size=4), st.integers()))))
def test_property_intern_resolve_round_trip(symbols):
    table = SymbolTable()
    ids = list(table.intern_many(symbols))
    assert list(table.resolve_many(ids)) == symbols
    # Dense ids: the table's size equals the number of distinct symbols.
    assert len(table) == len(set(symbols))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=40),
    st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=40),
)
def test_property_snapshot_diff_sync(first_batch, second_batch):
    master, replica = SymbolTable(), SymbolTable()
    master.intern_many(first_batch)
    replica.apply(master.diff_since(0))
    snapshot = master.snapshot()
    master.intern_many(second_batch)
    replica.apply(master.diff_since(snapshot))
    assert list(replica) == list(master)
    assert replica.snapshot() == master.snapshot()
