"""Unit tests for unfounded-set detection."""

from repro.asp.grounding.grounder import ground_program
from repro.asp.solving.unfounded import greatest_unfounded_set, is_founded
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.terms import Constant


def atom(predicate, *arguments):
    return Atom(predicate, tuple(Constant(argument) for argument in arguments))


class TestUnfoundedSets:
    def test_facts_are_founded(self):
        ground = ground_program(parse_program("p(1)."))
        assert is_founded(ground, {atom("p", 1)})

    def test_positive_loop_without_external_support_is_unfounded(self):
        ground = ground_program(parse_program("a :- b. b :- a."))
        model = {atom("a"), atom("b")}
        assert greatest_unfounded_set(ground, model) == model

    def test_positive_loop_with_external_support_is_founded(self):
        ground = ground_program(parse_program("a :- b. b :- a. b :- c. c."))
        model = {atom("a"), atom("b"), atom("c")}
        assert is_founded(ground, model)

    def test_empty_model_has_no_unfounded_atoms(self):
        ground = ground_program(parse_program("a :- b. b :- a."))
        assert greatest_unfounded_set(ground, set()) == set()

    def test_rule_blocked_by_negation_gives_no_support(self):
        ground = ground_program(parse_program("p. a :- b, not p. b :- a."))
        model = {atom("p"), atom("a"), atom("b")}
        unfounded = greatest_unfounded_set(ground, model)
        assert unfounded == {atom("a"), atom("b")}

    def test_chain_support_is_tracked_transitively(self):
        ground = ground_program(parse_program("base. a :- base. b :- a. c :- b."))
        model = {atom("base"), atom("a"), atom("b"), atom("c")}
        assert is_founded(ground, model)

    def test_disjunctive_rule_supports_only_a_single_true_head(self):
        ground = ground_program(parse_program("a | b."))
        # With both heads true, the rule supports neither unambiguously.
        assert greatest_unfounded_set(ground, {atom("a"), atom("b")}) == {atom("a"), atom("b")}
        # With a single true head, that head is supported.
        assert is_founded(ground, {atom("a")})

    def test_disjunctive_rule_with_three_true_heads_supports_none(self):
        # Regression for the old dead ``len(true_heads) == 0 and len(...) > 1``
        # branch: a disjunctive rule whose head has *several* true atoms must
        # not count as support for any of them -- minimality requires an
        # unambiguous single true head.
        ground = ground_program(parse_program("a | b | c."))
        model = {atom("a"), atom("b"), atom("c")}
        assert greatest_unfounded_set(ground, model) == model
        # Two of three true: still ambiguous, still no support.
        assert greatest_unfounded_set(ground, {atom("a"), atom("b")}) == {atom("a"), atom("b")}
        # Exactly one true head is supported, whichever one it is.
        for name in ("a", "b", "c"):
            assert is_founded(ground, {atom(name)})

    def test_multi_true_heads_with_independent_support_stay_founded(self):
        # The disjunctive rule supports neither a nor b, but each has its own
        # normal rule, so the model as a whole remains founded.
        ground = ground_program(parse_program("a | b. a :- x. b :- y. x. y."))
        model = {atom("a"), atom("b"), atom("x"), atom("y")}
        assert is_founded(ground, model)

    def test_motivating_example_answer_is_founded(self, program_p, motivating_window):
        ground = ground_program(program_p.with_facts(motivating_window))
        model = set(ground.facts)
        assert is_founded(ground, model)
