"""Unit tests for the clingo-like Control facade."""

import pytest

from repro.asp.control import Control, Model, solve, solve_program
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_rule
from repro.asp.syntax.terms import Constant


def atom(predicate, *arguments):
    return Atom(predicate, tuple(Constant(argument) for argument in arguments))


class TestControl:
    def test_add_ground_solve(self):
        control = Control()
        control.add("q(X) :- p(X).")
        control.add_facts([atom("p", 1)])
        result = control.solve()
        assert result.satisfiable
        assert atom("q", 1) in result.models[0]

    def test_ground_is_idempotent_until_new_rules(self):
        control = Control()
        control.add("p(1).")
        first = control.ground()
        assert control.ground() is first
        control.add("q(1).")
        assert control.ground() is not first

    def test_model_limit_matches_clingo_convention(self):
        control = Control()
        control.add("a :- not b. b :- not a.")
        assert len(control.solve(models=1).models) == 1
        assert len(control.solve(models=0).models) == 2
        assert len(control.solve().models) == 2

    def test_solve_result_timing_fields(self):
        control = Control()
        control.add("p(1). q(X) :- p(X).")
        result = control.solve()
        assert result.grounding_seconds >= 0.0
        assert result.solving_seconds >= 0.0
        assert result.total_seconds == pytest.approx(result.grounding_seconds + result.solving_seconds)

    def test_add_rule_objects(self):
        control = Control()
        control.add_rule(parse_rule("q(X) :- p(X)."))
        control.add_rules([parse_rule("p(1).")])
        assert control.solve().satisfiable

    def test_program_constructor_copy(self, program_p):
        control = Control(program_p)
        control.add_facts([atom("average_speed", "seg", 5)])
        # The original program object is not mutated.
        assert len(program_p) == 6
        assert len(control.program) == 7


class TestModel:
    def test_projection(self):
        model = Model(frozenset({atom("p", 1), atom("q", 1)}))
        projected = model.project(["q"])
        assert set(projected.atoms) == {atom("q", 1)}

    def test_atoms_of(self):
        model = Model(frozenset({atom("p", 1), atom("p", 2), atom("q", 1)}))
        assert model.atoms_of("p") == {atom("p", 1), atom("p", 2)}

    def test_container_protocol(self):
        model = Model(frozenset({atom("p", 1)}))
        assert atom("p", 1) in model
        assert len(model) == 1
        assert list(model) == [atom("p", 1)]

    def test_str_is_sorted(self):
        model = Model(frozenset({atom("b"), atom("a")}))
        assert str(model) == "a b"


class TestConvenienceFunctions:
    def test_solve_text(self):
        result = solve("a :- not b.")
        assert [str(model) for model in result.models] == ["a"]

    def test_solve_program_with_facts(self, program_p, motivating_window):
        result = solve_program(program_p, facts=motivating_window)
        assert result.satisfiable
        assert atom("car_fire", "dangan") in result.models[0]

    def test_inconsistent_program_reports_unsatisfiable(self):
        assert not solve("a. :- a.").satisfiable
