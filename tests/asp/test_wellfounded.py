"""Unit tests for the well-founded semantics."""

import pytest

from repro.asp.grounding.grounder import ground_program
from repro.asp.solving.wellfounded import well_founded_model
from repro.asp.syntax.atoms import Atom
from repro.asp.syntax.parser import parse_program
from repro.asp.syntax.terms import Constant


def wf(text):
    return well_founded_model(ground_program(parse_program(text)))


def atom(predicate, *arguments):
    return Atom(predicate, tuple(Constant(argument) for argument in arguments))


class TestWellFoundedModel:
    def test_facts_are_true(self):
        model = wf("p(1). q(X) :- p(X).")
        assert atom("p", 1) in model.true
        assert atom("q", 1) in model.true
        assert model.is_total

    def test_stratified_negation_is_total(self):
        model = wf("p(1). q(X) :- p(X), not r(X).")
        assert atom("q", 1) in model.true
        assert model.is_total

    def test_blocked_rule_atom_is_pruned(self):
        # r(1) is certainly true, so the grounder never even registers q(1).
        model = wf("p(1). r(1). q(X) :- p(X), not r(X).")
        assert atom("q", 1) not in model.true
        assert atom("q", 1) not in model.undefined
        assert model.is_total

    def test_blocked_by_non_certain_atom_is_false(self):
        # r(1) is derivable but only through negation, so q(1) survives
        # grounding and the well-founded model classifies it as false.
        model = wf("p(1). r(X) :- p(X), not s(X). q(X) :- p(X), not r(X).")
        assert atom("r", 1) in model.true
        assert atom("q", 1) in model.false
        assert model.is_total

    def test_even_loop_is_undefined(self):
        model = wf("a :- not b. b :- not a.")
        assert atom("a") in model.undefined
        assert atom("b") in model.undefined
        assert not model.is_total

    def test_odd_loop_is_undefined(self):
        model = wf("a :- not a.")
        assert atom("a") in model.undefined

    def test_positive_loop_atoms_are_never_true(self):
        model = wf("c. d. a :- b. b :- a. b :- c, not d.")
        assert atom("a") not in model.true
        assert atom("b") not in model.true
        assert model.is_total

    def test_unreachable_positive_loop_is_pruned_before_solving(self):
        model = wf("a :- b. b :- a.")
        assert model.is_total
        assert atom("a") not in model.true
        assert atom("a") not in model.undefined

    def test_relevant_subprogram_decides_undefined_elsewhere(self):
        # c depends on the even loop, so it is undefined; d is independent.
        model = wf("a :- not b. b :- not a. c :- a. d.")
        assert atom("c") in model.undefined
        assert atom("d") in model.true

    def test_traffic_program_window_is_total(self, program_p, motivating_window):
        ground = ground_program(program_p.with_facts(motivating_window))
        model = well_founded_model(ground)
        assert model.is_total
        assert atom("car_fire", "dangan") in model.true
        assert atom("give_notification", "dangan") in model.true
        assert atom("traffic_jam", "newcastle") not in model.true

    def test_disjunctive_rule_rejected(self):
        ground = ground_program(parse_program("a | b."))
        with pytest.raises(ValueError):
            well_founded_model(ground)

    def test_partition_sets_are_disjoint_and_cover_universe(self):
        model = wf("p(1). q(X) :- p(X), not r(X). r(X) :- p(X), not q(X). s :- q(1).")
        assert not (set(model.true) & set(model.false))
        assert not (set(model.true) & set(model.undefined))
        assert not (set(model.false) & set(model.undefined))
