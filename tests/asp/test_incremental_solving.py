"""Equivalence and state-management tests for incremental solving.

The contract under test: across any sequence of windows, an
:class:`IncrementalSolver` fed each window's ground program returns exactly
the answer sets of from-scratch :func:`stable_models` on the same program --
while its :class:`SolveStats` show that prior state actually got reused.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.asp.grounding.grounder import ground_program
from repro.asp.solving.incremental import IncrementalSolver, SolverCache
from repro.asp.solving.solver import stable_models
from repro.asp.syntax.parser import parse_program


def ground_window(rules_text, facts_text):
    return ground_program(parse_program(rules_text + "\n" + facts_text))


def assert_window_sequence_matches(rules_text, fact_windows, limit=None):
    """Drive one solver through the windows; compare each against scratch.

    Without a limit the model sets must be identical.  With a limit, *which*
    models a truncated enumeration returns depends on search order, so only
    the count and membership in the full model set are guaranteed.
    """
    solver = IncrementalSolver()
    stats_seq = []
    for facts_text in fact_windows:
        ground = ground_window(rules_text, facts_text)
        models, stats = solver.solve(ground, limit=limit)
        got = {frozenset(model) for model in models}
        full = {frozenset(model) for model in stable_models(ground)}
        if limit is None:
            assert got == full
            assert len(models) == len(full)
        else:
            assert got <= full
            assert len(models) == min(limit, len(full))
        stats_seq.append(stats)
    return stats_seq


class TestSlidingEquivalence:
    def test_stratified_sliding_facts(self):
        rules = "q(X) :- p(X), not r(X)."
        stats = assert_window_sequence_matches(
            rules,
            ["p(1). p(2). r(1).", "p(2). p(3). r(1).", "p(3). p(4).", "p(3). p(4)."],
        )
        assert stats[0].outcome == "full"
        assert all(s.outcome == "incremental" for s in stats[1:])

    def test_even_loop_with_constraint_window(self):
        rules = "a :- not b. b :- not a."
        stats = assert_window_sequence_matches(
            rules,
            ["", ":- a.", "", ":- b. :- a."],
        )
        # The constraint windows change the rule set: encoding repairs happen.
        assert any(s.encoding_repairs for s in stats[1:])

    def test_odd_loop_windows(self):
        rules = "a :- not a."
        assert_window_sequence_matches(rules, ["", "a :- b. b.", ""])

    def test_positive_loop_windows(self):
        rules = "a :- b. b :- a."
        assert_window_sequence_matches(rules, ["", "b :- c. c.", ""])

    def test_choice_program_with_changing_domain(self):
        rules = "q(X) :- p(X), not r(X). r(X) :- p(X), not q(X)."
        stats = assert_window_sequence_matches(
            rules,
            ["p(1). p(2).", "p(2).", "p(2). p(3). p(4).", "p(2). p(3). p(4)."],
        )
        # The domain changes drop the retracted rules' clauses.
        assert any(s.clauses_dropped for s in stats[1:])

    def test_mixed_loop_and_negation_cycle(self):
        # Enumerating window 0 visits the completion model with {a, b}
        # unfounded and learns its loop clause; the identical window 1 then
        # retains that clause instead of re-deriving it.
        rules = "a :- b. b :- a. p :- not q. q :- not p. a :- p."
        stats = assert_window_sequence_matches(rules, ["", "", "b.", ""])
        assert stats[1].clauses_retained > 0

    def test_disjunctive_program_falls_back(self):
        solver = IncrementalSolver()
        ground = ground_window("a | b.", "")
        models, stats = solver.solve(ground)
        assert stats.outcome == "fallback"
        assert {frozenset(model) for model in models} == {
            frozenset(model) for model in stable_models(ground)
        }
        # A later non-disjunctive window still works (and is not "full":
        # the track has already seen a window).
        models, stats = solver.solve(ground_window("p :- q.", "q."))
        assert stats.outcome == "incremental"
        assert len(models) == 1

    def test_limit_is_respected_across_windows(self):
        rules = "a :- not b. b :- not a."
        assert_window_sequence_matches(rules, ["", "c.", ""], limit=1)

    def test_zero_limit_returns_no_models(self):
        solver = IncrementalSolver()
        models, _ = solver.solve(ground_window("a :- not b. b :- not a.", ""), limit=0)
        assert models == []

    def test_unsat_window_then_sat_window(self):
        rules = "a :- not b. b :- not a."
        assert_window_sequence_matches(rules, [":- a. :- b.", ""])


def _program_strategy():
    """Small normal programs: fixed rule pool, per-window fact subsets."""
    rule_pool = [
        "q(X) :- p(X), not r(X).",
        "r(X) :- p(X), not q(X).",
        "s(X) :- q(X).",
        "t(X) :- s(X), r(X).",
        "u :- not w.",
        "w :- not u.",
    ]
    rules = st.lists(st.sampled_from(rule_pool), min_size=1, max_size=6, unique=True)
    fact_pool = ["p(1).", "p(2).", "p(3).", "r(1).", "q(2)."]
    window = st.lists(st.sampled_from(fact_pool), min_size=0, max_size=5, unique=True)
    windows = st.lists(window, min_size=2, max_size=4)
    return st.tuples(rules, windows)


class TestRandomisedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_program_strategy())
    def test_window_sequences_match_from_scratch_solving(self, case):
        rule_lines, windows = case
        assert_window_sequence_matches(
            "\n".join(rule_lines), [" ".join(window) for window in windows]
        )


class TestSolverCache:
    def test_tracks_keep_independent_state(self):
        cache = SolverCache()
        ground = ground_window("q(X) :- p(X).", "p(1).")
        _, stats_a = cache.solve_incremental(ground, track=0)
        _, stats_b = cache.solve_incremental(ground, track=1)
        assert stats_a.outcome == "full"
        assert stats_b.outcome == "full"  # separate track: no prior state
        _, stats_a2 = cache.solve_incremental(ground, track=0)
        assert stats_a2.outcome == "incremental"

    def test_eviction_beyond_max_states(self):
        cache = SolverCache(max_states=2)
        ground = ground_window("q(X) :- p(X).", "p(1).")
        for track in range(3):
            cache.solve_incremental(ground, track=track)
        stats = cache.statistics()
        assert stats["solver_states"] == 2.0
        assert stats["evictions"] == 1.0
        # Track 0 was evicted (LRU): solving it again is a full solve.
        _, solve_stats = cache.solve_incremental(ground, track=0)
        assert solve_stats.outcome == "full"

    def test_statistics_aggregate_outcomes(self):
        cache = SolverCache()
        normal = ground_window("q(X) :- p(X).", "p(1).")
        disjunctive = ground_window("a | b.", "")
        cache.solve_incremental(normal, track=0)
        cache.solve_incremental(normal, track=0)
        cache.solve_incremental(disjunctive, track=1)
        stats = cache.statistics()
        assert stats["full_solves"] == 1.0
        assert stats["incremental_solves"] == 1.0
        assert stats["fallback_solves"] == 1.0

    def test_clear_resets_states(self):
        cache = SolverCache()
        ground = ground_window("q(X) :- p(X).", "p(1).")
        cache.solve_incremental(ground, track=0)
        cache.clear()
        assert cache.statistics()["solver_states"] == 0.0
        _, stats = cache.solve_incremental(ground, track=0)
        assert stats.outcome == "full"

    def test_pickling_ships_an_empty_cache(self):
        cache = SolverCache(max_states=5)
        ground = ground_window("q(X) :- p(X).", "p(1).")
        cache.solve_incremental(ground, track=0)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.max_states == 5
        assert clone.statistics()["solver_states"] == 0.0

    def test_rejects_nonpositive_max_states(self):
        import pytest

        with pytest.raises(ValueError):
            SolverCache(max_states=0)
